//! Fuel consumption model with platooning drag reduction.
//!
//! §I–II of the paper motivate platooning with fuel savings and CO₂
//! reduction; experiment F10 reproduces that motivation curve (saving vs
//! inter-vehicle gap). The model is a physics-based power balance:
//!
//! ```text
//! P = (F_roll + F_drag·(1 − η(gap, pos)) + m·a)·v      [traction power]
//! fuel_rate = idle + P⁺ / (η_engine · E_diesel)
//! ```
//!
//! with the drag-reduction factor `η` taken from the published truck
//! -platooning CFD/track studies (e.g. the ENSEMBLE and PATH measurements):
//! a trailing truck at a 10 m gap sees roughly 30–40 % drag reduction, the
//! lead truck a smaller benefit, and the effect decays roughly exponentially
//! with gap.

use crate::vehicle::VehicleParams;
use serde::{Deserialize, Serialize};

/// Air density at sea level, kg/m³.
const AIR_DENSITY: f64 = 1.225;
/// Rolling resistance coefficient for truck tyres.
const ROLLING_COEFF: f64 = 0.006;
/// Gravitational acceleration, m/s².
const GRAVITY: f64 = 9.81;
/// Diesel lower heating value, J/L.
const DIESEL_ENERGY: f64 = 35.8e6;
/// Overall engine + driveline efficiency.
const ENGINE_EFFICIENCY: f64 = 0.40;
/// Idle fuel burn, L/s.
const IDLE_RATE: f64 = 0.0008;

/// Position of a vehicle within the platoon for drag purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatoonPosition {
    /// Driving alone (no drag reduction).
    Solo,
    /// Leading a platoon (small rear-wake benefit).
    Leader,
    /// Following within a platoon (large benefit, gap-dependent).
    Follower,
}

/// Drag-reduction factor `η ∈ [0, 1)` for a vehicle at the given bumper gap.
///
/// Calibrated to the published truck measurements: followers get ≈ 0.45 of
/// their drag removed at touching distance, decaying with a 22 m length
/// scale; leaders get ≈ 0.10 at short gaps.
///
/// # Examples
///
/// ```
/// use platoon_dynamics::fuel::{drag_reduction, PlatoonPosition};
///
/// let close = drag_reduction(PlatoonPosition::Follower, 8.0);
/// let far = drag_reduction(PlatoonPosition::Follower, 60.0);
/// assert!(close > far);
/// assert_eq!(drag_reduction(PlatoonPosition::Solo, 8.0), 0.0);
/// ```
pub fn drag_reduction(position: PlatoonPosition, gap: f64) -> f64 {
    let gap = gap.max(0.0);
    match position {
        PlatoonPosition::Solo => 0.0,
        PlatoonPosition::Leader => 0.10 * (-gap / 15.0).exp(),
        PlatoonPosition::Follower => 0.45 * (-gap / 22.0).exp(),
    }
}

/// Instantaneous fuel rate in litres/second.
///
/// Negative traction power (engine braking / regenerative conditions) burns
/// only idle fuel.
pub fn fuel_rate(
    params: &VehicleParams,
    speed: f64,
    accel: f64,
    position: PlatoonPosition,
    gap: f64,
) -> f64 {
    let f_roll = ROLLING_COEFF * params.mass * GRAVITY;
    let eta = drag_reduction(position, gap);
    let f_drag = 0.5 * AIR_DENSITY * params.drag_area * speed * speed * (1.0 - eta);
    let f_inertia = params.mass * accel;
    let power = (f_roll + f_drag + f_inertia) * speed;
    IDLE_RATE + power.max(0.0) / (ENGINE_EFFICIENCY * DIESEL_ENERGY)
}

/// Accumulates fuel burned by one vehicle over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FuelMeter {
    /// Total litres burned.
    pub litres: f64,
    /// Total metres travelled.
    pub metres: f64,
}

impl FuelMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one simulation step.
    pub fn record(
        &mut self,
        params: &VehicleParams,
        speed: f64,
        accel: f64,
        position: PlatoonPosition,
        gap: f64,
        dt: f64,
    ) {
        self.litres += fuel_rate(params, speed, accel, position, gap) * dt;
        self.metres += speed * dt;
    }

    /// Consumption in litres per 100 km (∞ if no distance covered).
    pub fn litres_per_100km(&self) -> f64 {
        if self.metres <= 0.0 {
            return f64::INFINITY;
        }
        self.litres / self.metres * 100_000.0
    }
}

/// Relative fuel saving of `platooning` vs `solo` consumption (fraction).
pub fn fuel_saving(solo_l_per_100km: f64, platoon_l_per_100km: f64) -> f64 {
    if solo_l_per_100km <= 0.0 {
        return 0.0;
    }
    1.0 - platoon_l_per_100km / solo_l_per_100km
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truck() -> VehicleParams {
        VehicleParams::truck()
    }

    #[test]
    fn follower_benefits_more_than_leader() {
        for gap in [5.0, 10.0, 20.0] {
            assert!(
                drag_reduction(PlatoonPosition::Follower, gap)
                    > drag_reduction(PlatoonPosition::Leader, gap)
            );
        }
    }

    #[test]
    fn reduction_decays_with_gap() {
        let mut last = 1.0;
        for gap in [0.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let eta = drag_reduction(PlatoonPosition::Follower, gap);
            assert!(eta < last);
            assert!((0.0..1.0).contains(&eta));
            last = eta;
        }
    }

    #[test]
    fn negative_gap_clamped() {
        assert_eq!(
            drag_reduction(PlatoonPosition::Follower, -5.0),
            drag_reduction(PlatoonPosition::Follower, 0.0)
        );
    }

    #[test]
    fn cruising_truck_burns_plausible_fuel() {
        // A solo 30 t truck at 25 m/s (90 km/h) burns roughly 25-45 L/100km.
        let mut meter = FuelMeter::new();
        let p = truck();
        for _ in 0..36_000 {
            meter.record(&p, 25.0, 0.0, PlatoonPosition::Solo, 0.0, 0.1);
        }
        let rate = meter.litres_per_100km();
        assert!(
            (15.0..60.0).contains(&rate),
            "implausible consumption: {rate} L/100km"
        );
    }

    #[test]
    fn platooning_saves_fuel() {
        let p = truck();
        let mut solo = FuelMeter::new();
        let mut follow = FuelMeter::new();
        for _ in 0..10_000 {
            solo.record(&p, 25.0, 0.0, PlatoonPosition::Solo, 0.0, 0.1);
            follow.record(&p, 25.0, 0.0, PlatoonPosition::Follower, 10.0, 0.1);
        }
        let saving = fuel_saving(solo.litres_per_100km(), follow.litres_per_100km());
        assert!(
            (0.05..0.40).contains(&saving),
            "saving {saving} outside the published 5-40% band"
        );
    }

    #[test]
    fn saving_shrinks_with_gap() {
        let p = truck();
        let run = |gap: f64| {
            let mut m = FuelMeter::new();
            for _ in 0..1000 {
                m.record(&p, 25.0, 0.0, PlatoonPosition::Follower, gap, 0.1);
            }
            m.litres_per_100km()
        };
        assert!(run(5.0) < run(20.0));
        assert!(run(20.0) < run(80.0));
    }

    #[test]
    fn acceleration_costs_fuel() {
        let p = truck();
        let cruising = fuel_rate(&p, 20.0, 0.0, PlatoonPosition::Solo, 0.0);
        let accelerating = fuel_rate(&p, 20.0, 1.0, PlatoonPosition::Solo, 0.0);
        assert!(accelerating > cruising * 2.0);
    }

    #[test]
    fn braking_burns_only_idle() {
        let p = truck();
        let braking = fuel_rate(&p, 20.0, -3.0, PlatoonPosition::Solo, 0.0);
        assert!((braking - IDLE_RATE).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_reports_infinity() {
        assert!(FuelMeter::new().litres_per_100km().is_infinite());
    }

    #[test]
    fn oscillation_burns_more_than_steady() {
        // The replay attack's efficiency claim: oscillating speed costs fuel.
        let p = truck();
        let mut steady = FuelMeter::new();
        let mut oscillating = FuelMeter::new();
        for i in 0..10_000 {
            let t = i as f64 * 0.1;
            steady.record(&p, 25.0, 0.0, PlatoonPosition::Follower, 10.0, 0.1);
            let a = 1.0 * (t * 0.8).sin();
            let v = 25.0 - 1.25 * (t * 0.8).cos();
            oscillating.record(&p, v, a, PlatoonPosition::Follower, 10.0, 0.1);
        }
        assert!(oscillating.litres_per_100km() > steady.litres_per_100km());
    }
}
