//! # platoon-dynamics
//!
//! Longitudinal platoon dynamics: the from-scratch replacement for the
//! Plexe/Veins simulation substrate that the reproduced paper (Taylor et
//! al., DSN-W 2021) names as the standard platooning digital twin.
//!
//! The crate provides:
//!
//! * [`vehicle`] — point-mass vehicles with first-order powertrain lag.
//! * [`controller`] — the controller abstraction and the cruise controller.
//! * [`acc`] — radar-only Adaptive Cruise Control (the no-communication
//!   baseline).
//! * [`cacc`] — the PATH/Rajamani CACC used by Plexe (leader + predecessor
//!   feed-forward, constant spacing).
//! * [`ploeg`] — Ploeg's time-gap CACC (predecessor-only feed-forward).
//! * [`consensus`] — consensus-based distributed platoon control.
//! * [`profiles`] — leader speed profiles (step, sinusoid, brake test, …).
//! * [`sensors`] — radar/GPS/LiDAR models with adversarial fault channels.
//! * [`stability`] — string-stability and oscillation metrics.
//! * [`fuel`] — fuel model with platooning drag reduction.
//! * [`safety`] — collision and time-to-collision monitoring.
//!
//! # Examples
//!
//! Closed-loop simulation of a two-vehicle string:
//!
//! ```
//! use platoon_dynamics::prelude::*;
//!
//! let params = VehicleParams::car();
//! let mut leader = Vehicle::new(params, 50.0, 20.0);
//! let mut follower = Vehicle::new(params, 35.0, 20.0);
//! let mut ctrl = CaccController::default();
//!
//! for _step in 0..1000 {
//!     let peer = |v: &Vehicle| CommPeer {
//!         position: v.state.position,
//!         speed: v.state.speed,
//!         accel: v.state.accel,
//!         length: v.params.length,
//!         age: 0.0,
//!     };
//!     let ctx = ControlContext {
//!         dt: 0.01,
//!         ego: follower.state,
//!         index: 1,
//!         radar: Some(RadarReading {
//!             range: follower.gap_to(&leader),
//!             range_rate: leader.state.speed - follower.state.speed,
//!         }),
//!         predecessor: Some(peer(&leader)),
//!         leader: Some(peer(&leader)),
//!         desired_gap: 10.0,
//!         desired_offset_from_leader: 10.0 + params.length,
//!     };
//!     let u = ctrl.command(&ctx);
//!     follower.set_command(u);
//!     leader.step(0.01);
//!     follower.step(0.01);
//! }
//! // The follower has converged near the 10 m desired gap.
//! assert!((follower.gap_to(&leader) - 10.0).abs() < 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acc;
pub mod cacc;
pub mod consensus;
pub mod controller;
pub mod fuel;
pub mod ploeg;
pub mod profiles;
pub mod safety;
pub mod sensors;
pub mod stability;
pub mod vehicle;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::acc::AccController;
    pub use crate::cacc::{CaccController, CaccMode};
    pub use crate::consensus::ConsensusController;
    pub use crate::controller::{
        CommPeer, ControlContext, CruiseController, LongitudinalController, RadarReading,
    };
    pub use crate::fuel::{drag_reduction, FuelMeter, PlatoonPosition};
    pub use crate::ploeg::PloegController;
    pub use crate::profiles::SpeedProfile;
    pub use crate::safety::{time_to_collision, SafetyMonitor};
    pub use crate::sensors::{Gps, Lidar, Radar, SensorFault, SensorSuite};
    pub use crate::stability::{StringStabilityReport, TimeSeries};
    pub use crate::vehicle::{Vehicle, VehicleParams, VehicleState};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;

    proptest! {
        /// The vehicle integrator never produces NaN, negative speed or
        /// speed above the physical cap, whatever command sequence it gets.
        #[test]
        fn integrator_stays_in_envelope(commands in proptest::collection::vec(-20.0f64..20.0, 1..200),
                                        v0 in 0.0f64..40.0) {
            let mut v = Vehicle::new(VehicleParams::car(), 0.0, v0.min(40.0));
            for u in commands {
                v.set_command(u);
                v.step(0.05);
                prop_assert!(v.state.speed >= 0.0);
                prop_assert!(v.state.speed <= v.params.max_speed + 1e-9);
                prop_assert!(v.state.position.is_finite());
                prop_assert!(v.state.accel.is_finite());
                prop_assert!(v.state.accel <= v.params.max_accel + 1e-9);
                prop_assert!(v.state.accel >= -v.params.max_decel - 1e-9);
            }
        }

        /// ACC never commands based on communication data.
        #[test]
        fn acc_ignores_comm(range in 0.0f64..100.0, rate in -10.0f64..10.0,
                            fake_pos in -1000.0f64..1000.0) {
            let mut acc = AccController::default();
            let mut ctx = crate::controller::test_context();
            ctx.radar = Some(RadarReading { range, range_rate: rate });
            let honest = acc.command(&ctx);
            ctx.predecessor = Some(CommPeer { position: fake_pos, speed: 0.0, accel: -9.0, length: 4.5, age: 0.0 });
            ctx.leader = ctx.predecessor;
            prop_assert_eq!(acc.command(&ctx), honest);
        }

        /// Fuel rate is non-negative and platooning never burns more than solo.
        #[test]
        fn fuel_rate_sane(speed in 0.0f64..35.0, accel in -5.0f64..2.0, gap in 0.0f64..100.0) {
            let p = VehicleParams::truck();
            let solo = crate::fuel::fuel_rate(&p, speed, accel, PlatoonPosition::Solo, 0.0);
            let plat = crate::fuel::fuel_rate(&p, speed, accel, PlatoonPosition::Follower, gap);
            prop_assert!(solo >= 0.0 && plat >= 0.0);
            prop_assert!(plat <= solo + 1e-12, "platooning can only help drag");
        }

        /// String-stability report ratios are finite for any error data.
        #[test]
        fn stability_report_finite(series in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 1..50), 1..6)) {
            let errors: Vec<TimeSeries> = series.into_iter()
                .map(|values| TimeSeries { dt: 0.1, values })
                .collect();
            let r = StringStabilityReport::from_errors(&errors);
            for a in r.linf_amplification {
                prop_assert!(a.is_finite());
            }
            prop_assert!(r.total_energy.is_finite());
        }
    }
}
