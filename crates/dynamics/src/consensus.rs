//! Consensus-based platoon controller (distributed control with a
//! leader-plus-predecessor information graph).
//!
//! This is the controller family used by the distributed secure platoon
//! control literature the paper cites for DoS resilience (Zhang et al. \[33\]):
//! each vehicle drives a weighted disagreement term toward zero with respect
//! to every neighbour it can hear. Losing a neighbour (jamming, DoS) removes
//! a term rather than an entire control mode, which is why consensus
//! controllers degrade more gracefully under availability attacks — a shape
//! the F2/F4 experiments demonstrate.
//!
//! ```text
//! u_i = − Σ_{j ∈ N(i)}  w_j · [ (x_i − x_j + d_ij) + γ·(v_i − v_j) ]
//! ```

use crate::controller::{ControlContext, LongitudinalController};
use serde::{Deserialize, Serialize};

/// Consensus controller over the {predecessor, leader} neighbour set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsensusController {
    /// Position-disagreement gain (per neighbour).
    pub k_pos: f64,
    /// Velocity-disagreement coupling γ.
    pub gamma: f64,
    /// Weight on the predecessor term.
    pub w_pred: f64,
    /// Weight on the leader term.
    pub w_leader: f64,
}

impl Default for ConsensusController {
    fn default() -> Self {
        ConsensusController {
            k_pos: 0.1,
            gamma: 3.0,
            w_pred: 1.0,
            w_leader: 0.6,
        }
    }
}

impl LongitudinalController for ConsensusController {
    fn command(&mut self, ctx: &ControlContext) -> f64 {
        let mut u = 0.0;
        let mut heard_any = false;

        if let Some(p) = ctx.predecessor {
            // Desired offset to the predecessor's front bumper.
            let d = ctx.desired_gap + p.length;
            let pos_err = ctx.ego.position - (p.position - d);
            u -= self.w_pred * self.k_pos * (pos_err + self.gamma * (ctx.ego.speed - p.speed));
            heard_any = true;
        }
        if let Some(l) = ctx.leader {
            let pos_err = ctx.ego.position - (l.position - ctx.desired_offset_from_leader);
            u -= self.w_leader * self.k_pos * (pos_err + self.gamma * (ctx.ego.speed - l.speed));
            heard_any = true;
        }
        if !heard_any {
            // Fall back to radar-only gap hold if possible, else coast.
            if let Some(r) = ctx.radar {
                return 0.2 * (r.range - ctx.desired_gap) + 0.5 * r.range_rate;
            }
            return 0.0;
        }
        u
    }

    fn name(&self) -> &'static str {
        "consensus"
    }

    fn clone_box(&self) -> Option<Box<dyn LongitudinalController>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{test_context, CommPeer};

    #[test]
    fn equilibrium_zero_command() {
        let mut c = ConsensusController::default();
        let ctx = test_context();
        assert!(c.command(&ctx).abs() < 1e-9);
    }

    #[test]
    fn lagging_behind_accelerates() {
        let mut c = ConsensusController::default();
        let mut ctx = test_context();
        ctx.ego.position = -5.0; // 5 m behind where it should be
        assert!(c.command(&ctx) > 0.0);
    }

    #[test]
    fn running_ahead_brakes() {
        let mut c = ConsensusController::default();
        let mut ctx = test_context();
        ctx.ego.position = 5.0;
        assert!(c.command(&ctx) < 0.0);
    }

    #[test]
    fn losing_leader_still_controls_via_predecessor() {
        let mut c = ConsensusController::default();
        let mut ctx = test_context();
        ctx.leader = None;
        ctx.ego.position = -5.0;
        assert!(c.command(&ctx) > 0.0);
    }

    #[test]
    fn losing_all_comm_falls_back_to_radar() {
        let mut c = ConsensusController::default();
        let mut ctx = test_context();
        ctx.leader = None;
        ctx.predecessor = None;
        // Radar says gap equals desired: no command.
        assert!(c.command(&ctx).abs() < 1e-9);
        ctx.radar = None;
        assert_eq!(c.command(&ctx), 0.0);
    }

    #[test]
    fn speed_disagreement_damps() {
        let mut c = ConsensusController::default();
        let mut ctx = test_context();
        ctx.predecessor = Some(CommPeer {
            speed: 18.0, // slower predecessor
            ..ctx.predecessor.unwrap()
        });
        assert!(c.command(&ctx) < 0.0);
    }
}
