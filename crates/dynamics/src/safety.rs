//! Safety monitoring: collisions, minimum gaps and time-to-collision.
//!
//! The paper's attack catalogue repeatedly claims attacks "can lead to ...
//! vehicle collisions" (§V-A.1) and "incidents with other road users"
//! (§V-G). The safety monitor turns those claims into measurable outcomes:
//! every experiment reports collision count, minimum observed gap and
//! minimum time-to-collision (TTC), the standard surrogate safety measures.

use serde::{Deserialize, Serialize};

/// A recorded collision between adjacent platoon members.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Collision {
    /// Simulation time in seconds.
    pub time: f64,
    /// Index of the striking (rear) vehicle.
    pub rear_index: usize,
    /// Relative speed at impact in m/s.
    pub impact_speed: f64,
}

/// Computes time-to-collision for a follower: `gap / closing_speed`.
///
/// Returns `None` when the vehicles are separating or tracking at equal
/// speed (TTC is infinite / undefined).
///
/// # Examples
///
/// ```
/// use platoon_dynamics::safety::time_to_collision;
///
/// assert_eq!(time_to_collision(20.0, -4.0), Some(5.0));
/// assert_eq!(time_to_collision(20.0, 1.0), None);
/// ```
pub fn time_to_collision(gap: f64, range_rate: f64) -> Option<f64> {
    if range_rate >= -1e-9 {
        return None;
    }
    Some((gap / -range_rate).max(0.0))
}

/// Accumulating safety monitor for one platoon run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SafetyMonitor {
    /// All collisions observed (at most one recorded per follower).
    pub collisions: Vec<Collision>,
    /// Minimum bumper gap ever observed, per follower index (1-based platoon
    /// index; entry 0 corresponds to the first follower).
    pub min_gaps: Vec<f64>,
    /// Minimum finite TTC ever observed across the platoon.
    pub min_ttc: f64,
    collided: Vec<bool>,
}

impl SafetyMonitor {
    /// A monitor for a platoon with `followers` following vehicles.
    pub fn new(followers: usize) -> Self {
        SafetyMonitor {
            collisions: Vec::new(),
            min_gaps: vec![f64::INFINITY; followers],
            min_ttc: f64::INFINITY,
            collided: vec![false; followers],
        }
    }

    /// Records one step of observations for follower `follower_idx`
    /// (0 = first follower, i.e. platoon index 1).
    ///
    /// `gap` is the bumper-to-bumper gap to the predecessor; `range_rate`
    /// is its derivative (negative = closing).
    pub fn observe(&mut self, time: f64, follower_idx: usize, gap: f64, range_rate: f64) {
        if follower_idx >= self.min_gaps.len() {
            return;
        }
        self.min_gaps[follower_idx] = self.min_gaps[follower_idx].min(gap);
        if let Some(ttc) = time_to_collision(gap.max(0.0), range_rate) {
            self.min_ttc = self.min_ttc.min(ttc);
        }
        if gap <= 0.0 && !self.collided[follower_idx] {
            self.collided[follower_idx] = true;
            self.collisions.push(Collision {
                time,
                rear_index: follower_idx + 1,
                impact_speed: -range_rate.min(0.0),
            });
        }
    }

    /// Number of collisions recorded.
    pub fn collision_count(&self) -> usize {
        self.collisions.len()
    }

    /// The smallest gap observed anywhere in the platoon.
    pub fn global_min_gap(&self) -> f64 {
        self.min_gaps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Whether the run completed with no collision.
    pub fn is_collision_free(&self) -> bool {
        self.collisions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttc_basic() {
        assert_eq!(time_to_collision(10.0, -2.0), Some(5.0));
        assert_eq!(time_to_collision(10.0, 0.0), None);
        assert_eq!(time_to_collision(10.0, 3.0), None);
    }

    #[test]
    fn ttc_zero_gap_closing() {
        assert_eq!(time_to_collision(0.0, -1.0), Some(0.0));
    }

    #[test]
    fn monitor_records_min_gap() {
        let mut m = SafetyMonitor::new(2);
        m.observe(0.0, 0, 10.0, 0.0);
        m.observe(1.0, 0, 4.0, 0.0);
        m.observe(2.0, 0, 7.0, 0.0);
        m.observe(0.0, 1, 9.0, 0.0);
        assert_eq!(m.min_gaps[0], 4.0);
        assert_eq!(m.min_gaps[1], 9.0);
        assert_eq!(m.global_min_gap(), 4.0);
    }

    #[test]
    fn monitor_records_collision_once() {
        let mut m = SafetyMonitor::new(1);
        m.observe(1.0, 0, 0.5, -3.0);
        assert!(m.is_collision_free());
        m.observe(2.0, 0, -0.1, -3.0);
        m.observe(2.1, 0, -0.5, -3.0);
        assert_eq!(m.collision_count(), 1);
        let c = m.collisions[0];
        assert_eq!(c.rear_index, 1);
        assert!((c.impact_speed - 3.0).abs() < 1e-12);
        assert_eq!(c.time, 2.0);
    }

    #[test]
    fn monitor_tracks_min_ttc() {
        let mut m = SafetyMonitor::new(1);
        m.observe(0.0, 0, 20.0, -2.0); // TTC 10
        m.observe(1.0, 0, 6.0, -3.0); // TTC 2
        m.observe(2.0, 0, 10.0, 1.0); // separating: no TTC
        assert!((m.min_ttc - 2.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_follower_ignored() {
        let mut m = SafetyMonitor::new(1);
        m.observe(0.0, 5, -1.0, -10.0);
        assert!(m.is_collision_free());
    }

    #[test]
    fn fresh_monitor_is_clean() {
        let m = SafetyMonitor::new(3);
        assert!(m.is_collision_free());
        assert!(m.min_ttc.is_infinite());
        assert!(m.global_min_gap().is_infinite());
    }
}
