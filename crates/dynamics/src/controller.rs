//! The longitudinal controller abstraction shared by all platoon controllers.
//!
//! A controller turns locally sensed data (radar) and communicated data
//! (beacons from the predecessor and the platoon leader) into an acceleration
//! command. The split between *sensed* and *communicated* inputs is the crux
//! of the paper's threat model: communicated inputs travel over the open
//! 802.11p channel and can be replayed, forged or jammed, while sensed inputs
//! can be spoofed only by attacking the sensor itself (§V-G).

use crate::vehicle::VehicleState;
use serde::{Deserialize, Serialize};

/// Data about a peer vehicle as learned from its beacons.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommPeer {
    /// Front-bumper position in metres (as claimed in the beacon).
    pub position: f64,
    /// Speed in m/s.
    pub speed: f64,
    /// Acceleration in m/s².
    pub accel: f64,
    /// Vehicle length in metres.
    pub length: f64,
    /// Age of this information in seconds (now − beacon timestamp).
    pub age: f64,
}

/// A radar return from the predecessor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadarReading {
    /// Bumper-to-bumper range in metres.
    pub range: f64,
    /// Range rate in m/s (positive when opening).
    pub range_rate: f64,
}

/// Everything a controller may consult when computing its command.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControlContext {
    /// Control period in seconds.
    pub dt: f64,
    /// Ego vehicle state.
    pub ego: VehicleState,
    /// Index of the ego vehicle in the platoon (0 = leader).
    pub index: usize,
    /// Radar return from the predecessor, if one is in range and the radar
    /// has not been jammed.
    pub radar: Option<RadarReading>,
    /// Most recent predecessor beacon, if any has been received.
    pub predecessor: Option<CommPeer>,
    /// Most recent leader beacon, if any has been received.
    pub leader: Option<CommPeer>,
    /// Desired bumper-to-bumper gap to the predecessor in metres.
    pub desired_gap: f64,
    /// Desired distance from the leader's front bumper to the ego front
    /// bumper (sum of lengths and gaps of all vehicles ahead).
    pub desired_offset_from_leader: f64,
}

impl ControlContext {
    /// Spacing error to the predecessor: measured gap − desired gap.
    ///
    /// Prefers radar range; falls back to communicated position. Returns
    /// `None` when neither source is available (e.g. under jamming with a
    /// failed radar).
    pub fn gap_error(&self) -> Option<f64> {
        self.measured_gap().map(|g| g - self.desired_gap)
    }

    /// Measured bumper-to-bumper gap to the predecessor.
    pub fn measured_gap(&self) -> Option<f64> {
        if let Some(r) = self.radar {
            return Some(r.range);
        }
        self.predecessor
            .map(|p| p.position - p.length - self.ego.position)
    }

    /// Relative speed of the predecessor (v_pred − v_ego).
    pub fn relative_speed(&self) -> Option<f64> {
        if let Some(r) = self.radar {
            return Some(r.range_rate);
        }
        self.predecessor.map(|p| p.speed - self.ego.speed)
    }
}

/// A longitudinal controller: produces an acceleration command each step.
///
/// Implementations are deliberately small state machines; see
/// [`crate::cacc::CaccController`] for the platooning default.
pub trait LongitudinalController: std::fmt::Debug + Send + Sync {
    /// Computes the acceleration command for this control period.
    fn command(&mut self, ctx: &ControlContext) -> f64;

    /// Resets internal state (e.g. after the vehicle leaves a platoon).
    fn reset(&mut self) {}

    /// Human-readable controller name for reports.
    fn name(&self) -> &'static str;

    /// Clones the controller (including all internal state) into a fresh
    /// box, for engine snapshots. `None` means the controller does not
    /// support snapshotting; engines carrying it cannot be checkpointed.
    fn clone_box(&self) -> Option<Box<dyn LongitudinalController>> {
        None
    }
}

/// Simple speed-tracking cruise controller, used by the platoon leader to
/// follow its speed profile, and by free-driving vehicles.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CruiseController {
    /// Proportional speed gain in 1/s.
    pub gain: f64,
    /// Target speed in m/s.
    pub target_speed: f64,
}

impl CruiseController {
    /// Creates a cruise controller holding `target_speed`.
    pub fn new(target_speed: f64) -> Self {
        CruiseController {
            gain: 0.8,
            target_speed,
        }
    }
}

impl LongitudinalController for CruiseController {
    fn command(&mut self, ctx: &ControlContext) -> f64 {
        self.gain * (self.target_speed - ctx.ego.speed)
    }

    fn name(&self) -> &'static str {
        "cruise"
    }

    fn clone_box(&self) -> Option<Box<dyn LongitudinalController>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
pub(crate) fn test_context() -> ControlContext {
    ControlContext {
        dt: 0.01,
        ego: VehicleState {
            position: 0.0,
            speed: 20.0,
            accel: 0.0,
        },
        index: 1,
        radar: Some(RadarReading {
            range: 10.0,
            range_rate: 0.0,
        }),
        predecessor: Some(CommPeer {
            position: 14.5,
            speed: 20.0,
            accel: 0.0,
            length: 4.5,
            age: 0.05,
        }),
        leader: Some(CommPeer {
            position: 14.5,
            speed: 20.0,
            accel: 0.0,
            length: 4.5,
            age: 0.05,
        }),
        desired_gap: 10.0,
        desired_offset_from_leader: 14.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_error_prefers_radar() {
        let mut ctx = test_context();
        ctx.radar = Some(RadarReading {
            range: 12.0,
            range_rate: 0.0,
        });
        // Comm-implied gap is 14.5 - 4.5 - 0 = 10.0, radar says 12.0.
        assert_eq!(ctx.gap_error(), Some(2.0));
    }

    #[test]
    fn gap_error_falls_back_to_comm() {
        let mut ctx = test_context();
        ctx.radar = None;
        assert_eq!(ctx.gap_error(), Some(0.0));
    }

    #[test]
    fn gap_error_none_when_blind() {
        let mut ctx = test_context();
        ctx.radar = None;
        ctx.predecessor = None;
        assert_eq!(ctx.gap_error(), None);
    }

    #[test]
    fn relative_speed_radar_then_comm() {
        let mut ctx = test_context();
        ctx.radar = Some(RadarReading {
            range: 10.0,
            range_rate: -1.5,
        });
        assert_eq!(ctx.relative_speed(), Some(-1.5));
        ctx.radar = None;
        ctx.predecessor = Some(CommPeer {
            speed: 22.0,
            ..ctx.predecessor.unwrap()
        });
        assert_eq!(ctx.relative_speed(), Some(2.0));
    }

    #[test]
    fn cruise_pushes_toward_target() {
        let mut c = CruiseController::new(25.0);
        let ctx = test_context(); // ego at 20 m/s
        assert!(c.command(&ctx) > 0.0);
        let mut slow = CruiseController::new(15.0);
        assert!(slow.command(&ctx) < 0.0);
    }

    #[test]
    fn cruise_zero_at_target() {
        let mut c = CruiseController::new(20.0);
        let ctx = test_context();
        assert!(c.command(&ctx).abs() < 1e-12);
    }
}
