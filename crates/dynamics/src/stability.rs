//! String-stability and oscillation analysis.
//!
//! The paper's replay/FDI sections (§V-A) claim attacks "make the platoon
//! oscillate as members try to position themselves ... based on the
//! information they receive". These metrics quantify that claim:
//!
//! * **String stability** — a platoon is L∞ (or L2) string stable when the
//!   spacing-error signal does not amplify from vehicle `i` to vehicle
//!   `i+1`. Amplification ratios > 1 indicate instability growing down the
//!   string.
//! * **Oscillation energy** — integral of squared spacing error, the
//!   passenger-discomfort proxy.

use serde::{Deserialize, Serialize};

/// A recorded time series, sampled at a fixed period.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Sample period in seconds.
    pub dt: f64,
    /// Samples.
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given sample period.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn new(dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        TimeSeries {
            dt,
            values: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// L∞ norm: maximum absolute value.
    pub fn linf(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// L2 norm (discrete): `sqrt(Σ v² · dt)`.
    pub fn l2(&self) -> f64 {
        (self.values.iter().map(|v| v * v).sum::<f64>() * self.dt).sqrt()
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// Minimum value (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Oscillation energy: `Σ v²·dt` (squared L2).
    pub fn energy(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>() * self.dt
    }

    /// Counts zero crossings — a cheap oscillation-frequency proxy.
    pub fn zero_crossings(&self) -> usize {
        self.values
            .windows(2)
            .filter(|w| (w[0] > 0.0) != (w[1] > 0.0) && w[0] != 0.0)
            .count()
    }
}

/// String-stability verdict over a platoon's spacing-error records.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StringStabilityReport {
    /// Per-follower L∞ spacing error, ordered front to back (index 0 = first
    /// follower).
    pub linf_errors: Vec<f64>,
    /// Per-follower L2 spacing error.
    pub l2_errors: Vec<f64>,
    /// Consecutive L∞ amplification ratios `e_{i+1}/e_i`.
    pub linf_amplification: Vec<f64>,
    /// Consecutive L2 amplification ratios.
    pub l2_amplification: Vec<f64>,
    /// Total oscillation energy over all followers.
    pub total_energy: f64,
}

impl StringStabilityReport {
    /// Computes the report from per-follower spacing-error series.
    pub fn from_errors(errors: &[TimeSeries]) -> Self {
        let linf_errors: Vec<f64> = errors.iter().map(TimeSeries::linf).collect();
        let l2_errors: Vec<f64> = errors.iter().map(TimeSeries::l2).collect();
        let ratio = |v: &[f64]| -> Vec<f64> {
            v.windows(2)
                .map(|w| if w[0].abs() < 1e-9 { 1.0 } else { w[1] / w[0] })
                .collect()
        };
        StringStabilityReport {
            linf_amplification: ratio(&linf_errors),
            l2_amplification: ratio(&l2_errors),
            total_energy: errors.iter().map(TimeSeries::energy).sum(),
            linf_errors,
            l2_errors,
        }
    }

    /// Whether the platoon is L∞ string stable (no amplification ratio
    /// exceeds `1 + tolerance`).
    pub fn is_string_stable(&self, tolerance: f64) -> bool {
        self.linf_amplification
            .iter()
            .all(|&r| r <= 1.0 + tolerance)
    }

    /// The worst (largest) L∞ amplification ratio, or 1.0 for a platoon of
    /// fewer than two followers.
    pub fn worst_amplification(&self) -> f64 {
        self.linf_amplification
            .iter()
            .copied()
            .fold(1.0_f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        TimeSeries {
            dt: 0.1,
            values: vals.to_vec(),
        }
    }

    #[test]
    fn norms_of_simple_series() {
        let s = series(&[3.0, -4.0]);
        assert_eq!(s.linf(), 4.0);
        assert!((s.l2() - (25.0_f64 * 0.1).sqrt()).abs() < 1e-12);
        assert!((s.energy() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std() {
        let s = series(&[1.0, 2.0, 3.0]);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!((s.std_dev() - 1.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn empty_series_edge_cases() {
        let s = TimeSeries::new(0.1);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.linf(), 0.0);
    }

    #[test]
    fn zero_crossings_counts_sign_changes() {
        let s = series(&[1.0, -1.0, 1.0, 1.0, -2.0]);
        assert_eq!(s.zero_crossings(), 3);
    }

    #[test]
    fn stable_string_detected() {
        // Decreasing errors down the string: amplification < 1.
        let errors = vec![
            series(&[1.0, 0.8]),
            series(&[0.5, 0.4]),
            series(&[0.2, 0.1]),
        ];
        let r = StringStabilityReport::from_errors(&errors);
        assert!(r.is_string_stable(0.01));
        assert!(r.worst_amplification() <= 1.0);
    }

    #[test]
    fn unstable_string_detected() {
        let errors = vec![series(&[0.5]), series(&[1.0]), series(&[2.0])];
        let r = StringStabilityReport::from_errors(&errors);
        assert!(!r.is_string_stable(0.01));
        assert!((r.worst_amplification() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_follower_is_trivially_stable() {
        let errors = vec![series(&[5.0])];
        let r = StringStabilityReport::from_errors(&errors);
        assert!(r.is_string_stable(0.0));
        assert_eq!(r.worst_amplification(), 1.0);
    }

    #[test]
    fn zero_error_predecessor_does_not_divide_by_zero() {
        let errors = vec![series(&[0.0]), series(&[1.0])];
        let r = StringStabilityReport::from_errors(&errors);
        assert!(r.linf_amplification[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "dt")]
    fn zero_dt_panics() {
        TimeSeries::new(0.0);
    }
}
