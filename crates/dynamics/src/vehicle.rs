//! Longitudinal vehicle model: a point-mass with first-order powertrain lag.
//!
//! This is the same abstraction Plexe \[39\] uses for platooning studies: each
//! vehicle tracks position `x`, speed `v` and realised acceleration `a`; a
//! commanded acceleration `u` passes through a first-order lag
//! `ȧ = (u − a)/τ` modelling engine/brake actuation, then is clamped to the
//! physical acceleration envelope before integration.

use serde::{Deserialize, Serialize};

/// Static parameters of a vehicle.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Vehicle length in metres (bumper to bumper).
    pub length: f64,
    /// Gross mass in kilograms (used by the fuel model).
    pub mass: f64,
    /// Maximum acceleration in m/s².
    pub max_accel: f64,
    /// Maximum deceleration (braking) in m/s², expressed positive.
    pub max_decel: f64,
    /// Powertrain first-order lag time constant τ in seconds.
    pub engine_tau: f64,
    /// Maximum speed in m/s.
    pub max_speed: f64,
    /// Aerodynamic drag coefficient times frontal area, `Cd·A` in m².
    pub drag_area: f64,
}

impl VehicleParams {
    /// Typical heavy truck, the platform truck-platooning targets (§I of the
    /// paper motivates platooning with freight).
    pub fn truck() -> Self {
        VehicleParams {
            length: 16.5,
            mass: 30_000.0,
            max_accel: 1.5,
            max_decel: 6.0,
            engine_tau: 0.5,
            max_speed: 33.0,
            drag_area: 7.5,
        }
    }

    /// Typical passenger car.
    pub fn car() -> Self {
        VehicleParams {
            length: 4.5,
            mass: 1_500.0,
            max_accel: 3.0,
            max_decel: 8.0,
            engine_tau: 0.3,
            max_speed: 50.0,
            drag_area: 0.7,
        }
    }
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self::truck()
    }
}

/// Dynamic state of a vehicle on a single-lane longitudinal axis.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct VehicleState {
    /// Position of the front bumper in metres.
    pub position: f64,
    /// Speed in m/s (never negative; vehicles do not reverse).
    pub speed: f64,
    /// Realised acceleration in m/s².
    pub accel: f64,
}

/// A vehicle: parameters, state and the pending acceleration command.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Static parameters.
    pub params: VehicleParams,
    /// Current dynamic state.
    pub state: VehicleState,
    /// Last commanded acceleration `u` (before lag and clamping).
    pub command: f64,
}

impl Vehicle {
    /// Creates a vehicle at `position` travelling at `speed`.
    pub fn new(params: VehicleParams, position: f64, speed: f64) -> Self {
        Vehicle {
            params,
            state: VehicleState {
                position,
                speed,
                accel: 0.0,
            },
            command: 0.0,
        }
    }

    /// Sets the commanded acceleration for the next integration step.
    pub fn set_command(&mut self, u: f64) {
        self.command = u;
    }

    /// Advances the state by `dt` seconds using semi-implicit Euler with
    /// first-order actuation lag.
    ///
    /// The realised acceleration relaxes toward the (clamped) command with
    /// time constant `engine_tau`; speed is clamped to `[0, max_speed]`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive and finite");
        let p = &self.params;
        let u = self.command.clamp(-p.max_decel, p.max_accel);

        // First-order lag: a' = a + (u - a) * dt/tau  (exact discretisation).
        let alpha = 1.0 - (-dt / p.engine_tau).exp();
        let mut a = self.state.accel + (u - self.state.accel) * alpha;
        a = a.clamp(-p.max_decel, p.max_accel);

        let mut v = self.state.speed + a * dt;
        if v < 0.0 {
            // Vehicle has come to rest within the step; do not reverse.
            v = 0.0;
            a = (v - self.state.speed) / dt;
        }
        if v > p.max_speed {
            v = p.max_speed;
            a = (v - self.state.speed) / dt;
        }

        // Trapezoidal position update for second-order accuracy.
        self.state.position += 0.5 * (self.state.speed + v) * dt;
        self.state.speed = v;
        self.state.accel = a;
    }

    /// Bumper-to-bumper gap from this vehicle to a predecessor state.
    ///
    /// Positive when there is clear road between them; `<= 0` means contact.
    pub fn gap_to(&self, predecessor: &Vehicle) -> f64 {
        predecessor.state.position - predecessor.params.length - self.state.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn veh(v0: f64) -> Vehicle {
        Vehicle::new(VehicleParams::car(), 0.0, v0)
    }

    #[test]
    fn constant_speed_without_command() {
        let mut v = veh(20.0);
        for _ in 0..100 {
            v.step(0.01);
        }
        assert!((v.state.speed - 20.0).abs() < 1e-9);
        assert!((v.state.position - 20.0).abs() < 1e-6);
    }

    #[test]
    fn accelerates_toward_command_with_lag() {
        let mut v = veh(10.0);
        v.set_command(2.0);
        v.step(0.01);
        // After one small step the realised accel is between 0 and command.
        assert!(v.state.accel > 0.0 && v.state.accel < 2.0);
        for _ in 0..500 {
            v.step(0.01);
        }
        // After many time constants, realised accel converges to the command.
        assert!((v.state.accel - 2.0).abs() < 1e-3);
    }

    #[test]
    fn command_clamped_to_envelope() {
        let mut v = veh(20.0);
        v.set_command(100.0);
        for _ in 0..1000 {
            v.step(0.01);
        }
        assert!(v.state.accel <= v.params.max_accel + 1e-9);
    }

    #[test]
    fn braking_stops_at_zero_speed() {
        let mut v = veh(5.0);
        v.set_command(-100.0);
        for _ in 0..1000 {
            v.step(0.01);
        }
        assert_eq!(v.state.speed, 0.0);
        assert!(
            v.state.position > 0.0,
            "travelled some distance while stopping"
        );
    }

    #[test]
    fn speed_capped_at_max() {
        let mut v = veh(49.0);
        v.set_command(3.0);
        for _ in 0..2000 {
            v.step(0.01);
        }
        assert!(v.state.speed <= v.params.max_speed + 1e-9);
    }

    #[test]
    fn gap_to_accounts_for_length() {
        let params = VehicleParams::car();
        let front = Vehicle::new(params, 100.0, 20.0);
        let rear = Vehicle::new(params, 80.0, 20.0);
        assert!((rear.gap_to(&front) - (100.0 - params.length - 80.0)).abs() < 1e-12);
    }

    #[test]
    fn truck_is_heavier_and_slower_than_car() {
        let t = VehicleParams::truck();
        let c = VehicleParams::car();
        assert!(t.mass > c.mass);
        assert!(t.max_accel < c.max_accel);
    }

    #[test]
    #[should_panic(expected = "dt")]
    fn zero_dt_panics() {
        veh(1.0).step(0.0);
    }

    #[test]
    fn braking_distance_physically_plausible() {
        // From 25 m/s with 8 m/s² max braking, ideal distance is v²/2a ≈ 39 m.
        // Actuation lag adds a bit.
        let mut v = veh(25.0);
        v.set_command(-8.0);
        let mut steps = 0;
        while v.state.speed > 0.0 && steps < 10_000 {
            v.step(0.01);
            steps += 1;
        }
        assert!(
            v.state.position > 35.0 && v.state.position < 60.0,
            "braking distance {:.1} m out of range",
            v.state.position
        );
    }
}
