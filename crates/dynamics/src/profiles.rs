//! Leader speed profiles: the disturbance inputs that excite a platoon.
//!
//! String-stability and attack-impact experiments need repeatable leader
//! behaviour. The profiles here mirror the standard Plexe/VENTOS evaluation
//! workloads: constant cruise, a step change, a sinusoidal perturbation (the
//! classic string-stability probe), an emergency-braking test, and a
//! synthetic urban drive composed of deterministic pseudo-random phases.

use serde::{Deserialize, Serialize};

/// A deterministic target-speed profile `v(t)` for the platoon leader.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SpeedProfile {
    /// Hold a constant speed.
    Constant {
        /// Cruise speed in m/s.
        speed: f64,
    },
    /// Step from `initial` to `target` at time `at`.
    Step {
        /// Speed before the step, m/s.
        initial: f64,
        /// Speed after the step, m/s.
        target: f64,
        /// Step time in seconds.
        at: f64,
    },
    /// Sinusoidal perturbation around a mean speed — the canonical
    /// string-stability excitation.
    Sinusoid {
        /// Mean speed in m/s.
        mean: f64,
        /// Peak deviation in m/s.
        amplitude: f64,
        /// Period of the oscillation in seconds.
        period: f64,
    },
    /// Cruise, then brake hard to `low` at `brake_at`, hold for `hold`,
    /// then recover to the cruise speed.
    BrakeTest {
        /// Cruise speed in m/s.
        cruise: f64,
        /// Speed during the braking phase in m/s.
        low: f64,
        /// Brake onset time in seconds.
        brake_at: f64,
        /// Duration of the low-speed hold in seconds.
        hold: f64,
    },
    /// Piecewise-constant speeds changing every `phase` seconds, drawn
    /// deterministically from `seed` in `[min, max]` — a stand-in for a
    /// recorded urban/highway drive cycle.
    UrbanDrive {
        /// Minimum phase speed, m/s.
        min: f64,
        /// Maximum phase speed, m/s.
        max: f64,
        /// Phase duration in seconds.
        phase: f64,
        /// Seed for the deterministic phase sequence.
        seed: u64,
    },
}

impl SpeedProfile {
    /// The target speed at time `t` seconds.
    pub fn target_speed(&self, t: f64) -> f64 {
        match *self {
            SpeedProfile::Constant { speed } => speed,
            SpeedProfile::Step {
                initial,
                target,
                at,
            } => {
                if t < at {
                    initial
                } else {
                    target
                }
            }
            SpeedProfile::Sinusoid {
                mean,
                amplitude,
                period,
            } => mean + amplitude * (std::f64::consts::TAU * t / period).sin(),
            SpeedProfile::BrakeTest {
                cruise,
                low,
                brake_at,
                hold,
            } => {
                if t >= brake_at && t < brake_at + hold {
                    low
                } else {
                    cruise
                }
            }
            SpeedProfile::UrbanDrive {
                min,
                max,
                phase,
                seed,
            } => {
                let idx = (t / phase).floor() as u64;
                // SplitMix64 over (seed, idx) for a deterministic sequence.
                let mut z = seed
                    .wrapping_add(idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
                min + unit * (max - min)
            }
        }
    }

    /// The speed the profile starts at (used to initialise the platoon).
    pub fn initial_speed(&self) -> f64 {
        self.target_speed(0.0)
    }
}

impl Default for SpeedProfile {
    fn default() -> Self {
        SpeedProfile::Constant { speed: 25.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let p = SpeedProfile::Constant { speed: 20.0 };
        for t in [0.0, 1.0, 100.0] {
            assert_eq!(p.target_speed(t), 20.0);
        }
    }

    #[test]
    fn step_switches_at_time() {
        let p = SpeedProfile::Step {
            initial: 20.0,
            target: 25.0,
            at: 10.0,
        };
        assert_eq!(p.target_speed(9.99), 20.0);
        assert_eq!(p.target_speed(10.0), 25.0);
        assert_eq!(p.initial_speed(), 20.0);
    }

    #[test]
    fn sinusoid_bounds_and_period() {
        let p = SpeedProfile::Sinusoid {
            mean: 25.0,
            amplitude: 2.0,
            period: 10.0,
        };
        for i in 0..1000 {
            let v = p.target_speed(i as f64 * 0.05);
            assert!((23.0..=27.0).contains(&v));
        }
        // Quarter period hits the peak.
        assert!((p.target_speed(2.5) - 27.0).abs() < 1e-9);
        // Periodicity.
        assert!((p.target_speed(3.0) - p.target_speed(13.0)).abs() < 1e-9);
    }

    #[test]
    fn brake_test_phases() {
        let p = SpeedProfile::BrakeTest {
            cruise: 25.0,
            low: 10.0,
            brake_at: 30.0,
            hold: 5.0,
        };
        assert_eq!(p.target_speed(0.0), 25.0);
        assert_eq!(p.target_speed(31.0), 10.0);
        assert_eq!(p.target_speed(36.0), 25.0);
    }

    #[test]
    fn urban_drive_deterministic_and_bounded() {
        let p = SpeedProfile::UrbanDrive {
            min: 5.0,
            max: 15.0,
            phase: 10.0,
            seed: 7,
        };
        for i in 0..200 {
            let t = i as f64 * 0.7;
            let v = p.target_speed(t);
            assert!((5.0..=15.0).contains(&v), "v={v} at t={t}");
            assert_eq!(v, p.target_speed(t), "must be deterministic");
        }
        // Different phases give different speeds (with overwhelming likelihood).
        assert_ne!(p.target_speed(0.0), p.target_speed(11.0));
        // Constant within a phase.
        assert_eq!(p.target_speed(0.0), p.target_speed(9.9));
    }

    #[test]
    fn urban_drive_seed_sensitivity() {
        let a = SpeedProfile::UrbanDrive {
            min: 5.0,
            max: 15.0,
            phase: 10.0,
            seed: 1,
        };
        let b = SpeedProfile::UrbanDrive {
            min: 5.0,
            max: 15.0,
            phase: 10.0,
            seed: 2,
        };
        assert_ne!(a.target_speed(0.0), b.target_speed(0.0));
    }
}
