//! Cooperative Adaptive Cruise Control — the PATH/Rajamani constant-spacing
//! controller used by Plexe \[39\], the platform the paper names as the
//! standard platooning digital twin (§VI-B.5).
//!
//! CACC fuses radar ranging with V2V beacons from the predecessor *and* the
//! platoon leader. The leader feed-forward is what allows string-stable
//! operation at constant (speed-independent) gaps of a few metres — and it is
//! exactly this dependence on wireless data that the paper's attack catalogue
//! exploits: replayed or forged beacons enter this control law directly.
//!
//! Control law (Rajamani, with damping ratio ξ = 1):
//!
//! ```text
//! e_i = x_i − x_{i−1} + L_{i−1} + gap_des          (negative spacing error)
//! u_i = (1−C1)·a_{i−1} + C1·a_0
//!       − (2ξ−C1(ξ+√(ξ²−1)))·ω_n·(v_i − v_{i−1})
//!       − C1·(ξ+√(ξ²−1))·ω_n·(v_i − v_0)
//!       − ω_n²·e_i
//! ```

use crate::controller::{ControlContext, LongitudinalController};
use serde::{Deserialize, Serialize};

/// PATH CACC controller parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CaccController {
    /// Leader weighting C1 ∈ (0, 1); Plexe default 0.5.
    pub c1: f64,
    /// Bandwidth ω_n in rad/s; Plexe default 0.2.
    pub omega_n: f64,
    /// Damping ratio ξ; Plexe default 1.0 (critical damping).
    pub xi: f64,
    /// Maximum acceptable beacon age in seconds before the communicated data
    /// is considered lost and the controller degrades (see
    /// [`CaccController::mode`]).
    pub max_beacon_age: f64,
    /// Fallback command used in degraded mode when even the radar is blind.
    pub blind_fallback_brake: f64,
    /// Radar-floor trigger: when the kinematic deceleration required to stop
    /// short of the predecessor exceeds this (m/s²), the floor engages. Set
    /// high enough that nominal cooperative transients (required decel well
    /// under 1 m/s²) never touch it.
    pub aeb_trigger_decel: f64,
    /// Safety factor applied to the required deceleration once triggered.
    pub aeb_gain: f64,
    /// Standstill margin (m) the floor stops short of, so the brake engages
    /// before the bumpers meet rather than exactly at contact.
    pub aeb_standstill: f64,
}

impl Default for CaccController {
    fn default() -> Self {
        CaccController {
            c1: 0.5,
            omega_n: 0.2,
            xi: 1.0,
            max_beacon_age: 0.5,
            blind_fallback_brake: -2.0,
            aeb_trigger_decel: 2.0,
            aeb_gain: 1.2,
            aeb_standstill: 2.0,
        }
    }
}

/// Why (if at all) the controller is operating in degraded mode this step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaccMode {
    /// Full cooperative control: fresh beacons from predecessor and leader.
    Cooperative,
    /// Beacons stale/missing; fell back to radar-only gap control.
    RadarFallback,
    /// No usable information at all; applying the blind fallback brake.
    Blind,
}

impl CaccController {
    /// CACC with custom leader weighting and bandwidth.
    pub fn new(c1: f64, omega_n: f64) -> Self {
        CaccController {
            c1,
            omega_n,
            ..Default::default()
        }
    }

    /// Classifies the operating mode for a context (used by metrics and the
    /// graceful-degradation ablation in experiment F2).
    pub fn mode(&self, ctx: &ControlContext) -> CaccMode {
        let fresh = |age: f64| age <= self.max_beacon_age;
        let comm_ok = ctx.predecessor.is_some_and(|p| fresh(p.age))
            && ctx.leader.is_some_and(|l| fresh(l.age));
        if comm_ok {
            CaccMode::Cooperative
        } else if ctx.radar.is_some() {
            CaccMode::RadarFallback
        } else {
            CaccMode::Blind
        }
    }

    fn cooperative_command(&self, ctx: &ControlContext) -> f64 {
        let pred = ctx.predecessor.expect("checked by mode()");
        let lead = ctx.leader.expect("checked by mode()");

        // Spacing error: prefer radar range (local, attack-resistant) over
        // communicated position, exactly as Plexe does.
        let gap = ctx
            .measured_gap()
            .unwrap_or(pred.position - pred.length - ctx.ego.position);
        let e = ctx.desired_gap - gap; // positive when too close

        let xi_term = self.xi + (self.xi * self.xi - 1.0).max(0.0).sqrt();
        let a3 = -(2.0 * self.xi - self.c1 * xi_term) * self.omega_n;
        let a4 = -self.c1 * xi_term * self.omega_n;
        let a5 = -self.omega_n * self.omega_n;

        (1.0 - self.c1) * pred.accel
            + self.c1 * lead.accel
            + a3 * (ctx.ego.speed - pred.speed)
            + a4 * (ctx.ego.speed - lead.speed)
            + a5 * e
    }

    fn radar_fallback_command(&self, ctx: &ControlContext) -> f64 {
        // Degrade to an ACC-like law on the radar with a conservative gap:
        // same gains as the default ACC, constant-time-gap policy.
        let radar = ctx.radar.expect("checked by mode()");
        let desired = 2.0 + 1.2 * ctx.ego.speed;
        0.23 * (radar.range - desired) + 0.8 * radar.range_rate
    }

    /// AEB-like radar floor: communicated feedforward must never out-vote a
    /// radar that shows the gap collapsing. When the closing rate demands more
    /// deceleration than [`Self::aeb_trigger_decel`] to stop short of the
    /// predecessor, the command is floored at `aeb_gain` times that required
    /// deceleration (the vehicle model clamps to its physical limit). Inert in
    /// nominal operation, where the required deceleration stays well below the
    /// trigger.
    fn radar_safety_floor(&self, ctx: &ControlContext, u: f64) -> f64 {
        let Some(radar) = ctx.radar else { return u };
        if radar.range_rate >= -0.1 {
            return u;
        }
        let margin = (radar.range - self.aeb_standstill).max(0.1);
        let required = radar.range_rate * radar.range_rate / (2.0 * margin);
        if required > self.aeb_trigger_decel {
            u.min(-self.aeb_gain * required)
        } else {
            u
        }
    }
}

impl LongitudinalController for CaccController {
    fn command(&mut self, ctx: &ControlContext) -> f64 {
        let u = match self.mode(ctx) {
            CaccMode::Cooperative => self.cooperative_command(ctx),
            CaccMode::RadarFallback => self.radar_fallback_command(ctx),
            CaccMode::Blind => self.blind_fallback_brake,
        };
        self.radar_safety_floor(ctx, u)
    }

    fn name(&self) -> &'static str {
        "cacc"
    }

    fn clone_box(&self) -> Option<Box<dyn LongitudinalController>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{test_context, CommPeer, RadarReading};

    #[test]
    fn equilibrium_produces_no_command() {
        let mut cacc = CaccController::default();
        let ctx = test_context(); // gap = desired, all speeds equal, no accel
        assert!(cacc.command(&ctx).abs() < 1e-9);
    }

    #[test]
    fn follows_leader_acceleration_feedforward() {
        let mut cacc = CaccController::default();
        let mut ctx = test_context();
        ctx.leader = Some(CommPeer {
            accel: 1.0,
            ..ctx.leader.unwrap()
        });
        ctx.predecessor = Some(CommPeer {
            accel: 1.0,
            ..ctx.predecessor.unwrap()
        });
        let u = cacc.command(&ctx);
        assert!((u - 1.0).abs() < 0.2, "feedforward should dominate: {u}");
    }

    #[test]
    fn too_close_brakes() {
        let mut cacc = CaccController::default();
        let mut ctx = test_context();
        ctx.radar = Some(RadarReading {
            range: ctx.desired_gap - 5.0,
            range_rate: 0.0,
        });
        assert!(cacc.command(&ctx) < 0.0);
    }

    #[test]
    fn stale_beacons_trigger_radar_fallback() {
        let cacc = CaccController::default();
        let mut ctx = test_context();
        ctx.predecessor = Some(CommPeer {
            age: 2.0,
            ..ctx.predecessor.unwrap()
        });
        assert_eq!(cacc.mode(&ctx), CaccMode::RadarFallback);
    }

    #[test]
    fn missing_leader_beacon_triggers_fallback() {
        let cacc = CaccController::default();
        let mut ctx = test_context();
        ctx.leader = None;
        assert_eq!(cacc.mode(&ctx), CaccMode::RadarFallback);
    }

    #[test]
    fn blind_mode_brakes() {
        let mut cacc = CaccController::default();
        let mut ctx = test_context();
        ctx.radar = None;
        ctx.predecessor = None;
        ctx.leader = None;
        assert_eq!(cacc.mode(&ctx), CaccMode::Blind);
        assert_eq!(cacc.command(&ctx), cacc.blind_fallback_brake);
    }

    #[test]
    fn forged_predecessor_accel_shifts_command() {
        // The attack surface: a forged beacon with a large phantom
        // deceleration directly drags the command down.
        let mut cacc = CaccController::default();
        let honest = cacc.command(&test_context());
        let mut ctx = test_context();
        ctx.predecessor = Some(CommPeer {
            accel: -5.0,
            ..ctx.predecessor.unwrap()
        });
        let forged = cacc.command(&ctx);
        assert!(
            forged < honest - 2.0,
            "forged accel must propagate: {forged}"
        );
    }

    #[test]
    fn radar_fallback_behaves_like_acc() {
        let mut cacc = CaccController::default();
        let mut ctx = test_context();
        ctx.predecessor = None;
        ctx.leader = None;
        // At the (larger) ACC desired gap the fallback command is ~0.
        ctx.radar = Some(RadarReading {
            range: 2.0 + 1.2 * ctx.ego.speed,
            range_rate: 0.0,
        });
        assert!(cacc.command(&ctx).abs() < 1e-9);
    }
}
