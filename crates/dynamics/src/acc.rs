//! Adaptive Cruise Control with a constant time-gap spacing policy.
//!
//! ACC uses **only the radar** — no V2V communication — which makes it the
//! natural fallback when the wireless channel is jammed or untrusted, and the
//! baseline against which the paper's communication attacks are measured: an
//! attack on beacons cannot touch an ACC platoon, but ACC requires much
//! larger gaps for string stability, surrendering the fuel and road-space
//! benefits platooning exists for (§II-B).

use crate::controller::{ControlContext, LongitudinalController};
use serde::{Deserialize, Serialize};

/// Constant time-gap ACC.
///
/// Control law (standard CTG form):
///
/// ```text
/// e   = range − (standstill + T·v_ego)
/// u   = k_gap · e + k_rel · range_rate
/// ```
///
/// # Examples
///
/// ```
/// use platoon_dynamics::acc::AccController;
/// use platoon_dynamics::controller::LongitudinalController;
///
/// let acc = AccController::default();
/// assert_eq!(acc.name(), "acc");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccController {
    /// Time gap T in seconds.
    pub time_gap: f64,
    /// Standstill distance in metres.
    pub standstill: f64,
    /// Gain on the spacing error, 1/s².
    pub k_gap: f64,
    /// Gain on the range rate, 1/s.
    pub k_rel: f64,
    /// Command when no target is measurable (free-flow acceleration).
    pub free_flow_accel: f64,
}

impl Default for AccController {
    fn default() -> Self {
        AccController {
            time_gap: 1.2,
            standstill: 2.0,
            k_gap: 0.23,
            // Strong range-rate damping is what makes the constant-time-gap
            // law string stable (Milanés & Shladover's production-ACC gains
            // are in this regime); weak damping amplifies down the string.
            k_rel: 0.8,
            free_flow_accel: 0.0,
        }
    }
}

impl AccController {
    /// ACC with a custom time gap.
    pub fn with_time_gap(time_gap: f64) -> Self {
        AccController {
            time_gap,
            ..Default::default()
        }
    }

    /// Desired gap at a given ego speed.
    pub fn desired_gap(&self, speed: f64) -> f64 {
        self.standstill + self.time_gap * speed
    }
}

impl LongitudinalController for AccController {
    fn command(&mut self, ctx: &ControlContext) -> f64 {
        let Some(radar) = ctx.radar else {
            // Radar blind: hold speed (or gently accelerate in free flow).
            return self.free_flow_accel;
        };
        let e = radar.range - self.desired_gap(ctx.ego.speed);
        self.k_gap * e + self.k_rel * radar.range_rate
    }

    fn name(&self) -> &'static str {
        "acc"
    }

    fn clone_box(&self) -> Option<Box<dyn LongitudinalController>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{test_context, RadarReading};

    #[test]
    fn at_desired_gap_and_matched_speed_no_command() {
        let mut acc = AccController::default();
        let mut ctx = test_context();
        ctx.radar = Some(RadarReading {
            range: acc.desired_gap(ctx.ego.speed),
            range_rate: 0.0,
        });
        assert!(acc.command(&ctx).abs() < 1e-12);
    }

    #[test]
    fn too_close_brakes() {
        let mut acc = AccController::default();
        let mut ctx = test_context();
        ctx.radar = Some(RadarReading {
            range: acc.desired_gap(ctx.ego.speed) - 10.0,
            range_rate: 0.0,
        });
        assert!(acc.command(&ctx) < 0.0);
    }

    #[test]
    fn too_far_accelerates() {
        let mut acc = AccController::default();
        let mut ctx = test_context();
        ctx.radar = Some(RadarReading {
            range: acc.desired_gap(ctx.ego.speed) + 10.0,
            range_rate: 0.0,
        });
        assert!(acc.command(&ctx) > 0.0);
    }

    #[test]
    fn closing_target_brakes_harder() {
        let mut acc = AccController::default();
        let mut ctx = test_context();
        let range = acc.desired_gap(ctx.ego.speed);
        ctx.radar = Some(RadarReading {
            range,
            range_rate: -3.0,
        });
        let closing = acc.command(&ctx);
        ctx.radar = Some(RadarReading {
            range,
            range_rate: 0.0,
        });
        let steady = acc.command(&ctx);
        assert!(closing < steady);
    }

    #[test]
    fn radar_blind_returns_free_flow() {
        let mut acc = AccController {
            free_flow_accel: 0.5,
            ..Default::default()
        };
        let mut ctx = test_context();
        ctx.radar = None;
        assert_eq!(acc.command(&ctx), 0.5);
    }

    #[test]
    fn ignores_communication_entirely() {
        // Same radar, wildly different comm data → identical command.
        let mut acc = AccController::default();
        let ctx_a = test_context();
        let mut ctx_b = test_context();
        ctx_b.predecessor = None;
        ctx_b.leader = None;
        assert_eq!(acc.command(&ctx_a), acc.command(&ctx_b));
    }

    #[test]
    fn desired_gap_scales_with_speed() {
        let acc = AccController::with_time_gap(1.5);
        assert!(acc.desired_gap(30.0) > acc.desired_gap(10.0));
        assert!((acc.desired_gap(0.0) - acc.standstill).abs() < 1e-12);
    }
}
