//! Ploeg's time-gap CACC (Ploeg et al., "Design and experimental evaluation
//! of cooperative adaptive cruise control", ITSC 2011) — the second classic
//! platoon controller implemented by Plexe.
//!
//! Unlike the PATH controller it uses a *constant time-gap* spacing policy
//! and only needs the **predecessor's** acceleration (no leader feed), which
//! changes its attack surface: leader-beacon attacks cannot touch it, but
//! predecessor-beacon forgery propagates hop by hop down the string.
//!
//! Control law (first-order command filter):
//!
//! ```text
//! e  = (x_{i−1} − x_i − L_{i−1}) − (r + h·v_i)
//! ė  = (v_{i−1} − v_i) − h·a_i
//! u̇_i = (−u_i + kp·e + kd·ė + u_{i−1}) / h
//! ```

use crate::controller::{ControlContext, LongitudinalController};
use serde::{Deserialize, Serialize};

/// Ploeg CACC with internal command-filter state.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PloegController {
    /// Time gap h in seconds (Ploeg's experiments used 0.5–1.0 s).
    pub time_gap: f64,
    /// Standstill distance r in metres.
    pub standstill: f64,
    /// Proportional gain kp.
    pub kp: f64,
    /// Derivative gain kd.
    pub kd: f64,
    /// Current filtered command u_i (internal state).
    u: f64,
}

impl Default for PloegController {
    fn default() -> Self {
        PloegController {
            time_gap: 0.7,
            standstill: 2.0,
            kp: 0.2,
            kd: 0.7,
            u: 0.0,
        }
    }
}

impl PloegController {
    /// Ploeg CACC with a custom time gap.
    pub fn with_time_gap(time_gap: f64) -> Self {
        PloegController {
            time_gap,
            ..Default::default()
        }
    }

    /// Desired gap at a given ego speed.
    pub fn desired_gap(&self, speed: f64) -> f64 {
        self.standstill + self.time_gap * speed
    }

    /// The current filtered command (exposed for tests and metrics).
    pub fn filtered_command(&self) -> f64 {
        self.u
    }
}

impl LongitudinalController for PloegController {
    fn command(&mut self, ctx: &ControlContext) -> f64 {
        let (gap, rel_speed, pred_accel_cmd) = match (ctx.measured_gap(), ctx.relative_speed()) {
            (Some(g), Some(rs)) => {
                let pa = ctx.predecessor.map(|p| p.accel).unwrap_or(0.0);
                (g, rs, pa)
            }
            _ => {
                // Blind: decay the command toward gentle braking.
                self.u += (-2.0 - self.u) * (ctx.dt / self.time_gap);
                return self.u;
            }
        };

        let e = gap - self.desired_gap(ctx.ego.speed);
        let e_dot = rel_speed - self.time_gap * ctx.ego.accel;
        let u_dot = (-self.u + self.kp * e + self.kd * e_dot + pred_accel_cmd) / self.time_gap;
        self.u += u_dot * ctx.dt;
        self.u
    }

    fn reset(&mut self) {
        self.u = 0.0;
    }

    fn name(&self) -> &'static str {
        "ploeg"
    }

    fn clone_box(&self) -> Option<Box<dyn LongitudinalController>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{test_context, CommPeer, RadarReading};

    fn ctx_at_equilibrium(c: &PloegController) -> crate::controller::ControlContext {
        let mut ctx = test_context();
        ctx.radar = Some(RadarReading {
            range: c.desired_gap(ctx.ego.speed),
            range_rate: 0.0,
        });
        ctx
    }

    #[test]
    fn equilibrium_holds_zero_command() {
        let mut c = PloegController::default();
        let ctx = ctx_at_equilibrium(&c);
        for _ in 0..100 {
            c.command(&ctx);
        }
        assert!(c.filtered_command().abs() < 1e-9);
    }

    #[test]
    fn too_close_converges_to_braking() {
        let mut c = PloegController::default();
        let mut ctx = ctx_at_equilibrium(&c);
        ctx.radar = Some(RadarReading {
            range: c.desired_gap(ctx.ego.speed) - 8.0,
            range_rate: 0.0,
        });
        let mut u = 0.0;
        for _ in 0..200 {
            u = c.command(&ctx);
        }
        assert!(u < -0.5, "should brake when too close, got {u}");
    }

    #[test]
    fn predecessor_accel_feeds_forward() {
        let mut c = PloegController::default();
        let mut ctx = ctx_at_equilibrium(&c);
        ctx.predecessor = Some(CommPeer {
            accel: 2.0,
            ..ctx.predecessor.unwrap()
        });
        let mut u = 0.0;
        for _ in 0..500 {
            u = c.command(&ctx);
        }
        assert!(u > 1.0, "feedforward should pull command up, got {u}");
    }

    #[test]
    fn leader_beacon_is_ignored() {
        let mut a = PloegController::default();
        let mut b = PloegController::default();
        let ctx1 = ctx_at_equilibrium(&a);
        let mut ctx2 = ctx_at_equilibrium(&b);
        ctx2.leader = Some(CommPeer {
            accel: -9.0,
            speed: 0.0,
            ..ctx2.leader.unwrap()
        });
        for _ in 0..50 {
            assert_eq!(a.command(&ctx1), b.command(&ctx2));
        }
    }

    #[test]
    fn blind_decays_to_gentle_brake() {
        let mut c = PloegController::default();
        let mut ctx = test_context();
        ctx.radar = None;
        ctx.predecessor = None;
        let mut u = 0.0;
        for _ in 0..2000 {
            u = c.command(&ctx);
        }
        assert!(
            (u - (-2.0)).abs() < 0.05,
            "blind command should settle at -2, got {u}"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut c = PloegController::default();
        let mut ctx = ctx_at_equilibrium(&c);
        ctx.radar = Some(RadarReading {
            range: 0.0,
            range_rate: -5.0,
        });
        for _ in 0..100 {
            c.command(&ctx);
        }
        assert!(c.filtered_command().abs() > 0.0);
        c.reset();
        assert_eq!(c.filtered_command(), 0.0);
    }
}
