//! On-board sensor models: radar, GPS and LiDAR, each with noise, outage and
//! an adversary-controllable fault channel.
//!
//! §V-G of the paper catalogues GPS spoofing (overpowering the true signal
//! with a biased replica), sensor jamming (blinding cameras/radar) and CAN
//! -level spoofing. The models here expose exactly those handles:
//!
//! * every sensor has a [`SensorFault`] that an attack can set (bias ramp,
//!   frozen value, outage), and
//! * the VPD-ADA defense (platoon-defense crate) cross-checks the *same
//!   quantity from independent sensors*, which is only meaningful if the
//!   sensors are separate models with separate fault channels — hence three
//!   distinct types rather than one generic "position sensor".

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Adversarial or environmental fault applied to a sensor.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub enum SensorFault {
    /// Sensor is healthy.
    #[default]
    None,
    /// A constant additive bias (e.g. GPS spoofing at fixed offset).
    Bias {
        /// Additive offset in the sensor's unit.
        offset: f64,
    },
    /// A bias that grows linearly with time since `start` — the classic
    /// "slow-drag" GPS spoof of §V-G that walks the victim off its true
    /// position without a detectable jump.
    Ramp {
        /// Drift rate in unit/s.
        rate: f64,
        /// Time the ramp started, in seconds.
        start: f64,
    },
    /// Sensor output frozen at the last pre-fault value (stuck-at fault /
    /// malware-controlled replay of a stale reading).
    Frozen {
        /// The stuck value.
        value: f64,
    },
    /// No output at all (jammed / blinded).
    Outage,
}

impl SensorFault {
    /// Applies the fault to a true value at time `now`; `None` = no output.
    pub fn apply(&self, truth: f64, now: f64) -> Option<f64> {
        match *self {
            SensorFault::None => Some(truth),
            SensorFault::Bias { offset } => Some(truth + offset),
            SensorFault::Ramp { rate, start } => Some(truth + rate * (now - start).max(0.0)),
            SensorFault::Frozen { value } => Some(value),
            SensorFault::Outage => None,
        }
    }

    /// Whether the sensor is under any fault.
    pub fn is_active(&self) -> bool {
        !matches!(self, SensorFault::None)
    }
}

/// Forward-looking radar measuring range and range rate to the predecessor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Radar {
    /// 1-σ range noise in metres.
    pub range_noise: f64,
    /// 1-σ range-rate noise in m/s.
    pub rate_noise: f64,
    /// Maximum detection range in metres.
    pub max_range: f64,
    /// Current fault state (applied to the range output).
    pub fault: SensorFault,
}

impl Default for Radar {
    fn default() -> Self {
        Radar {
            range_noise: 0.1,
            rate_noise: 0.05,
            max_range: 120.0,
            fault: SensorFault::None,
        }
    }
}

impl Radar {
    /// Measures a true `(range, range_rate)` pair at time `now`.
    ///
    /// Returns `None` when the target is out of range or the radar is jammed.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        true_range: f64,
        true_rate: f64,
        now: f64,
        rng: &mut R,
    ) -> Option<(f64, f64)> {
        if true_range > self.max_range || true_range < 0.0 {
            return None;
        }
        let range = self.fault.apply(true_range, now)?;
        let range = range + gauss(rng) * self.range_noise;
        let rate = true_rate + gauss(rng) * self.rate_noise;
        Some((range.max(0.0), rate))
    }
}

/// GPS receiver measuring absolute longitudinal position and speed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Gps {
    /// 1-σ position noise in metres.
    pub position_noise: f64,
    /// 1-σ speed noise in m/s.
    pub speed_noise: f64,
    /// Current fault state (applied to position).
    pub fault: SensorFault,
}

impl Default for Gps {
    fn default() -> Self {
        Gps {
            position_noise: 1.5,
            speed_noise: 0.1,
            fault: SensorFault::None,
        }
    }
}

impl Gps {
    /// Measures true `(position, speed)` at time `now`.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        true_position: f64,
        true_speed: f64,
        now: f64,
        rng: &mut R,
    ) -> Option<(f64, f64)> {
        let pos = self.fault.apply(true_position, now)?;
        Some((
            pos + gauss(rng) * self.position_noise,
            true_speed + gauss(rng) * self.speed_noise,
        ))
    }
}

/// LiDAR measuring range to the predecessor — an independent second ranging
/// modality for sensor-fusion defenses (VPD-ADA gathers positional evidence
/// "from multiple sources such as LiDAR ... and GPS", §VI-A.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Lidar {
    /// 1-σ range noise in metres (LiDAR is more precise than radar).
    pub range_noise: f64,
    /// Maximum detection range in metres.
    pub max_range: f64,
    /// Current fault state.
    pub fault: SensorFault,
}

impl Default for Lidar {
    fn default() -> Self {
        Lidar {
            range_noise: 0.03,
            max_range: 80.0,
            fault: SensorFault::None,
        }
    }
}

impl Lidar {
    /// Measures a true range at time `now`.
    pub fn measure<R: Rng + ?Sized>(&self, true_range: f64, now: f64, rng: &mut R) -> Option<f64> {
        if true_range > self.max_range || true_range < 0.0 {
            return None;
        }
        let range = self.fault.apply(true_range, now)?;
        Some((range + gauss(rng) * self.range_noise).max(0.0))
    }
}

/// The full sensor suite carried by a platoon vehicle.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct SensorSuite {
    /// Forward radar.
    pub radar: Radar,
    /// GPS receiver.
    pub gps: Gps,
    /// Forward LiDAR.
    pub lidar: Lidar,
}

/// Standard-normal draw via Box-Muller.
fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn healthy_radar_is_unbiased() {
        let radar = Radar::default();
        let mut rng = rng();
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| radar.measure(20.0, 0.0, 0.0, &mut rng).unwrap().0)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 20.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn radar_out_of_range_returns_none() {
        let radar = Radar::default();
        assert!(radar.measure(500.0, 0.0, 0.0, &mut rng()).is_none());
        assert!(radar.measure(-1.0, 0.0, 0.0, &mut rng()).is_none());
    }

    #[test]
    fn bias_fault_shifts_mean() {
        let radar = Radar {
            fault: SensorFault::Bias { offset: 5.0 },
            ..Default::default()
        };
        let mut rng = rng();
        let mean: f64 = (0..2000)
            .map(|_| radar.measure(20.0, 0.0, 0.0, &mut rng).unwrap().0)
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 25.0).abs() < 0.05);
    }

    #[test]
    fn ramp_fault_grows_over_time() {
        let f = SensorFault::Ramp {
            rate: 0.5,
            start: 10.0,
        };
        assert_eq!(f.apply(100.0, 10.0), Some(100.0));
        assert_eq!(f.apply(100.0, 20.0), Some(105.0));
        // Before the start there is no drift.
        assert_eq!(f.apply(100.0, 5.0), Some(100.0));
    }

    #[test]
    fn frozen_fault_ignores_truth() {
        let f = SensorFault::Frozen { value: 42.0 };
        assert_eq!(f.apply(0.0, 0.0), Some(42.0));
        assert_eq!(f.apply(1000.0, 99.0), Some(42.0));
    }

    #[test]
    fn outage_fault_blinds_all_sensors() {
        let mut rng = rng();
        let radar = Radar {
            fault: SensorFault::Outage,
            ..Default::default()
        };
        let gps = Gps {
            fault: SensorFault::Outage,
            ..Default::default()
        };
        let lidar = Lidar {
            fault: SensorFault::Outage,
            ..Default::default()
        };
        assert!(radar.measure(20.0, 0.0, 0.0, &mut rng).is_none());
        assert!(gps.measure(100.0, 25.0, 0.0, &mut rng).is_none());
        assert!(lidar.measure(20.0, 0.0, &mut rng).is_none());
    }

    #[test]
    fn lidar_noise_lower_than_radar() {
        let suite = SensorSuite::default();
        assert!(suite.lidar.range_noise < suite.radar.range_noise);
    }

    #[test]
    fn gps_measures_speed_independent_of_position_fault() {
        let gps = Gps {
            fault: SensorFault::Bias { offset: 50.0 },
            ..Default::default()
        };
        let mut rng = rng();
        let (pos, speed) = gps.measure(100.0, 25.0, 0.0, &mut rng).unwrap();
        assert!(pos > 140.0, "bias applied to position: {pos}");
        assert!((speed - 25.0).abs() < 1.0, "speed unaffected: {speed}");
    }

    #[test]
    fn fault_activity_flag() {
        assert!(!SensorFault::None.is_active());
        assert!(SensorFault::Outage.is_active());
        assert!(SensorFault::Bias { offset: 0.0 }.is_active());
    }

    #[test]
    fn measurements_never_negative_range() {
        let radar = Radar {
            fault: SensorFault::Bias { offset: -100.0 },
            ..Default::default()
        };
        let mut rng = rng();
        for _ in 0..100 {
            let (r, _) = radar.measure(5.0, 0.0, 0.0, &mut rng).unwrap();
            assert!(r >= 0.0);
        }
    }
}
