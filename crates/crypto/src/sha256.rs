//! A from-scratch implementation of the SHA-256 hash function (FIPS 180-4).
//!
//! The platoon security experiments need a real cryptographic hash — message
//! authentication, certificate signatures and key derivation are all built on
//! it — but the repository is deliberately self-contained (see DESIGN.md), so
//! the compression function is implemented here rather than pulled from an
//! external crate. The implementation is the straightforward specification
//! version: correct and adequate for simulation workloads, not a
//! side-channel-hardened production primitive.
//!
//! # Examples
//!
//! ```
//! use platoon_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

use std::fmt;

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Number of bytes in a SHA-256 message block.
pub const BLOCK_LEN: usize = 64;

/// SHA-256 round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A 256-bit message digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as lowercase hexadecimal.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Interprets the leading 8 bytes of the digest as a big-endian `u64`.
    ///
    /// Used when a digest must be mapped into a scalar (e.g. the Schnorr
    /// challenge in [`crate::signature`]).
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Digest> for [u8; DIGEST_LEN] {
    fn from(d: Digest) -> Self {
        d.0
    }
}

/// Incremental SHA-256 hasher.
///
/// Feed data with [`Sha256::update`] and extract the digest with
/// [`Sha256::finalize`]. For one-shot hashing use [`Sha256::digest`].
///
/// # Examples
///
/// ```
/// use platoon_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    total_len: u64,
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .field("buffered", &self.buffered)
            .finish()
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes the concatenation of several byte slices without allocating.
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }

        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let block: &[u8; BLOCK_LEN] = block.try_into().expect("split_at gave 64 bytes");
            self.compress(block);
            input = rest;
        }

        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Applies padding and returns the final digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);

        // Append the 0x80 terminator, zero padding, then the 64-bit length.
        self.raw_update(&[0x80]);
        while self.buffered != BLOCK_LEN - 8 {
            self.raw_update(&[0]);
        }
        self.raw_update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0, "padding must end on a block boundary");

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Like `update` but does not advance `total_len`; used only for padding.
    fn raw_update(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    /// The SHA-256 compression function over a single 512-bit block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk of 4"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST / well-known test vectors.
    const VECTORS: &[(&str, &str)] = &[
        (
            "",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            "abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            "The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
        ),
    ];

    #[test]
    fn known_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(
                Sha256::digest(input.as_bytes()).to_hex(),
                *expected,
                "vector {input:?}"
            );
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expected = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn digest_parts_matches_concatenation() {
        let a = b"hello ";
        let b = b"platoon ";
        let c = b"world";
        let mut concat = Vec::new();
        concat.extend_from_slice(a);
        concat.extend_from_slice(b);
        concat.extend_from_slice(c);
        assert_eq!(Sha256::digest_parts(&[a, b, c]), Sha256::digest(&concat));
    }

    #[test]
    fn digest_to_u64_uses_leading_bytes() {
        let d = Digest([
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, //
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(d.to_u64(), 0x0102030405060708);
    }

    #[test]
    fn display_and_debug_are_hex() {
        let d = Sha256::digest(b"abc");
        assert!(format!("{d}").starts_with("ba7816bf"));
        assert!(format!("{d:?}").contains("ba7816bf"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Smoke-level collision check over many short inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..2000 {
            assert!(
                seen.insert(Sha256::digest(&i.to_le_bytes())),
                "collision at {i}"
            );
        }
    }
}
