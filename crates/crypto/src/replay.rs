//! Anti-replay protection: timestamp freshness windows and sequence-number
//! sliding windows.
//!
//! §V-A.1 of the paper describes the replay attack — re-injecting a recorded
//! "close the gap" command after the leader has ordered "back off", making
//! the platoon oscillate. Both standard countermeasures are implemented so
//! the benchmark harness can ablate them (experiment F1 in DESIGN.md):
//!
//! * [`TimestampWindow`] — accept a message only if its timestamp is within
//!   `max_age` of local time and newer than the last accepted one per sender.
//! * [`SequenceWindow`] — a sliding bitmap over per-sender sequence numbers
//!   (the IPsec-style anti-replay window), robust to reordering.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Outcome of an anti-replay check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayVerdict {
    /// Message is fresh; state was advanced.
    Fresh,
    /// Message is a replay or duplicate.
    Replayed,
    /// Message is too old to evaluate (outside the window).
    Stale,
}

impl ReplayVerdict {
    /// Whether the message should be accepted.
    pub fn is_fresh(self) -> bool {
        self == ReplayVerdict::Fresh
    }
}

impl fmt::Display for ReplayVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayVerdict::Fresh => f.write_str("fresh"),
            ReplayVerdict::Replayed => f.write_str("replayed"),
            ReplayVerdict::Stale => f.write_str("stale"),
        }
    }
}

/// Timestamp-based freshness filter, keyed by sender.
///
/// # Examples
///
/// ```
/// use platoon_crypto::replay::{TimestampWindow, ReplayVerdict};
///
/// let mut w = TimestampWindow::new(0.5);
/// assert_eq!(w.check(1u64, 10.0, 10.1), ReplayVerdict::Fresh);
/// // Replaying the same (or older) timestamp is rejected.
/// assert_eq!(w.check(1u64, 10.0, 10.2), ReplayVerdict::Replayed);
/// // A message far older than `max_age` is stale.
/// assert_eq!(w.check(1u64, 5.0, 10.3), ReplayVerdict::Stale);
/// ```
#[derive(Clone, Debug)]
pub struct TimestampWindow<S: Eq + Hash> {
    max_age: f64,
    last_accepted: HashMap<S, f64>,
}

impl<S: Eq + Hash> TimestampWindow<S> {
    /// Creates a filter accepting messages at most `max_age` seconds old.
    ///
    /// # Panics
    ///
    /// Panics if `max_age` is not positive.
    pub fn new(max_age: f64) -> Self {
        assert!(max_age > 0.0, "max_age must be positive");
        TimestampWindow {
            max_age,
            last_accepted: HashMap::new(),
        }
    }

    /// Checks a message carrying `timestamp` from `sender`, at local time `now`.
    pub fn check(&mut self, sender: S, timestamp: f64, now: f64) -> ReplayVerdict {
        if now - timestamp > self.max_age {
            return ReplayVerdict::Stale;
        }
        match self.last_accepted.get(&sender) {
            Some(&last) if timestamp <= last => ReplayVerdict::Replayed,
            _ => {
                self.last_accepted.insert(sender, timestamp);
                ReplayVerdict::Fresh
            }
        }
    }

    /// The configured maximum acceptable age in seconds.
    pub fn max_age(&self) -> f64 {
        self.max_age
    }

    /// Forgets all per-sender state (e.g. after a platoon reform).
    pub fn reset(&mut self) {
        self.last_accepted.clear();
    }
}

/// IPsec-style sliding sequence-number window, keyed by sender.
///
/// Accepts each sequence number at most once; tolerates reordering up to the
/// window width; rejects numbers older than the window.
///
/// # Examples
///
/// ```
/// use platoon_crypto::replay::{SequenceWindow, ReplayVerdict};
///
/// let mut w = SequenceWindow::new(64);
/// assert!(w.check("veh1", 5).is_fresh());
/// assert!(w.check("veh1", 3).is_fresh());      // reordered but inside window
/// assert_eq!(w.check("veh1", 5), ReplayVerdict::Replayed);
/// ```
#[derive(Clone, Debug)]
pub struct SequenceWindow<S: Eq + Hash> {
    width: u64,
    state: HashMap<S, SeqState>,
}

#[derive(Clone, Copy, Debug, Default)]
struct SeqState {
    /// Highest sequence number seen.
    max_seq: u64,
    /// Bit i set ⇔ (max_seq - i) has been seen. Bit 0 is max_seq itself.
    bitmap: u64,
    /// Whether any number has been seen yet.
    seen_any: bool,
}

impl<S: Eq + Hash> SequenceWindow<S> {
    /// Creates a window of `width` sequence numbers (max 64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u64) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        SequenceWindow {
            width,
            state: HashMap::new(),
        }
    }

    /// Checks sequence number `seq` from `sender`.
    pub fn check(&mut self, sender: S, seq: u64) -> ReplayVerdict {
        let st = self.state.entry(sender).or_default();
        if !st.seen_any {
            st.seen_any = true;
            st.max_seq = seq;
            st.bitmap = 1;
            return ReplayVerdict::Fresh;
        }
        if seq > st.max_seq {
            let shift = seq - st.max_seq;
            st.bitmap = if shift >= 64 { 0 } else { st.bitmap << shift };
            st.bitmap |= 1;
            st.max_seq = seq;
            ReplayVerdict::Fresh
        } else {
            let offset = st.max_seq - seq;
            if offset >= self.width {
                return ReplayVerdict::Stale;
            }
            let mask = 1u64 << offset;
            if st.bitmap & mask != 0 {
                ReplayVerdict::Replayed
            } else {
                st.bitmap |= mask;
                ReplayVerdict::Fresh
            }
        }
    }

    /// The window width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Forgets all per-sender state.
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_monotonic_accept() {
        let mut w: TimestampWindow<u32> = TimestampWindow::new(1.0);
        assert!(w.check(1, 1.0, 1.0).is_fresh());
        assert!(w.check(1, 1.1, 1.1).is_fresh());
        assert!(w.check(1, 1.2, 1.25).is_fresh());
    }

    #[test]
    fn timestamp_replay_rejected() {
        let mut w: TimestampWindow<u32> = TimestampWindow::new(5.0);
        assert!(w.check(1, 2.0, 2.0).is_fresh());
        assert_eq!(w.check(1, 2.0, 2.5), ReplayVerdict::Replayed);
        assert_eq!(w.check(1, 1.5, 2.5), ReplayVerdict::Replayed);
    }

    #[test]
    fn timestamp_per_sender_independent() {
        let mut w: TimestampWindow<u32> = TimestampWindow::new(5.0);
        assert!(w.check(1, 2.0, 2.0).is_fresh());
        assert!(w.check(2, 2.0, 2.0).is_fresh());
    }

    #[test]
    fn timestamp_stale_rejected() {
        let mut w: TimestampWindow<u32> = TimestampWindow::new(0.5);
        assert_eq!(w.check(1, 1.0, 2.0), ReplayVerdict::Stale);
    }

    #[test]
    fn timestamp_reset_forgets() {
        let mut w: TimestampWindow<u32> = TimestampWindow::new(5.0);
        assert!(w.check(1, 2.0, 2.0).is_fresh());
        w.reset();
        assert!(w.check(1, 2.0, 2.0).is_fresh());
    }

    #[test]
    #[should_panic(expected = "max_age")]
    fn timestamp_zero_age_panics() {
        let _w: TimestampWindow<u32> = TimestampWindow::new(0.0);
    }

    #[test]
    fn sequence_in_order() {
        let mut w: SequenceWindow<u32> = SequenceWindow::new(32);
        for seq in 0..100 {
            assert!(w.check(1, seq).is_fresh(), "seq {seq}");
        }
    }

    #[test]
    fn sequence_duplicate_rejected() {
        let mut w: SequenceWindow<u32> = SequenceWindow::new(32);
        assert!(w.check(1, 10).is_fresh());
        assert_eq!(w.check(1, 10), ReplayVerdict::Replayed);
    }

    #[test]
    fn sequence_reorder_within_window() {
        let mut w: SequenceWindow<u32> = SequenceWindow::new(8);
        assert!(w.check(1, 10).is_fresh());
        assert!(w.check(1, 7).is_fresh());
        assert!(w.check(1, 9).is_fresh());
        assert_eq!(w.check(1, 7), ReplayVerdict::Replayed);
    }

    #[test]
    fn sequence_too_old_is_stale() {
        let mut w: SequenceWindow<u32> = SequenceWindow::new(8);
        assert!(w.check(1, 100).is_fresh());
        assert_eq!(w.check(1, 92), ReplayVerdict::Stale);
        assert!(w.check(1, 93).is_fresh());
    }

    #[test]
    fn sequence_large_jump_clears_bitmap() {
        let mut w: SequenceWindow<u32> = SequenceWindow::new(64);
        assert!(w.check(1, 1).is_fresh());
        assert!(w.check(1, 1000).is_fresh());
        assert_eq!(w.check(1, 1000), ReplayVerdict::Replayed);
        // 999 was never seen and is inside the window.
        assert!(w.check(1, 999).is_fresh());
    }

    #[test]
    fn sequence_per_sender_independent() {
        let mut w: SequenceWindow<&str> = SequenceWindow::new(16);
        assert!(w.check("a", 5).is_fresh());
        assert!(w.check("b", 5).is_fresh());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn sequence_zero_width_panics() {
        let _w: SequenceWindow<u32> = SequenceWindow::new(0);
    }
}
