//! Certificates, a certificate authority, and revocation.
//!
//! Models the IEEE 1609.2-style credential hierarchy the paper assumes for
//! the "Public Keys" and "Roadside Units" mechanisms of Table III: a trusted
//! authority (TA) issues certificates binding a vehicle identity to a public
//! key; RSUs and platoon leaders verify certificates before admitting a
//! vehicle; the TA revokes certificates of misbehaving or compromised
//! vehicles (the impersonation and Sybil defenses both hinge on this).

use crate::keys::{KeyId, KeyPair, PublicKey};
use crate::signature::{Signature, Signer};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Identity of a principal in the vehicular network (vehicle, RSU or TA).
///
/// Plain `u64` newtype: the simulation assigns these densely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrincipalId(pub u64);

impl fmt::Debug for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Principal({})", self.0)
    }
}

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors raised when validating a certificate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The issuer signature does not verify under the CA key.
    BadSignature,
    /// The certificate is outside its validity window.
    Expired,
    /// The certificate is on the revocation list.
    Revoked,
    /// The certificate was issued by an unknown authority.
    UnknownIssuer,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadSignature => f.write_str("certificate signature invalid"),
            CertError::Expired => f.write_str("certificate outside validity window"),
            CertError::Revoked => f.write_str("certificate revoked"),
            CertError::UnknownIssuer => f.write_str("certificate issuer unknown"),
        }
    }
}

impl std::error::Error for CertError {}

/// A certificate binding a principal to a public key for a validity window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// The identity being certified.
    pub subject: PrincipalId,
    /// The certified public key.
    pub public_key: PublicKey,
    /// Start of validity (simulation seconds).
    pub not_before: f64,
    /// End of validity (simulation seconds).
    pub not_after: f64,
    /// Identity of the issuing authority.
    pub issuer: PrincipalId,
    /// Issuer's signature over the fields above.
    pub signature: Signature,
}

impl Certificate {
    /// Serial used on revocation lists: hash-derived id of the certified key.
    pub fn serial(&self) -> KeyId {
        self.public_key.id()
    }

    /// The canonical byte string that the issuer signs.
    fn to_be_signed(
        subject: PrincipalId,
        public_key: &PublicKey,
        not_before: f64,
        not_after: f64,
        issuer: PrincipalId,
    ) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40);
        buf.extend_from_slice(&subject.0.to_be_bytes());
        buf.extend_from_slice(&public_key.element().to_be_bytes());
        buf.extend_from_slice(&not_before.to_be_bytes());
        buf.extend_from_slice(&not_after.to_be_bytes());
        buf.extend_from_slice(&issuer.0.to_be_bytes());
        buf
    }
}

/// The trusted authority: issues and revokes certificates.
///
/// # Examples
///
/// ```
/// use platoon_crypto::cert::{CertificateAuthority, PrincipalId};
/// use platoon_crypto::keys::KeyPair;
///
/// let mut ca = CertificateAuthority::new(PrincipalId(0), KeyPair::from_seed(0));
/// let vehicle_kp = KeyPair::from_seed(1);
/// let cert = ca.issue(PrincipalId(1), vehicle_kp.public(), 0.0, 3600.0);
/// assert!(ca.validate(&cert, 10.0).is_ok());
/// ca.revoke(cert.serial());
/// assert!(ca.validate(&cert, 10.0).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct CertificateAuthority {
    id: PrincipalId,
    signer: Signer,
    revoked: HashSet<KeyId>,
    issued: u64,
}

impl CertificateAuthority {
    /// Creates an authority with the given identity and signing key pair.
    pub fn new(id: PrincipalId, keypair: KeyPair) -> Self {
        CertificateAuthority {
            id,
            signer: Signer::new(keypair),
            revoked: HashSet::new(),
            issued: 0,
        }
    }

    /// The authority's identity.
    pub fn id(&self) -> PrincipalId {
        self.id
    }

    /// The authority's verification key, distributed out-of-band to all
    /// vehicles and RSUs.
    pub fn public(&self) -> PublicKey {
        self.signer.public()
    }

    /// Number of certificates issued so far.
    pub fn issued_count(&self) -> u64 {
        self.issued
    }

    /// Issues a certificate over `(subject, key)` valid on `[not_before, not_after]`.
    pub fn issue(
        &mut self,
        subject: PrincipalId,
        public_key: PublicKey,
        not_before: f64,
        not_after: f64,
    ) -> Certificate {
        self.issued += 1;
        let tbs = Certificate::to_be_signed(subject, &public_key, not_before, not_after, self.id);
        Certificate {
            subject,
            public_key,
            not_before,
            not_after,
            issuer: self.id,
            signature: self.signer.sign_deterministic(&tbs),
        }
    }

    /// Adds the certificate's key to the revocation list.
    pub fn revoke(&mut self, serial: KeyId) {
        self.revoked.insert(serial);
    }

    /// Whether a given serial is revoked.
    pub fn is_revoked(&self, serial: KeyId) -> bool {
        self.revoked.contains(&serial)
    }

    /// A snapshot of the revocation list (e.g. for distribution via RSUs).
    pub fn revocation_list(&self) -> RevocationList {
        RevocationList {
            revoked: self.revoked.clone(),
        }
    }

    /// Full validation as performed by the authority itself.
    ///
    /// # Errors
    ///
    /// Returns a [`CertError`] describing the first failed check.
    pub fn validate(&self, cert: &Certificate, now: f64) -> Result<(), CertError> {
        if self.is_revoked(cert.serial()) {
            return Err(CertError::Revoked);
        }
        verify_certificate(cert, &self.public(), self.id, now)
    }
}

/// Stateless certificate verification against a known authority key.
///
/// This is what vehicles and RSUs run: they know the TA's public key and the
/// latest revocation list they fetched, and check certificates locally.
///
/// # Errors
///
/// Returns the first failing check: issuer mismatch, validity window, then
/// signature.
pub fn verify_certificate(
    cert: &Certificate,
    authority_key: &PublicKey,
    authority_id: PrincipalId,
    now: f64,
) -> Result<(), CertError> {
    if cert.issuer != authority_id {
        return Err(CertError::UnknownIssuer);
    }
    if now < cert.not_before || now > cert.not_after {
        return Err(CertError::Expired);
    }
    let tbs = Certificate::to_be_signed(
        cert.subject,
        &cert.public_key,
        cert.not_before,
        cert.not_after,
        cert.issuer,
    );
    if cert.signature.verify(authority_key, &tbs) {
        Ok(())
    } else {
        Err(CertError::BadSignature)
    }
}

/// A distributable certificate revocation list.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RevocationList {
    revoked: HashSet<KeyId>,
}

impl RevocationList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `serial` appears on the list.
    pub fn contains(&self, serial: KeyId) -> bool {
        self.revoked.contains(&serial)
    }

    /// Number of revoked serials.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }

    /// Merges another list into this one (RSUs gossip CRL deltas).
    pub fn merge(&mut self, other: &RevocationList) {
        self.revoked.extend(other.revoked.iter().copied());
    }

    /// Adds a single serial.
    pub fn insert(&mut self, serial: KeyId) {
        self.revoked.insert(serial);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new(PrincipalId(1000), KeyPair::from_seed(1000))
    }

    #[test]
    fn issued_cert_validates() {
        let mut ca = ca();
        let kp = KeyPair::from_seed(1);
        let cert = ca.issue(PrincipalId(1), kp.public(), 0.0, 100.0);
        assert_eq!(ca.validate(&cert, 50.0), Ok(()));
        assert_eq!(ca.issued_count(), 1);
    }

    #[test]
    fn expired_cert_rejected() {
        let mut ca = ca();
        let cert = ca.issue(PrincipalId(1), KeyPair::from_seed(1).public(), 10.0, 20.0);
        assert_eq!(ca.validate(&cert, 5.0), Err(CertError::Expired));
        assert_eq!(ca.validate(&cert, 25.0), Err(CertError::Expired));
        assert_eq!(ca.validate(&cert, 15.0), Ok(()));
    }

    #[test]
    fn revoked_cert_rejected() {
        let mut ca = ca();
        let cert = ca.issue(PrincipalId(2), KeyPair::from_seed(2).public(), 0.0, 100.0);
        ca.revoke(cert.serial());
        assert_eq!(ca.validate(&cert, 1.0), Err(CertError::Revoked));
    }

    #[test]
    fn forged_cert_rejected_by_stateless_verify() {
        let mut ca = ca();
        let good = ca.issue(PrincipalId(3), KeyPair::from_seed(3).public(), 0.0, 100.0);
        // Attacker swaps in its own key, keeping the signature.
        let forged = Certificate {
            public_key: KeyPair::from_seed(99).public(),
            ..good
        };
        assert_eq!(
            verify_certificate(&forged, &ca.public(), ca.id(), 1.0),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn cert_from_wrong_issuer_rejected() {
        let mut rogue = CertificateAuthority::new(PrincipalId(666), KeyPair::from_seed(666));
        let cert = rogue.issue(PrincipalId(4), KeyPair::from_seed(4).public(), 0.0, 100.0);
        let real = ca();
        // Verifier expects the real authority id.
        assert_eq!(
            verify_certificate(&cert, &real.public(), real.id(), 1.0),
            Err(CertError::UnknownIssuer)
        );
        // Even claiming the right issuer id fails the signature.
        let cert2 = Certificate {
            issuer: real.id(),
            ..cert
        };
        assert_eq!(
            verify_certificate(&cert2, &real.public(), real.id(), 1.0),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn revocation_list_merge() {
        let mut a = RevocationList::new();
        let mut b = RevocationList::new();
        a.insert(KeyId(1));
        b.insert(KeyId(2));
        a.merge(&b);
        assert!(a.contains(KeyId(1)) && a.contains(KeyId(2)));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn subject_tamper_detected() {
        let mut ca = ca();
        let good = ca.issue(PrincipalId(5), KeyPair::from_seed(5).public(), 0.0, 100.0);
        let forged = Certificate {
            subject: PrincipalId(6),
            ..good
        };
        assert_eq!(
            verify_certificate(&forged, &ca.public(), ca.id(), 1.0),
            Err(CertError::BadSignature)
        );
    }
}
