//! Pseudonym management for location privacy.
//!
//! §III of the paper flags location privacy: beacons carry identity, so a
//! passive listener can track vehicles, goods and drivers. The standard
//! countermeasure surveyed there is pseudonymous authentication \[25\] with
//! periodic or context-triggered pseudonym changes \[27\]. This module models
//! a pre-loaded pseudonym pool and two change policies so the eavesdropping
//! experiment (F7) can quantify trackability with and without changes.

use crate::cert::{Certificate, CertificateAuthority, PrincipalId};
use crate::keys::KeyPair;
use serde::{Deserialize, Serialize};

/// Policy controlling when a vehicle rotates to its next pseudonym.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ChangePolicy {
    /// Never change (baseline: fully trackable).
    Never,
    /// Change every `period` seconds.
    Periodic {
        /// Seconds between changes.
        period: f64,
    },
    /// Change when at least `min_neighbors` other vehicles are in radio range
    /// (cooperative change, following Pan & Li \[27\]): changing alone links
    /// old and new pseudonyms trivially.
    NeighborTriggered {
        /// Minimum neighbour count required to change.
        min_neighbors: usize,
        /// Minimum seconds between changes regardless of neighbours.
        min_interval: f64,
    },
}

/// A certified pseudonym: a short-lived key pair plus its certificate.
#[derive(Clone, Copy, Debug)]
pub struct Pseudonym {
    /// The pseudonymous identity that appears on the wire.
    pub id: PrincipalId,
    /// Key pair for signing under this pseudonym.
    pub keypair: KeyPair,
    /// Certificate issued by the TA binding `id` to the key.
    pub certificate: Certificate,
}

/// A vehicle's pre-loaded pool of pseudonyms plus its change policy.
///
/// # Examples
///
/// ```
/// use platoon_crypto::cert::{CertificateAuthority, PrincipalId};
/// use platoon_crypto::keys::KeyPair;
/// use platoon_crypto::pseudonym::{ChangePolicy, PseudonymPool};
///
/// let mut ca = CertificateAuthority::new(PrincipalId(0), KeyPair::from_seed(0));
/// let mut pool = PseudonymPool::provision(
///     &mut ca, 7, 4, 0.0, 3600.0,
///     ChangePolicy::Periodic { period: 60.0 },
/// );
/// let first = pool.current().id;
/// pool.maybe_change(61.0, 0);
/// assert_ne!(pool.current().id, first);
/// ```
#[derive(Clone, Debug)]
pub struct PseudonymPool {
    pseudonyms: Vec<Pseudonym>,
    active: usize,
    policy: ChangePolicy,
    last_change: f64,
    changes: u64,
}

impl PseudonymPool {
    /// Provisions `count` certified pseudonyms for real vehicle `vehicle_seed`
    /// from the authority. Pseudonymous ids are derived so that they do not
    /// reveal the real identity.
    pub fn provision(
        ca: &mut CertificateAuthority,
        vehicle_seed: u64,
        count: usize,
        not_before: f64,
        not_after: f64,
        policy: ChangePolicy,
    ) -> Self {
        assert!(count > 0, "pool must contain at least one pseudonym");
        let pseudonyms = (0..count)
            .map(|i| {
                let keypair = KeyPair::from_seed(vehicle_seed.wrapping_mul(10_007) + i as u64);
                // Wire identity is derived from the key, not the vehicle seed.
                let id = PrincipalId(keypair.id().0);
                let certificate = ca.issue(id, keypair.public(), not_before, not_after);
                Pseudonym {
                    id,
                    keypair,
                    certificate,
                }
            })
            .collect();
        PseudonymPool {
            pseudonyms,
            active: 0,
            policy,
            last_change: not_before,
            changes: 0,
        }
    }

    /// The currently active pseudonym.
    pub fn current(&self) -> &Pseudonym {
        &self.pseudonyms[self.active]
    }

    /// Number of pseudonyms in the pool.
    pub fn len(&self) -> usize {
        self.pseudonyms.len()
    }

    /// Whether the pool is empty (never true for a provisioned pool).
    pub fn is_empty(&self) -> bool {
        self.pseudonyms.is_empty()
    }

    /// Total changes performed.
    pub fn change_count(&self) -> u64 {
        self.changes
    }

    /// The configured change policy.
    pub fn policy(&self) -> ChangePolicy {
        self.policy
    }

    /// Evaluates the change policy at time `now` with `neighbors` vehicles in
    /// range; rotates and returns `true` if a change occurred.
    pub fn maybe_change(&mut self, now: f64, neighbors: usize) -> bool {
        let due = match self.policy {
            ChangePolicy::Never => false,
            ChangePolicy::Periodic { period } => now - self.last_change >= period,
            ChangePolicy::NeighborTriggered {
                min_neighbors,
                min_interval,
            } => neighbors >= min_neighbors && now - self.last_change >= min_interval,
        };
        if due {
            self.active = (self.active + 1) % self.pseudonyms.len();
            self.last_change = now;
            self.changes += 1;
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(policy: ChangePolicy) -> PseudonymPool {
        let mut ca = CertificateAuthority::new(PrincipalId(0), KeyPair::from_seed(0));
        PseudonymPool::provision(&mut ca, 42, 3, 0.0, 1_000.0, policy)
    }

    #[test]
    fn provision_creates_distinct_certified_pseudonyms() {
        let mut ca = CertificateAuthority::new(PrincipalId(0), KeyPair::from_seed(0));
        let p = PseudonymPool::provision(&mut ca, 7, 4, 0.0, 100.0, ChangePolicy::Never);
        assert_eq!(p.len(), 4);
        let ids: std::collections::HashSet<_> = p.pseudonyms.iter().map(|ps| ps.id).collect();
        assert_eq!(ids.len(), 4, "ids must be unique");
        for ps in &p.pseudonyms {
            assert!(ca.validate(&ps.certificate, 1.0).is_ok());
        }
    }

    #[test]
    fn never_policy_never_changes() {
        let mut p = pool(ChangePolicy::Never);
        let id = p.current().id;
        for t in 0..100 {
            assert!(!p.maybe_change(t as f64, 10));
        }
        assert_eq!(p.current().id, id);
        assert_eq!(p.change_count(), 0);
    }

    #[test]
    fn periodic_policy_changes_on_schedule() {
        let mut p = pool(ChangePolicy::Periodic { period: 10.0 });
        assert!(!p.maybe_change(5.0, 0));
        assert!(p.maybe_change(10.0, 0));
        assert!(!p.maybe_change(15.0, 0));
        assert!(p.maybe_change(20.0, 0));
        assert_eq!(p.change_count(), 2);
    }

    #[test]
    fn neighbor_policy_requires_crowd() {
        let mut p = pool(ChangePolicy::NeighborTriggered {
            min_neighbors: 3,
            min_interval: 5.0,
        });
        assert!(!p.maybe_change(10.0, 2), "not enough neighbours");
        assert!(p.maybe_change(10.0, 3));
        assert!(!p.maybe_change(12.0, 5), "interval not elapsed");
        assert!(p.maybe_change(15.0, 5));
    }

    #[test]
    fn pool_wraps_around() {
        let mut p = pool(ChangePolicy::Periodic { period: 1.0 });
        let first = p.current().id;
        for t in 1..=3 {
            p.maybe_change(t as f64, 0);
        }
        // Pool of 3: after 3 changes we are back at the first pseudonym.
        assert_eq!(p.current().id, first);
    }

    #[test]
    fn pseudonym_id_does_not_embed_vehicle_seed() {
        let p = pool(ChangePolicy::Never);
        // The wire id is hash-derived; trivially it must not equal the seed.
        assert_ne!(p.current().id.0, 42);
    }
}
