//! HMAC-SHA256 message authentication (RFC 2104), built on [`crate::sha256`].
//!
//! HMAC is the workhorse of the platoon security mechanisms: symmetric-key
//! beacon authentication (the "secret keys" mechanism of Table III in the
//! paper), key derivation for the fading-channel key agreement, and the
//! keyed challenge/response used by RSU-issued session keys.
//!
//! # Examples
//!
//! ```
//! use platoon_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"shared platoon key", b"CAM beacon payload");
//! let tag2 = hmac_sha256(b"shared platoon key", b"CAM beacon payload");
//! assert_eq!(tag, tag2);
//! ```

use crate::sha256::{Digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte SHA-256 block are first hashed, per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time comparison of two MAC tags.
///
/// Simulation-grade: it avoids the obvious early-exit timing channel, which
/// is enough for the experiments in this repository to be honest about what
/// an attacker can and cannot observe.
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &Digest) -> bool {
    let expected = hmac_sha256(key, message);
    let mut diff = 0u8;
    for (a, b) in expected.0.iter().zip(tag.0.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// Incremental HMAC-SHA256 computation.
///
/// # Examples
///
/// ```
/// use platoon_crypto::hmac::{HmacSha256, hmac_sha256};
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"part one ");
/// mac.update(b"part two");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"part one part two"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC context keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut norm_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            norm_key[..DIGEST_LEN].copy_from_slice(Sha256::digest(key).as_bytes());
        } else {
            norm_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = norm_key[i] ^ 0x36;
            opad_key[i] = norm_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, message: &[u8]) {
        self.inner.update(message);
    }

    /// Produces the authentication tag, consuming the context.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// HKDF-style key derivation: expands input keying material plus a context
/// label into `n` output keys of 32 bytes each.
///
/// Used to derive independent beacon/manoeuvre/session keys from a single
/// agreed secret (e.g. the output of the fading-channel key agreement).
pub fn derive_keys(ikm: &[u8], label: &str, n: usize) -> Vec<[u8; DIGEST_LEN]> {
    let prk = hmac_sha256(b"platoon-kdf-salt", ikm);
    let mut out = Vec::with_capacity(n);
    let mut prev: Vec<u8> = Vec::new();
    for i in 0..n {
        let mut mac = HmacSha256::new(prk.as_bytes());
        mac.update(&prev);
        mac.update(label.as_bytes());
        mac.update(&[(i + 1) as u8]);
        let block = mac.finalize();
        out.push(block.0);
        prev = block.0.to_vec();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.to_hex()
    }

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"abc");
        mac.update(b"def");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"abcdef"));
    }

    #[test]
    fn verify_accepts_valid_tag() {
        let tag = hmac_sha256(b"key", b"msg");
        assert!(verify_hmac_sha256(b"key", b"msg", &tag));
    }

    #[test]
    fn verify_rejects_wrong_key_message_or_tag() {
        let tag = hmac_sha256(b"key", b"msg");
        assert!(!verify_hmac_sha256(b"other", b"msg", &tag));
        assert!(!verify_hmac_sha256(b"key", b"msg2", &tag));
        let mut bad = tag;
        bad.0[0] ^= 1;
        assert!(!verify_hmac_sha256(b"key", b"msg", &bad));
    }

    #[test]
    fn derive_keys_are_distinct_and_deterministic() {
        let a = derive_keys(b"secret", "beacon", 4);
        let b = derive_keys(b"secret", "beacon", 4);
        assert_eq!(a, b);
        for i in 0..a.len() {
            for j in 0..i {
                assert_ne!(a[i], a[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn derive_keys_depend_on_label_and_ikm() {
        assert_ne!(
            derive_keys(b"s", "beacon", 1),
            derive_keys(b"s", "session", 1)
        );
        assert_ne!(
            derive_keys(b"s1", "beacon", 1),
            derive_keys(b"s2", "beacon", 1)
        );
    }
}
