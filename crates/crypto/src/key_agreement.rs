//! Fading-channel secret key agreement (Li et al. \[5\], \[9\] in the paper).
//!
//! The "secret keys" row of Table III cites a platoon-specific key agreement
//! scheme that exploits *reciprocity* of the wireless channel: the multipath
//! fading between vehicles A and B is (nearly) identical in both directions,
//! while an eavesdropper E more than half a wavelength away observes an
//! (almost) independent channel. Both ends quantise a sequence of channel
//! gain measurements into bits and reconcile; E's measurements decorrelate
//! and its guessed key diverges.
//!
//! This module models the channel-probing physics statistically:
//!
//! * A and B draw gain samples from a shared latent fading process plus
//!   independent measurement noise (controlled by `reciprocity`).
//! * E draws from a process whose correlation with the legitimate one decays
//!   with normalised distance (`eavesdropper_correlation`).
//! * Samples are quantised around the running median with a guard band;
//!   samples inside the band are *censored* (index publicly discarded), which
//!   is exactly the published scheme's mechanism for lowering bit mismatch.
//!
//! Experiment F7 sweeps eavesdropper distance and reports legitimate vs
//! eavesdropper bit-mismatch rates, reproducing the qualitative claim of \[5\].

use crate::hmac::derive_keys;
use crate::keys::SymmetricKey;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the channel-probing key agreement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FadingKeyAgreementConfig {
    /// Number of channel probes (before censoring).
    pub probes: usize,
    /// Correlation of A's and B's measurements of the same probe, in `[0, 1]`.
    /// 1.0 = perfectly reciprocal channel; values ≥ 0.95 are realistic for
    /// probing within the channel coherence time.
    pub reciprocity: f64,
    /// Correlation of the eavesdropper's measurement with the legitimate
    /// channel, in `[0, 1]`. Decays quickly beyond half a wavelength
    /// (~6 cm at 5.9 GHz); use [`eavesdropper_correlation`] to derive it
    /// from distance.
    pub eavesdropper_correlation: f64,
    /// Guard band half-width in standard deviations; probes whose gain falls
    /// within ±band of the median are censored.
    pub guard_band: f64,
}

impl Default for FadingKeyAgreementConfig {
    fn default() -> Self {
        FadingKeyAgreementConfig {
            probes: 512,
            reciprocity: 0.98,
            eavesdropper_correlation: 0.05,
            guard_band: 0.25,
        }
    }
}

/// Maps eavesdropper distance (in carrier wavelengths) from the legitimate
/// receiver to a channel correlation, using the Jakes-model rule of thumb
/// that correlation ≈ 0 beyond λ/2.
///
/// # Examples
///
/// ```
/// use platoon_crypto::key_agreement::eavesdropper_correlation;
///
/// assert!(eavesdropper_correlation(0.0) > 0.99);
/// assert!(eavesdropper_correlation(0.5) < 0.1);
/// assert!(eavesdropper_correlation(10.0) < 0.01);
/// ```
pub fn eavesdropper_correlation(distance_wavelengths: f64) -> f64 {
    // Squared-exponential decay calibrated so that λ/2 → ~0.08.
    (-(distance_wavelengths / 0.2).powi(2) / 2.0).exp()
}

/// Result of one key agreement run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AgreementOutcome {
    /// Bits extracted by vehicle A (after censoring).
    pub bits_a: Vec<bool>,
    /// Bits extracted by vehicle B.
    pub bits_b: Vec<bool>,
    /// Bits guessed by the eavesdropper.
    pub bits_eve: Vec<bool>,
    /// Fraction of probes censored by the guard band.
    pub censored_fraction: f64,
}

impl AgreementOutcome {
    /// Bit-mismatch rate between the legitimate parties.
    pub fn legitimate_mismatch(&self) -> f64 {
        mismatch(&self.bits_a, &self.bits_b)
    }

    /// Bit-mismatch rate between A and the eavesdropper (0.5 = no knowledge).
    pub fn eavesdropper_mismatch(&self) -> f64 {
        mismatch(&self.bits_a, &self.bits_eve)
    }

    /// Runs parity-based reconciliation: blocks of `block` bits whose parity
    /// differs between A and B are discarded on both sides (parities are
    /// exchanged publicly, as in the published scheme).
    ///
    /// Cascade-style, the pass is repeated with the block boundary shifted
    /// by half a block each round until a full pass finds no mismatching
    /// parity. A single pass misses blocks holding an *even* number of bit
    /// errors; the shifted partition splits such pairs across two blocks,
    /// so surviving disagreement after convergence needs ever-larger error
    /// constellations and is vanishingly rare at realistic reciprocity.
    ///
    /// Returns `(key_a, key_b)` as bit vectors.
    pub fn reconcile(&self, block: usize) -> (Vec<bool>, Vec<bool>) {
        assert!(block > 0, "block must be positive");
        let mut ka = self.bits_a.clone();
        let mut kb = self.bits_b.clone();
        let offsets = [0, block / 2];
        let mut round = 0usize;
        let mut consecutive_clean = 0usize;
        loop {
            let offset = offsets[round % offsets.len()] % block.max(1);
            let mut next_a = Vec::with_capacity(ka.len());
            let mut next_b = Vec::with_capacity(kb.len());
            let mut dropped = false;
            let mut start = 0usize;
            while start < ka.len() {
                let end = if start == 0 && offset > 0 {
                    offset.min(ka.len())
                } else {
                    (start + block).min(ka.len())
                };
                let (ca, cb) = (&ka[start..end], &kb[start..end]);
                let pa = ca.iter().filter(|&&b| b).count() % 2;
                let pb = cb.iter().filter(|&&b| b).count() % 2;
                if pa == pb {
                    next_a.extend_from_slice(ca);
                    next_b.extend_from_slice(cb);
                } else {
                    dropped = true;
                }
                start = end;
            }
            ka = next_a;
            kb = next_b;
            round += 1;
            consecutive_clean = if dropped { 0 } else { consecutive_clean + 1 };
            // Converged: one clean pass at every offset in a row. Rounds are
            // bounded because every non-clean round drops at least a block.
            if consecutive_clean >= offsets.len() || ka.is_empty() {
                break;
            }
        }
        (ka, kb)
    }

    /// Derives a symmetric key from an agreed bit vector (privacy
    /// amplification via the KDF).
    pub fn to_symmetric_key(bits: &[bool]) -> SymmetricKey {
        let mut bytes = vec![0u8; bits.len().div_ceil(8)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        SymmetricKey::from_bytes(derive_keys(&bytes, "fading-key", 1)[0])
    }
}

fn mismatch(a: &[bool], b: &[bool]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let n = a.len().min(b.len());
    let diff = a[..n].iter().zip(&b[..n]).filter(|(x, y)| x != y).count();
    diff as f64 / n as f64
}

/// Runs the probing + quantisation phase of the key agreement.
pub fn run_agreement<R: Rng + ?Sized>(
    config: &FadingKeyAgreementConfig,
    rng: &mut R,
) -> AgreementOutcome {
    assert!(config.probes > 0, "need at least one probe");
    assert!(
        (0.0..=1.0).contains(&config.reciprocity),
        "reciprocity must be in [0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.eavesdropper_correlation),
        "eavesdropper_correlation must be in [0,1]"
    );

    // Correlated Gaussian draws: obs = ρ·latent + sqrt(1-ρ²)·noise.
    let gauss = |rng: &mut R| -> f64 {
        // Box-Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };

    let mut latent = Vec::with_capacity(config.probes);
    let mut obs_a = Vec::with_capacity(config.probes);
    let mut obs_b = Vec::with_capacity(config.probes);
    let mut obs_e = Vec::with_capacity(config.probes);
    let rho = config.reciprocity;
    let rho_e = config.eavesdropper_correlation;
    for _ in 0..config.probes {
        let h = gauss(rng);
        latent.push(h);
        obs_a.push(rho * h + (1.0 - rho * rho).sqrt() * gauss(rng));
        obs_b.push(rho * h + (1.0 - rho * rho).sqrt() * gauss(rng));
        obs_e.push(rho_e * h + (1.0 - rho_e * rho_e).sqrt() * gauss(rng));
    }

    // Censoring decision is made on A's samples and shared publicly (index
    // list), as in the published protocol; B and E use the same index list.
    let mean_a = obs_a.iter().sum::<f64>() / obs_a.len() as f64;
    let band = config.guard_band;
    let mut bits_a = Vec::new();
    let mut bits_b = Vec::new();
    let mut bits_e = Vec::new();
    let mut censored = 0usize;
    for i in 0..config.probes {
        if (obs_a[i] - mean_a).abs() < band {
            censored += 1;
            continue;
        }
        bits_a.push(obs_a[i] > mean_a);
        bits_b.push(obs_b[i] > mean_a);
        bits_e.push(obs_e[i] > mean_a);
    }

    AgreementOutcome {
        bits_a,
        bits_b,
        bits_eve: bits_e,
        censored_fraction: censored as f64 / config.probes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(config: FadingKeyAgreementConfig, seed: u64) -> AgreementOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        run_agreement(&config, &mut rng)
    }

    #[test]
    fn legitimate_parties_mostly_agree() {
        let out = run(FadingKeyAgreementConfig::default(), 1);
        assert!(
            out.legitimate_mismatch() < 0.10,
            "legit mismatch too high: {}",
            out.legitimate_mismatch()
        );
    }

    #[test]
    fn eavesdropper_learns_almost_nothing() {
        let out = run(FadingKeyAgreementConfig::default(), 2);
        let eve = out.eavesdropper_mismatch();
        assert!(
            (0.35..=0.65).contains(&eve),
            "eve mismatch should be near 0.5, got {eve}"
        );
    }

    #[test]
    fn close_eavesdropper_gains_advantage() {
        let far = run(FadingKeyAgreementConfig::default(), 3).eavesdropper_mismatch();
        let close_cfg = FadingKeyAgreementConfig {
            eavesdropper_correlation: 0.95,
            ..Default::default()
        };
        let close = run(close_cfg, 3).eavesdropper_mismatch();
        assert!(
            close < far,
            "closer eavesdropper should mismatch less: close={close}, far={far}"
        );
        assert!(close < 0.25);
    }

    #[test]
    fn guard_band_reduces_legitimate_mismatch() {
        let no_band = FadingKeyAgreementConfig {
            guard_band: 0.0,
            reciprocity: 0.9,
            ..Default::default()
        };
        let wide_band = FadingKeyAgreementConfig {
            guard_band: 0.8,
            reciprocity: 0.9,
            ..Default::default()
        };
        let a = run(no_band, 4).legitimate_mismatch();
        let b = run(wide_band, 4).legitimate_mismatch();
        assert!(b < a, "guard band must lower mismatch: {b} !< {a}");
    }

    #[test]
    fn reconciliation_improves_agreement() {
        let cfg = FadingKeyAgreementConfig {
            reciprocity: 0.93,
            ..Default::default()
        };
        let out = run(cfg, 5);
        let raw = out.legitimate_mismatch();
        let (ka, kb) = out.reconcile(4);
        let rec = mismatch(&ka, &kb);
        assert!(rec <= raw, "reconciled {rec} !<= raw {raw}");
        assert!(!ka.is_empty());
    }

    #[test]
    fn symmetric_key_derivation_is_deterministic_on_bits() {
        let bits = vec![true, false, true, true, false, false, true, false, true];
        let k1 = AgreementOutcome::to_symmetric_key(&bits);
        let k2 = AgreementOutcome::to_symmetric_key(&bits);
        assert_eq!(k1, k2);
        let mut flipped = bits.clone();
        flipped[0] = false;
        assert_ne!(k1, AgreementOutcome::to_symmetric_key(&flipped));
    }

    #[test]
    fn correlation_decays_with_distance() {
        let mut last = f64::INFINITY;
        for d in [0.0, 0.1, 0.2, 0.5, 1.0, 2.0] {
            let c = eavesdropper_correlation(d);
            assert!(c <= last, "correlation must be non-increasing");
            assert!((0.0..=1.0).contains(&c));
            last = c;
        }
    }

    #[test]
    fn censoring_fraction_grows_with_band() {
        let narrow = run(
            FadingKeyAgreementConfig {
                guard_band: 0.1,
                ..Default::default()
            },
            6,
        );
        let wide = run(
            FadingKeyAgreementConfig {
                guard_band: 1.0,
                ..Default::default()
            },
            6,
        );
        assert!(wide.censored_fraction > narrow.censored_fraction);
    }

    #[test]
    #[should_panic(expected = "probe")]
    fn zero_probes_panics() {
        let cfg = FadingKeyAgreementConfig {
            probes: 0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        run_agreement(&cfg, &mut rng);
    }
}
