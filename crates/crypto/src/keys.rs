//! Key material: symmetric keys, signing key pairs and key identifiers.
//!
//! These types are deliberately small and `Copy`-friendly so the simulation
//! can hand them around freely; the security-relevant invariant is that a
//! [`SecretKey`] never appears in any wire format produced by
//! [`platoon-proto`](https://docs.rs/platoon-proto) — only [`PublicKey`]s and
//! MAC tags do.

use crate::group;
use crate::sha256::Sha256;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit symmetric key, used with [`crate::hmac`].
///
/// # Examples
///
/// ```
/// use platoon_crypto::keys::SymmetricKey;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let k = SymmetricKey::generate(&mut rng);
/// assert_eq!(k.as_bytes().len(), 32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymmetricKey([u8; 32]);

impl SymmetricKey {
    /// Creates a key from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SymmetricKey(bytes)
    }

    /// Draws a fresh random key.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        SymmetricKey(bytes)
    }

    /// Derives a key deterministically from input keying material and a label.
    pub fn derive(ikm: &[u8], label: &str) -> Self {
        SymmetricKey(crate::hmac::derive_keys(ikm, label, 1)[0])
    }

    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// A short non-secret fingerprint for logging and key lookup.
    pub fn fingerprint(&self) -> u64 {
        Sha256::digest(&self.0).to_u64()
    }
}

impl fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key bytes.
        write!(f, "SymmetricKey(fp={:016x})", self.fingerprint())
    }
}

/// Identifier for a principal's long-term or pseudonymous key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeyId(pub u64);

impl fmt::Debug for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyId({:016x})", self.0)
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A Schnorr public key: the group element `g^x`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey(pub(crate) u64);

impl PublicKey {
    /// Reconstructs a public key from its raw group element (wire decoding).
    ///
    /// Any `u64` is accepted; verification against a key that is not a real
    /// group power simply fails.
    pub fn from_element(element: u64) -> Self {
        PublicKey(element)
    }

    /// Returns the raw group element.
    pub fn element(&self) -> u64 {
        self.0
    }

    /// Stable identifier derived from the key material.
    pub fn id(&self) -> KeyId {
        KeyId(Sha256::digest(&self.0.to_be_bytes()).to_u64())
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:#x})", self.0)
    }
}

/// A Schnorr secret scalar `x`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub(crate) u64);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A signing key pair.
///
/// # Examples
///
/// ```
/// use platoon_crypto::keys::KeyPair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kp = KeyPair::generate(&mut rng);
/// assert_ne!(kp.public().element(), 0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Draws a fresh key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Avoid degenerate exponents 0 and 1.
        let x = rng.gen_range(2..group::GROUP_ORDER);
        Self::from_secret_scalar(x)
    }

    /// Deterministically derives a key pair from a seed (test scaffolding and
    /// reproducible scenarios).
    pub fn from_seed(seed: u64) -> Self {
        let d = Sha256::digest_parts(&[b"platoon-keypair", &seed.to_be_bytes()]);
        let x = group::reduce_exp(d.to_u64()).max(2);
        Self::from_secret_scalar(x)
    }

    fn from_secret_scalar(x: u64) -> Self {
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(group::pow(group::G, x)),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The secret half. Kept crate-internal use narrow: only the signer needs it.
    pub fn secret(&self) -> SecretKey {
        self.secret
    }

    /// Identifier of this key pair (the public key's id).
    pub fn id(&self) -> KeyId {
        self.public.id()
    }
}

/// Hash arbitrary context into a `KeyId`, e.g. for pseudonym labelling.
pub fn key_id_from_context(parts: &[&[u8]]) -> KeyId {
    KeyId(Sha256::digest_parts(parts).to_u64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_keys_differ() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_ne!(a.public(), b.public());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn from_seed_is_deterministic() {
        assert_eq!(
            KeyPair::from_seed(9).public(),
            KeyPair::from_seed(9).public()
        );
        assert_ne!(
            KeyPair::from_seed(9).public(),
            KeyPair::from_seed(10).public()
        );
    }

    #[test]
    fn public_key_is_group_power_of_secret() {
        let kp = KeyPair::from_seed(3);
        assert_eq!(kp.public().element(), group::pow(group::G, kp.secret().0));
    }

    #[test]
    fn symmetric_key_derive_deterministic_and_label_sensitive() {
        let a = SymmetricKey::derive(b"ikm", "beacon");
        let b = SymmetricKey::derive(b"ikm", "beacon");
        let c = SymmetricKey::derive(b"ikm", "other");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn debug_never_leaks_secret_material() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = SymmetricKey::generate(&mut rng);
        let dbg = format!("{k:?}");
        assert!(dbg.contains("fp="));
        let kp = KeyPair::generate(&mut rng);
        assert_eq!(format!("{:?}", kp.secret()), "SecretKey(<redacted>)");
    }

    #[test]
    fn key_id_from_context_varies_with_parts() {
        let a = key_id_from_context(&[b"a", b"b"]);
        let b = key_id_from_context(&[b"ab"]);
        // Parts are hashed as a concatenation; same bytes hash equal.
        assert_eq!(a, b);
        assert_ne!(a, key_id_from_context(&[b"ac"]));
    }
}
