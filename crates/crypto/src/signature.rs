//! Schnorr-style digital signatures over the group in [`crate::group`].
//!
//! Signatures are the backbone of the "public keys" row of the paper's
//! Table III: signed beacons and manoeuvre messages defeat impersonation,
//! Sybil ghosts and fake-manoeuvre injection, because the attacker cannot
//! produce a valid signature for an identity whose secret key it does not
//! hold. The scheme is the textbook Schnorr construction:
//!
//! ```text
//! sign(x, m):   k ← random;  r = g^k;  e = H(r ‖ m);  s = k + e·x  (mod group order)
//! verify(y, m): g^s == r · y^e
//! ```
//!
//! # Examples
//!
//! ```
//! use platoon_crypto::{keys::KeyPair, signature::Signer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let kp = KeyPair::generate(&mut rng);
//! let sig = Signer::new(kp).sign(b"JOIN_REQUEST", &mut rng);
//! assert!(sig.verify(&kp.public(), b"JOIN_REQUEST"));
//! assert!(!sig.verify(&kp.public(), b"JOIN_REQUEST tampered"));
//! ```

use crate::group;
use crate::keys::{KeyPair, PublicKey};
use crate::sha256::Sha256;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Schnorr signature `(r, s)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Commitment `g^k`.
    pub r: u64,
    /// Response `k + e·x mod (p-1)`.
    pub s: u64,
}

impl Signature {
    /// Verifies the signature on `message` under `public`.
    ///
    /// Returns `false` for any tampering of message, key or signature.
    pub fn verify(&self, public: &PublicKey, message: &[u8]) -> bool {
        let e = challenge(self.r, message);
        let lhs = group::pow(group::G, self.s);
        let rhs = group::mul(self.r % group::P, group::pow(public.element(), e));
        lhs == rhs
    }

    /// Serialises the signature to its 16-byte wire form.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.r.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses a signature from its 16-byte wire form.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        Signature {
            r: u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes")),
            s: u64::from_be_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }
}

/// Derives the Fiat–Shamir challenge `e = H(r ‖ m)` as an exponent.
fn challenge(r: u64, message: &[u8]) -> u64 {
    let d = Sha256::digest_parts(&[b"platoon-schnorr", &r.to_be_bytes(), message]);
    group::reduce_exp(d.to_u64())
}

/// A signing context owning a key pair.
#[derive(Clone, Copy, Debug)]
pub struct Signer {
    keypair: KeyPair,
}

impl Signer {
    /// Wraps a key pair for signing.
    pub fn new(keypair: KeyPair) -> Self {
        Signer { keypair }
    }

    /// The verifying key corresponding to this signer.
    pub fn public(&self) -> PublicKey {
        self.keypair.public()
    }

    /// Signs `message` with a random nonce drawn from `rng`.
    pub fn sign<R: Rng + ?Sized>(&self, message: &[u8], rng: &mut R) -> Signature {
        let k = rng.gen_range(1..group::GROUP_ORDER);
        self.sign_with_nonce(message, k)
    }

    /// Deterministic signing for reproducible scenarios: the nonce is derived
    /// from the secret key and message (RFC 6979-style, simulation grade).
    pub fn sign_deterministic(&self, message: &[u8]) -> Signature {
        let d = Sha256::digest_parts(&[
            b"platoon-schnorr-nonce",
            &self.keypair.secret().0.to_be_bytes(),
            message,
        ]);
        let k = group::reduce_exp(d.to_u64()).max(1);
        self.sign_with_nonce(message, k)
    }

    fn sign_with_nonce(&self, message: &[u8], k: u64) -> Signature {
        let r = group::pow(group::G, k);
        let e = challenge(r, message);
        let s = group::add_exp(k, group::mul_exp(e, self.keypair.secret().0));
        Signature { r, s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn signer(seed: u64) -> Signer {
        Signer::new(KeyPair::from_seed(seed))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = signer(1);
        for msg in [&b"a"[..], b"", b"beacon: v=25.0 x=132.2", &[0xff; 200]] {
            let sig = s.sign(msg, &mut rng);
            assert!(sig.verify(&s.public(), msg));
        }
    }

    #[test]
    fn tampered_message_fails() {
        let s = signer(2);
        let sig = s.sign_deterministic(b"SPLIT at t=10");
        assert!(!sig.verify(&s.public(), b"SPLIT at t=11"));
    }

    #[test]
    fn wrong_key_fails() {
        let s = signer(3);
        let other = signer(4);
        let sig = s.sign_deterministic(b"msg");
        assert!(!sig.verify(&other.public(), b"msg"));
    }

    #[test]
    fn tampered_signature_fails() {
        let s = signer(5);
        let sig = s.sign_deterministic(b"msg");
        let bad_r = Signature {
            r: sig.r ^ 1,
            ..sig
        };
        let bad_s = Signature {
            s: sig.s ^ 1,
            ..sig
        };
        assert!(!bad_r.verify(&s.public(), b"msg"));
        assert!(!bad_s.verify(&s.public(), b"msg"));
    }

    #[test]
    fn deterministic_signatures_are_stable() {
        let s = signer(6);
        assert_eq!(s.sign_deterministic(b"m"), s.sign_deterministic(b"m"));
        assert_ne!(s.sign_deterministic(b"m"), s.sign_deterministic(b"n"));
    }

    #[test]
    fn wire_roundtrip() {
        let s = signer(7);
        let sig = s.sign_deterministic(b"wire");
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    #[test]
    fn random_nonces_give_distinct_signatures_for_same_message() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = signer(8);
        let a = s.sign(b"m", &mut rng);
        let b = s.sign(b"m", &mut rng);
        assert_ne!(a, b);
        assert!(a.verify(&s.public(), b"m"));
        assert!(b.verify(&s.public(), b"m"));
    }
}
