//! # platoon-crypto
//!
//! Simulation-grade cryptographic substrate for the platoon security suite
//! (reproduction of Taylor et al., *"Vehicular Platoon Communication:
//! Cybersecurity Threats and Open Challenges"*, DSN-W 2021).
//!
//! The paper's Table III lists "Secret and Public Keys" as the first class of
//! platoon defenses. This crate provides everything those defenses need,
//! implemented from scratch so the repository is fully self-contained:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (tested against NIST vectors).
//! * [`hmac`] — HMAC-SHA256 (RFC 2104/4231) and a KDF.
//! * [`group`] / [`signature`] — Schnorr-style signatures over a 61-bit
//!   prime-field group.
//! * [`keys`] — symmetric keys and signing key pairs.
//! * [`cert`] — a trusted-authority PKI with certificates and revocation.
//! * [`pseudonym`] — pseudonym pools and change policies for location privacy.
//! * [`key_agreement`] — the fading-channel key agreement of Li et al. \[5\].
//! * [`replay`] — timestamp- and sequence-window anti-replay filters.
//!
//! # Security disclaimer
//!
//! **Not for production use.** Group sizes and protocol parameters are
//! deliberately reduced: the experiments in this repository measure
//! *protocol-level* attack economics (what an adversary can achieve with or
//! without valid credentials), never computational bit-strength. The APIs
//! mirror production counterparts so a real library could be swapped in.
//!
//! # Examples
//!
//! Signing and verifying a platoon manoeuvre message:
//!
//! ```
//! use platoon_crypto::{keys::KeyPair, signature::Signer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let leader = KeyPair::generate(&mut rng);
//! let signer = Signer::new(leader);
//! let sig = signer.sign(b"SPLIT after member 3", &mut rng);
//! assert!(sig.verify(&leader.public(), b"SPLIT after member 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod group;
pub mod hmac;
pub mod key_agreement;
pub mod keys;
pub mod pseudonym;
pub mod replay;
pub mod sha256;
pub mod signature;

pub use cert::{Certificate, CertificateAuthority, PrincipalId, RevocationList};
pub use keys::{KeyId, KeyPair, PublicKey, SymmetricKey};
pub use replay::{ReplayVerdict, SequenceWindow, TimestampWindow};
pub use sha256::{Digest, Sha256};
pub use signature::{Signature, Signer};

#[cfg(test)]
mod proptests {
    use crate::hmac::{hmac_sha256, verify_hmac_sha256};
    use crate::keys::KeyPair;
    use crate::replay::SequenceWindow;
    use crate::sha256::Sha256;
    use crate::signature::Signer;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..600), split in 0usize..600) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha256::digest(&data));
        }

        #[test]
        fn hmac_verifies_and_rejects_flip(key in proptest::collection::vec(any::<u8>(), 1..80),
                                          msg in proptest::collection::vec(any::<u8>(), 0..200),
                                          flip_bit in 0usize..256) {
            let tag = hmac_sha256(&key, &msg);
            prop_assert!(verify_hmac_sha256(&key, &msg, &tag));
            let mut bad = tag;
            bad.0[flip_bit / 8] ^= 1 << (flip_bit % 8);
            prop_assert!(!verify_hmac_sha256(&key, &msg, &bad));
        }

        #[test]
        fn signature_sound_under_message_tamper(seed in 1u64..10_000,
                                                msg in proptest::collection::vec(any::<u8>(), 1..100),
                                                tweak in 0usize..100) {
            let signer = Signer::new(KeyPair::from_seed(seed));
            let sig = signer.sign_deterministic(&msg);
            prop_assert!(sig.verify(&signer.public(), &msg));
            let mut tampered = msg.clone();
            let i = tweak % tampered.len();
            tampered[i] = tampered[i].wrapping_add(1);
            prop_assert!(!sig.verify(&signer.public(), &tampered));
        }

        #[test]
        fn sequence_window_never_accepts_twice(seqs in proptest::collection::vec(0u64..200, 1..100)) {
            let mut w: SequenceWindow<u8> = SequenceWindow::new(64);
            let mut accepted = std::collections::HashSet::new();
            for s in seqs {
                if w.check(0, s).is_fresh() {
                    prop_assert!(accepted.insert(s), "sequence {} accepted twice", s);
                }
            }
        }
    }
}
