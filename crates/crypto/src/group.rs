//! Modular arithmetic over the Mersenne prime `p = 2^61 - 1`.
//!
//! The Schnorr-style signatures in [`crate::signature`] operate in the
//! multiplicative group of this field. A 61-bit group is trivially breakable
//! by a real adversary; it is used here because the repository's experiments
//! measure *protocol-level* security economics (what an attacker can do with
//! or without valid credentials), never bit-strength. The group API mirrors
//! what a production deployment would get from an elliptic-curve library, so
//! swapping in a real group is a local change.

/// The group modulus: the Mersenne prime `2^61 - 1`.
pub const P: u64 = (1 << 61) - 1;

/// Order of the multiplicative group, `p - 1`.
pub const GROUP_ORDER: u64 = P - 1;

/// A fixed generator of a large subgroup of `(Z/pZ)*`.
///
/// 3 is a primitive root candidate with small encoding; its exact subgroup
/// order is irrelevant for the simulation-grade guarantees documented above.
pub const G: u64 = 3;

/// Reduces `x` modulo [`P`].
#[inline]
pub fn reduce(x: u64) -> u64 {
    x % P
}

/// Modular addition in the field.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    let s = (a as u128 + b as u128) % P as u128;
    s as u64
}

/// Modular subtraction in the field.
#[inline]
pub fn sub(a: u64, b: u64) -> u64 {
    let s = (a as u128 + P as u128 - (b % P) as u128) % P as u128;
    s as u64
}

/// Modular multiplication in the field.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P as u128) as u64
}

/// Modular exponentiation `base^exp mod p` by square-and-multiply.
pub fn pow(base: u64, mut exp: u64) -> u64 {
    let mut base = base % P;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Addition modulo the group order (used for Schnorr exponent arithmetic).
#[inline]
pub fn add_exp(a: u64, b: u64) -> u64 {
    ((a as u128 + b as u128) % GROUP_ORDER as u128) as u64
}

/// Multiplication modulo the group order.
#[inline]
pub fn mul_exp(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % GROUP_ORDER as u128) as u64
}

/// Reduces a scalar into the exponent range `[0, GROUP_ORDER)`.
#[inline]
pub fn reduce_exp(x: u64) -> u64 {
    x % GROUP_ORDER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_mersenne_61() {
        assert_eq!(P, 2305843009213693951);
    }

    #[test]
    fn add_wraps_correctly() {
        assert_eq!(add(P - 1, 1), 0);
        assert_eq!(add(P - 1, 2), 1);
        assert_eq!(add(5, 7), 12);
    }

    #[test]
    fn sub_wraps_correctly() {
        assert_eq!(sub(0, 1), P - 1);
        assert_eq!(sub(10, 3), 7);
    }

    #[test]
    fn mul_matches_small_cases() {
        assert_eq!(mul(3, 4), 12);
        // (p-1)^2 mod p == 1 since p-1 ≡ -1
        assert_eq!(mul(P - 1, P - 1), 1);
    }

    #[test]
    fn pow_basic_identities() {
        assert_eq!(pow(G, 0), 1);
        assert_eq!(pow(G, 1), G);
        assert_eq!(pow(G, 2), 9);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) == 1 mod p for a not divisible by p.
        for a in [2u64, 3, 17, 123_456_789, P - 2] {
            assert_eq!(pow(a, P - 1), 1, "a = {a}");
        }
    }

    #[test]
    fn pow_is_homomorphic_in_exponent() {
        let (x, y) = (1_234_567u64, 7_654_321u64);
        assert_eq!(mul(pow(G, x), pow(G, y)), pow(G, add_exp(x, y)));
    }

    #[test]
    fn exp_arithmetic_wraps_at_group_order() {
        assert_eq!(add_exp(GROUP_ORDER - 1, 1), 0);
        assert_eq!(mul_exp(GROUP_ORDER - 1, 2), GROUP_ORDER - 2);
        assert_eq!(reduce_exp(GROUP_ORDER + 5), 5);
    }
}
