//! Regenerates every table and figure of the reproduction, and hosts the
//! perf and robustness subcommands.
//!
//! ```text
//! cargo run --release -p platoon-bench --bin report           # full effort
//! cargo run --release -p platoon-bench --bin report -- --quick
//! cargo run --release -p platoon-bench --bin report -- perf --quick
//! cargo run --release -p platoon-bench --bin report -- robustness --quick
//! cargo run --release -p platoon-bench --bin report -- trace --quick
//! cargo run --release -p platoon-bench --bin report -- trace-diff A B
//! cargo run --release -p platoon-bench --bin report -- corridor --quick
//! cargo run --release -p platoon-bench --bin report -- regimes --quick
//! cargo run --release -p platoon-bench --bin report -- serve
//! cargo run --release -p platoon-bench --bin report -- submit --experiment smoke --quick
//! cargo run --release -p platoon-bench --bin report -- campaign --quick
//! cargo run --release -p platoon-bench --bin report -- dataset --quick
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("perf") {
        std::process::exit(platoon_core::perf::cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("robustness") {
        std::process::exit(platoon_core::experiments::robustness::cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("trace") {
        std::process::exit(platoon_core::experiments::trace::cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("trace-diff") {
        std::process::exit(platoon_core::experiments::trace::diff_cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("corridor") {
        std::process::exit(platoon_core::experiments::corridor::cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("regimes") {
        std::process::exit(platoon_core::experiments::regimes::cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("serve") {
        std::process::exit(platoon_server::cli::serve_cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("submit") {
        std::process::exit(platoon_server::cli::submit_cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("campaign") {
        std::process::exit(platoon_campaign::cli::cli_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("dataset") {
        std::process::exit(platoon_dataset::cli::cli_main(&args[1..]));
    }
    let mut quick = false;
    for arg in &args {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: report [--quick] | report perf [options] | report robustness [options]\n\
                     \x20      | report trace [options] | report trace-diff A B\n\
                     \x20      | report corridor [options]"
                );
                eprintln!("  --quick      shorter runs and fewer sweep points");
                eprintln!("  perf         the perf grid (see `report perf --help`)");
                eprintln!("  robustness   detection quality under benign faults (see `report robustness --help`)");
                eprintln!("  trace        deterministic per-tick trace of one scenario (see `report trace --help`)");
                eprintln!("  trace-diff   first diverging tick/phase between two traces");
                eprintln!("  corridor     highway-scale multi-platoon corridor grid (see `report corridor --help`)");
                eprintln!("  regimes      detection quality across driving regimes (see `report regimes --help`)");
                eprintln!("  serve        persistent job server with a content-addressed result cache (see `report serve --help`)");
                eprintln!("  submit       submit an experiment grid to the server (see `report submit --help`)");
                eprintln!("  campaign     adversarial stealth-vs-damage parameter search (see `report campaign --help`)");
                eprintln!("  dataset      labeled per-beacon train/test shards + the learned detector baseline (see `report dataset --help`)");
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let effort = if quick { "quick" } else { "full" };
    eprintln!("regenerating all tables and figures ({effort} effort)...");
    print!("{}", platoon_bench::full_report(quick));
}
