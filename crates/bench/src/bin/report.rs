//! Regenerates every table and figure of the reproduction.
//!
//! ```text
//! cargo run --release -p platoon-bench --bin report           # full effort
//! cargo run --release -p platoon-bench --bin report -- --quick
//! ```

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("usage: report [--quick]");
                eprintln!("  --quick   shorter runs and fewer sweep points");
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let effort = if quick { "quick" } else { "full" };
    eprintln!("regenerating all tables and figures ({effort} effort)...");
    print!("{}", platoon_bench::full_report(quick));
}
