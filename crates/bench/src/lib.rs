//! # platoon-bench
//!
//! The benchmark and report harness of the reproduction: regenerates every
//! table and figure of Taylor et al. (DSN-W 2021) from the living code.
//!
//! * `cargo run -p platoon-bench --bin report` — prints Tables I–III, the
//!   risk assessment and figures F1–F10 at full effort (the EXPERIMENTS.md
//!   source of truth). Pass `--quick` for a fast pass.
//! * `cargo bench -p platoon-bench` — Criterion timing of the simulator,
//!   crypto substrate and experiment suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use platoon_core::experiments::{figures, table2, table3};
use platoon_core::{risk, surveys};

/// Generates the full textual report (all tables + figures).
pub fn full_report(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(&surveys::render_table1().render());
    out.push('\n');
    out.push_str(&surveys::render_coverage_matrix().render());
    out.push('\n');
    out.push_str(&table2::render(&table2::run(quick)).render());
    out.push('\n');
    out.push_str(&table3::render(&table3::run(quick)).render());
    out.push('\n');
    out.push_str(&risk::render_risk_table().render());
    out.push('\n');
    for fig in figures::all_figures(quick) {
        out.push_str(&fig.render());
        out.push('\n');
    }
    for table in platoon_core::experiments::ablations::all_ablations(quick) {
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_all_sections() {
        // The taxonomy/risk parts render instantly; the sim-backed parts are
        // exercised by the per-experiment tests in platoon-core.
        let t1 = platoon_core::surveys::render_table1().render();
        let risk = platoon_core::risk::render_risk_table().render();
        assert!(t1.contains("Table I"));
        assert!(risk.contains("Risk assessment"));
    }
}
