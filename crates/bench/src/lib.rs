//! # platoon-bench
//!
//! The benchmark and report harness of the reproduction: regenerates every
//! table and figure of Taylor et al. (DSN-W 2021) from the living code.
//!
//! * `cargo run -p platoon-bench --bin report` — prints Tables I–IV, the
//!   risk assessment and figures F1–F10 at full effort (the EXPERIMENTS.md
//!   source of truth). Pass `--quick` for a fast pass.
//! * `cargo bench -p platoon-bench` — Criterion timing of the simulator,
//!   crypto substrate and experiment suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use platoon_core::experiments::{figures, table2, table3, table4};
use platoon_core::{risk, surveys};
use platoon_sim::harness::{Batch, BatchReport};
use platoon_sim::prelude::{AuthMode, ControllerKind, RunSummary, Scenario};

/// Base seed of the canonical benchmark batch ([`bench_batch`]).
pub const BENCH_BASE_SEED: u64 = 77;

/// The canonical benchmark batch: a controller × auth sweep of short runs,
/// sized so worker-count scaling is visible without dominating `cargo bench`.
/// Seeds derive from the cell labels, so the resulting [`BatchReport`] is
/// identical for every worker count — which [`bench_report`]'s callers (and
/// the `harness` bench group) rely on when comparing timings.
pub fn bench_batch() -> Batch<RunSummary> {
    let mut batch = Batch::new(BENCH_BASE_SEED);
    for controller in [
        ControllerKind::Acc,
        ControllerKind::Cacc,
        ControllerKind::Ploeg,
    ] {
        for auth in [AuthMode::None, AuthMode::Pki] {
            batch.push_scenario(
                Scenario::builder()
                    .label(format!("bench/{controller:?}/{auth:?}"))
                    .vehicles(4)
                    .controller(controller)
                    .auth(auth)
                    .duration(10.0)
                    .build(),
            );
        }
    }
    batch
}

/// Runs [`bench_batch`] on `workers` threads and returns the report.
pub fn bench_report(workers: usize) -> BatchReport {
    bench_batch().run_report(workers)
}

/// Generates the full textual report (all tables + figures).
pub fn full_report(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(&surveys::render_table1().render());
    out.push('\n');
    out.push_str(&surveys::render_coverage_matrix().render());
    out.push('\n');
    out.push_str(&table2::render(&table2::run(quick)).render());
    out.push('\n');
    out.push_str(&table3::render(&table3::run(quick)).render());
    out.push('\n');
    out.push_str(&table4::render(&table4::run(quick)).render());
    out.push('\n');
    out.push_str(&risk::render_risk_table().render());
    out.push('\n');
    for fig in figures::all_figures(quick) {
        out.push_str(&fig.render());
        out.push('\n');
    }
    for table in platoon_core::experiments::ablations::all_ablations(quick) {
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_batch_report_is_worker_count_invariant() {
        let serial = super::bench_report(1).to_canonical_json();
        let parallel = super::bench_report(4).to_canonical_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn report_contains_all_sections() {
        // The taxonomy/risk parts render instantly; the sim-backed parts are
        // exercised by the per-experiment tests in platoon-core.
        let t1 = platoon_core::surveys::render_table1().render();
        let risk = platoon_core::risk::render_risk_table().render();
        assert!(t1.contains("Table I"));
        assert!(risk.contains("Risk assessment"));
    }
}
