//! Criterion benchmarks of the `platoon-detect` streaming pipeline: beacon
//! ingest throughput for one detector bank (the per-vehicle on-board cost)
//! and for a pool of banks spread across harness workers (the
//! infrastructure-side cost of scoring a whole fleet's traffic).
//!
//! The synthetic stream interleaves honest cruising traffic from several
//! senders with a low rate of misbehaving claims, so fusion tracks stay
//! warm and the benchmark exercises the alert path, not just the happy
//! path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use platoon_crypto::cert::PrincipalId;
use platoon_detect::observation::BeaconObservation;
use platoon_detect::pipeline::{Pipeline, PipelineConfig};
use platoon_sim::harness::Batch;

/// Beacons per generated stream (10 senders × 10 Hz × 60 simulated
/// seconds: one minute of a 10-truck platoon's channel traffic).
const STREAM_LEN: usize = 6_000;
const SENDERS: u64 = 10;

/// A deterministic one-minute channel trace; every 97th beacon teleports
/// so evidence and fusion state stay exercised.
fn stream() -> Vec<BeaconObservation> {
    (0..STREAM_LEN)
        .map(|i| {
            let t = (i / SENDERS as usize) as f64 * 0.1;
            let sender = PrincipalId(1 + (i as u64 % SENDERS));
            let mut obs = BeaconObservation::plausible(t, sender, 0);
            obs.claim.position += sender.0 as f64 * 30.0;
            if i % 97 == 0 {
                obs.claim.position += 400.0;
            }
            obs
        })
        .collect()
}

fn score(pipeline: &mut Pipeline, trace: &[BeaconObservation]) -> usize {
    for obs in trace {
        pipeline.observe_beacon(obs);
    }
    pipeline.take_alerts().len()
}

fn bench_single_thread(c: &mut Criterion) {
    let trace = stream();
    let mut g = c.benchmark_group("detect");
    g.sample_size(20);
    for (name, config) in [
        (
            "ingest_6k_beacons_default",
            PipelineConfig::default_profile(),
        ),
        ("ingest_6k_beacons_strict", PipelineConfig::strict()),
    ] {
        let trace = trace.clone();
        g.bench_function(name, |b| {
            b.iter_batched(
                || Pipeline::new(config.clone()),
                |mut pipeline| score(&mut pipeline, &trace),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_pooled(c: &mut Criterion) {
    let trace = stream();
    let mut g = c.benchmark_group("detect-pooled");
    g.sample_size(10);
    // A fleet's worth of independent banks: 8 traces scored per iteration,
    // once serially and once across the harness worker pool. The ratio is
    // the parallel speedup of fleet-side scoring.
    for (name, workers) in [("fleet_8x6k_1_worker", 1), ("fleet_8x6k_pooled", 0)] {
        let trace = trace.clone();
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut batch: Batch<usize> = Batch::new(2021);
                for i in 0..8 {
                    let trace = trace.clone();
                    batch.push(format!("bank/{i}"), move |_seed| {
                        let mut pipeline = Pipeline::new(PipelineConfig::default_profile());
                        score(&mut pipeline, &trace)
                    });
                }
                let workers = if workers == 0 {
                    platoon_sim::harness::default_workers()
                } else {
                    workers
                };
                batch.run(workers).iter().map(|e| e.value).sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_pooled);
criterion_main!(benches);
