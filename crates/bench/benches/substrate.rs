//! Criterion micro-benchmarks of the substrates: crypto primitives, the
//! wire codec, the radio medium and the full engine step — the costs that
//! bound how large a platoon the simulator (and, by proxy, an on-board
//! security stack) can sustain.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use platoon_crypto::cert::PrincipalId;
use platoon_crypto::hmac::hmac_sha256;
use platoon_crypto::keys::KeyPair;
use platoon_crypto::sha256::Sha256;
use platoon_crypto::signature::Signer;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::{Beacon, PlatoonId, PlatoonMessage, Role};
use platoon_sim::prelude::*;

fn beacon_msg() -> PlatoonMessage {
    PlatoonMessage::Beacon(Beacon {
        sender: PrincipalId(1),
        platoon: PlatoonId(1),
        role: Role::Member,
        seq: 42,
        timestamp: 12.5,
        position: 130.25,
        speed: 24.9,
        accel: -0.3,
        length: 16.5,
    })
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0xA5u8; 256];
    g.bench_function("sha256_256B", |b| b.iter(|| Sha256::digest(&data)));
    g.bench_function("hmac_sha256_256B", |b| {
        b.iter(|| hmac_sha256(b"key", &data))
    });
    let signer = Signer::new(KeyPair::from_seed(7));
    g.bench_function("schnorr_sign", |b| {
        b.iter(|| signer.sign_deterministic(&data))
    });
    let sig = signer.sign_deterministic(&data);
    g.bench_function("schnorr_verify", |b| {
        b.iter(|| sig.verify(&signer.public(), &data))
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let msg = beacon_msg();
    g.bench_function("beacon_encode", |b| b.iter(|| msg.encode()));
    let bytes = msg.encode();
    g.bench_function("beacon_decode", |b| {
        b.iter(|| PlatoonMessage::decode(&bytes))
    });
    let key = platoon_crypto::keys::SymmetricKey::derive(b"k", "bench");
    g.bench_function("envelope_mac_seal", |b| {
        b.iter(|| Envelope::mac(PrincipalId(1), &msg, &key))
    });
    let env = Envelope::mac(PrincipalId(1), &msg, &key);
    g.bench_function("envelope_mac_verify", |b| b.iter(|| env.verify_mac(&key)));
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    for n in [4usize, 8, 16] {
        g.bench_function(format!("step_{n}_vehicles"), |b| {
            b.iter_batched(
                || {
                    Engine::new(
                        Scenario::builder()
                            .vehicles(n)
                            .max_platoon_size(n.max(16))
                            .duration(10.0)
                            .build(),
                    )
                },
                |mut engine| {
                    for _ in 0..10 {
                        engine.step();
                    }
                    engine
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("run_60s_8_vehicles_pki", |b| {
        b.iter(|| {
            Engine::new(
                Scenario::builder()
                    .vehicles(8)
                    .duration(60.0)
                    .auth(AuthMode::Pki)
                    .build(),
            )
            .run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_crypto, bench_codec, bench_engine);
criterion_main!(benches);
