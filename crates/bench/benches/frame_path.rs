//! Frame-building hot path: clone-per-frame versus the arena-shared
//! payload the engine now uses.
//!
//! Every communication step the engine turns each sealed envelope into one
//! frame per channel. The naive builder clones the encoded bytes into every
//! frame (one allocation + one byte copy each); the shared builder encodes
//! once and hands out `Payload` clones (an `Arc` refcount bump). The third
//! benchmark times a full hybrid-VLC engine run, the scenario where payload
//! sharing pays the most (beacon + hybrid copy + relay all share bytes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use platoon_crypto::cert::PrincipalId;
use platoon_crypto::keys::SymmetricKey;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::{Beacon, PlatoonId, PlatoonMessage, Role};
use platoon_sim::prelude::*;
use platoon_v2x::message::{ChannelKind, Frame, NodeId, Payload};

const SENDERS: u64 = 8;
const CHANNELS: [ChannelKind; 3] = [ChannelKind::Dsrc, ChannelKind::Vlc, ChannelKind::CV2x];

fn sealed_beacon_bytes() -> Vec<u8> {
    let msg = PlatoonMessage::Beacon(Beacon {
        sender: PrincipalId(1),
        platoon: PlatoonId(1),
        role: Role::Member,
        seq: 42,
        timestamp: 12.5,
        position: 130.25,
        speed: 24.9,
        accel: -0.3,
        length: 16.5,
    });
    let key = SymmetricKey::derive(b"bench", "frame-path");
    Envelope::mac(PrincipalId(1), &msg, &key).encode()
}

fn frame(sender: u64, channel: ChannelKind, payload: Payload) -> Frame {
    Frame {
        sender: NodeId(sender),
        origin: (sender as f64 * 20.0, 0.0),
        power_dbm: 23.0,
        channel,
        payload,
    }
}

fn bench_frame_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_path");
    let bytes = sealed_beacon_bytes();

    // What the builder did before: one byte copy per frame.
    g.bench_function("naive_clone_per_frame", |b| {
        b.iter(|| {
            let mut frames = Vec::with_capacity((SENDERS as usize) * CHANNELS.len());
            for s in 0..SENDERS {
                for ch in CHANNELS {
                    frames.push(frame(s, ch, Payload::from(bytes.clone())));
                }
            }
            black_box(frames)
        })
    });

    // What it does now: one copy per sender, refcount bumps per frame.
    g.bench_function("arena_shared_payload", |b| {
        b.iter(|| {
            let mut frames = Vec::with_capacity((SENDERS as usize) * CHANNELS.len());
            for s in 0..SENDERS {
                let payload: Payload = bytes.clone().into();
                for ch in CHANNELS {
                    frames.push(frame(s, ch, payload.clone()));
                }
            }
            black_box(frames)
        })
    });
    g.finish();
}

fn bench_hybrid_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_path_engine");
    g.sample_size(10);
    g.bench_function("hybrid_vlc_run_10s", |b| {
        b.iter(|| {
            let scenario = Scenario::builder()
                .label("bench/frame-path/vlc")
                .vehicles(6)
                .comms(CommsMode::HybridVlc)
                .auth(AuthMode::GroupMac)
                .duration(10.0)
                .seed(7)
                .build();
            black_box(Engine::new(scenario).run())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_frame_path, bench_hybrid_engine);
criterion_main!(benches);
