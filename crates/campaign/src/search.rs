//! The campaign driver: grid pass → evolutionary refinement → Pareto
//! frontier, all derived from one campaign seed.
//!
//! ## Determinism contract
//!
//! Everything the search does is a pure function of
//! ([`CampaignConfig`], the code version):
//!
//! * the grid pass enumerates quantile levels in declared knob order and
//!   subsamples oversized grids by a fixed stride;
//! * the refinement rng is seeded per attack from
//!   `campaign_seed ^ fnv1a(attack)`, and every generation draws exactly
//!   `children_per_gen` (tournament + mutation) samples regardless of what
//!   the evaluations returned;
//! * candidate evaluation is a [`JobSpec::Campaign`] cell whose result
//!   document is canonical, so local and cached-server execution are
//!   byte-identical;
//! * every ranking tie breaks on the candidate's canonical JSON.
//!
//! Two runs with the same seed therefore submit the same cells in the
//! same order and render the same document — which is exactly what lets
//! the server's content-addressed cache absorb a replay wholesale.

use platoon_attacks::params::{param_space, searchable_attacks, AttackParams, ParamKind};
use platoon_core::experiments::campaign::{parse_outcome, CandidateOutcome};
use platoon_core::experiments::common::EXPERIMENT_BASE_SEED;
use platoon_server::job::{fnv1a, JobSpec};
use platoon_server::net::Client;
use platoon_server::service::{Service, ServiceConfig};
use platoon_sim::harness::json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Everything one campaign depends on.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Quick vs full effort per evaluation run.
    pub quick: bool,
    /// The seed every random draw of the search derives from.
    pub campaign_seed: u64,
    /// The scenario seed every candidate is evaluated under.
    pub eval_seed: u64,
    /// Attacks to search (machine names with a declared parameter space).
    pub attacks: Vec<String>,
    /// Grid levels per continuous/integer knob in the coarse pass.
    pub grid_levels: usize,
    /// Cap on grid cells per attack (oversized grids are stride-sampled).
    pub grid_cap: usize,
    /// Survivor population between generations.
    pub population: usize,
    /// Refinement generations.
    pub generations: usize,
    /// Mutated children proposed per generation.
    pub children_per_gen: usize,
    /// Initial mutation width as a fraction of each knob's range
    /// (decays by [`SIGMA_DECAY`] per generation).
    pub sigma0: f64,
}

/// Per-generation decay of the mutation width.
pub const SIGMA_DECAY: f64 = 0.6;

impl CampaignConfig {
    /// The canonical campaign at an effort level: quick searches three
    /// representative attacks on a small budget (the CI smoke / golden
    /// grid); full searches every catalogued attack.
    pub fn new(quick: bool, campaign_seed: u64) -> CampaignConfig {
        let attacks: Vec<String> = if quick {
            ["impersonation", "sensor-spoof", "insider-fdi"]
                .map(String::from)
                .to_vec()
        } else {
            searchable_attacks().iter().map(|s| s.to_string()).collect()
        };
        CampaignConfig {
            quick,
            campaign_seed,
            eval_seed: EXPERIMENT_BASE_SEED,
            attacks,
            grid_levels: if quick { 2 } else { 3 },
            grid_cap: if quick { 12 } else { 60 },
            population: if quick { 4 } else { 8 },
            generations: if quick { 2 } else { 5 },
            children_per_gen: if quick { 8 } else { 16 },
            sigma0: 0.18,
        }
    }
}

/// One evaluated point of the search space.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The parameter assignment.
    pub params: AttackParams,
    /// Where the candidate came from: `grid`, `default`, or `refine/g<N>`.
    pub origin: String,
    /// Its measured outcome.
    pub outcome: CandidateOutcome,
}

impl Candidate {
    /// The scalar selection fitness: damage discounted by detection.
    /// Selection needs one axis; the *report* keeps both (the frontier).
    pub fn fitness(&self) -> f64 {
        self.outcome.damage() / (1.0 + self.outcome.detection_score())
    }
}

/// The searched result for one attack.
#[derive(Clone, Debug)]
pub struct AttackCampaign {
    /// Attack machine name.
    pub attack: String,
    /// Unique candidates evaluated.
    pub cells: usize,
    /// The fittest grid-pass candidate.
    pub best_grid: Candidate,
    /// The fittest refined candidate, if any generation produced one.
    pub best_refined: Option<Candidate>,
    /// Whether some refined candidate *strictly dominates* the best grid
    /// candidate: lower detection score **and** higher damage.
    pub refined_dominates: bool,
    /// The stealth-vs-impact Pareto frontier (non-dominated candidates,
    /// by ascending detection score).
    pub frontier: Vec<Candidate>,
}

/// A finished campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Quick vs full effort.
    pub quick: bool,
    /// The campaign seed.
    pub campaign_seed: u64,
    /// The evaluation scenario seed.
    pub eval_seed: u64,
    /// Unique candidates evaluated across all attacks.
    pub total_cells: usize,
    /// Per-attack results, in [`CampaignConfig::attacks`] order.
    pub attacks: Vec<AttackCampaign>,
}

/// Where candidate cells are evaluated: an in-process job service (with
/// its enqueue-time dedup and result cache), or a remote `platoon-server`
/// over TCP. Both run the same [`JobSpec::Campaign`] cell and return the
/// same canonical documents, so the choice cannot change the report.
pub enum Evaluator {
    /// In-process service (memory-only cache).
    Local(Service),
    /// Remote server client.
    Remote(Client),
}

impl Evaluator {
    /// Starts an in-process service with `workers` threads and a
    /// memory-only cache (a campaign re-evaluates nothing *within* a run
    /// thanks to its own archive; the cache still coalesces duplicate
    /// in-flight submissions).
    pub fn local(workers: usize) -> Evaluator {
        let config = ServiceConfig {
            workers,
            ..ServiceConfig::default()
        };
        Evaluator::Local(Service::start(config).expect("memory-only service cannot fail to open"))
    }

    /// Connects to a remote `platoon-server`, checking its code version
    /// matches ours (a version-skewed server would compute under different
    /// scoring and poison the campaign).
    pub fn connect(addr: &str) -> Result<Evaluator, String> {
        let mut client = Client::connect(addr, Some(std::time::Duration::from_secs(5)))
            .map_err(|e| format!("connecting to {addr}: {e}"))?;
        let version = client.ping()?;
        if version != platoon_server::job::CODE_VERSION {
            return Err(format!(
                "server runs {version}, this binary is {} — refusing a version-skewed campaign",
                platoon_server::job::CODE_VERSION
            ));
        }
        Ok(Evaluator::Remote(client))
    }

    /// Evaluates a batch of cells to their outcomes, in submission order.
    fn evaluate(&mut self, specs: Vec<JobSpec>) -> Result<Vec<CandidateOutcome>, String> {
        let docs: Vec<String> = match self {
            Evaluator::Local(service) => service
                .run_batch(specs)
                .into_iter()
                .map(|r| {
                    r.document.map(|d| d.to_string()).ok_or_else(|| {
                        format!(
                            "cell {} failed: {}",
                            r.label,
                            r.error.unwrap_or_else(|| "no document".into())
                        )
                    })
                })
                .collect::<Result<_, _>>()?,
            Evaluator::Remote(client) => {
                let mut results = client.submit(&specs)?;
                results.sort_by_key(|r| r.index);
                results
                    .into_iter()
                    .map(|r| {
                        r.document.ok_or_else(|| {
                            format!(
                                "cell {} failed: {}",
                                r.label,
                                r.error.unwrap_or_else(|| "no document".into())
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?
            }
        };
        docs.iter().map(|d| parse_outcome(d)).collect()
    }
}

/// The coarse grid: quantile levels per knob (booleans take both values),
/// Cartesian product, stride-sampled down to `cap` cells, with the
/// all-defaults candidate always included (first).
pub fn grid_candidates(attack: &str, levels: usize, cap: usize) -> Vec<AttackParams> {
    let space = param_space(attack).expect("campaign attacks always have a space");
    let axes: Vec<Vec<f64>> = space
        .iter()
        .map(|spec| {
            let raw: Vec<f64> = match spec.kind {
                ParamKind::Boolean => vec![0.0, 1.0],
                ParamKind::Continuous | ParamKind::Integer => (0..levels.max(1))
                    .map(|i| {
                        spec.min + (spec.max - spec.min) * (i as f64 + 0.5) / levels.max(1) as f64
                    })
                    .collect(),
            };
            // Snapping can collapse adjacent integer levels; keep distinct.
            let mut snapped: Vec<f64> = raw.into_iter().map(|v| spec.snap(v)).collect();
            snapped.dedup();
            snapped
        })
        .collect();
    let total: usize = axes.iter().map(Vec::len).product();
    let take = total.min(cap.max(1));
    let mut out = vec![AttackParams::defaults(attack).expect("space exists")];
    let mut seen: HashMap<String, ()> = HashMap::new();
    seen.insert(out[0].canonical_json(), ());
    for k in 0..take {
        // Fixed-stride subsample of the row-major product (covers the
        // whole grid evenly; k * total / take is strictly increasing).
        let mut index = k * total / take;
        let mut values = Vec::with_capacity(axes.len());
        for axis in axes.iter().rev() {
            values.push(axis[index % axis.len()]);
            index /= axis.len();
        }
        values.reverse();
        let params = AttackParams::from_values(attack, &values).expect("axis values are in space");
        if seen.insert(params.canonical_json(), ()).is_none() {
            out.push(params);
        }
    }
    out
}

/// Deterministic index pick in `[0, n)` from the campaign rng.
fn pick(rng: &mut StdRng, n: usize) -> usize {
    rng.gen_range(0..n)
}

/// Ranks archive indices by descending fitness, canonical JSON as the
/// tiebreak (total order ⇒ stable result across platforms).
fn ranked(archive: &[Candidate], indices: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = indices.collect();
    v.sort_by(|&a, &b| {
        archive[b]
            .fitness()
            .total_cmp(&archive[a].fitness())
            .then_with(|| {
                archive[a]
                    .params
                    .canonical_json()
                    .cmp(&archive[b].params.canonical_json())
            })
    });
    v
}

/// `a` strictly dominates `b` on (stealth, damage)?
fn dominates(a: &CandidateOutcome, b: &CandidateOutcome) -> bool {
    a.detection_score() < b.detection_score() && a.damage() > b.damage()
}

/// Non-dominated subset of the archive: no other candidate is at least as
/// stealthy *and* at least as damaging with one strict improvement.
fn pareto_frontier(archive: &[Candidate]) -> Vec<Candidate> {
    let mut frontier: Vec<Candidate> = archive
        .iter()
        .filter(|c| {
            !archive.iter().any(|other| {
                let (o, s) = (&other.outcome, &c.outcome);
                o.detection_score() <= s.detection_score()
                    && o.damage() >= s.damage()
                    && (o.detection_score() < s.detection_score() || o.damage() > s.damage())
            })
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        a.outcome
            .detection_score()
            .total_cmp(&b.outcome.detection_score())
            .then(b.outcome.damage().total_cmp(&a.outcome.damage()))
            .then_with(|| a.params.canonical_json().cmp(&b.params.canonical_json()))
    });
    frontier
}

/// Searches one attack: grid pass, then `generations` rounds of
/// tournament-3 selection + Gaussian mutation over the survivor
/// population.
fn search_attack(
    attack: &str,
    config: &CampaignConfig,
    evaluator: &mut Evaluator,
) -> Result<AttackCampaign, String> {
    let spec_of = |params: &AttackParams| JobSpec::Campaign {
        params: params.clone(),
        quick: config.quick,
        seed: config.eval_seed,
    };
    let mut archive: Vec<Candidate> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();

    // Phase 1: the coarse grid (defaults candidate first).
    let grid = grid_candidates(attack, config.grid_levels, config.grid_cap);
    let outcomes = evaluator.evaluate(grid.iter().map(&spec_of).collect())?;
    for (i, (params, outcome)) in grid.into_iter().zip(outcomes).enumerate() {
        seen.insert(params.canonical_json(), archive.len());
        archive.push(Candidate {
            params,
            origin: if i == 0 {
                "default".into()
            } else {
                "grid".into()
            },
            outcome,
        });
    }
    let best_grid_idx = ranked(&archive, 0..archive.len())[0];

    // Phase 2: evolutionary refinement. Every generation draws the same
    // number of rng samples whatever the evaluations said, so the stream
    // stays aligned across replays by construction.
    let mut rng = StdRng::seed_from_u64(config.campaign_seed ^ fnv1a(attack.as_bytes()));
    let mut population = ranked(&archive, 0..archive.len());
    population.truncate(config.population.max(1));
    for g in 0..config.generations {
        let sigma = config.sigma0 * SIGMA_DECAY.powi(g as i32);
        let mut children: Vec<AttackParams> = Vec::with_capacity(config.children_per_gen);
        for _ in 0..config.children_per_gen {
            // Tournament-3 over the survivor population.
            let parent = (0..3)
                .map(|_| population[pick(&mut rng, population.len())])
                .min_by(|&a, &b| {
                    archive[b]
                        .fitness()
                        .total_cmp(&archive[a].fitness())
                        .then_with(|| {
                            archive[a]
                                .params
                                .canonical_json()
                                .cmp(&archive[b].params.canonical_json())
                        })
                })
                .expect("tournament is non-empty");
            children.push(archive[parent].params.mutate(&mut rng, sigma));
        }
        // Only genuinely new points cost an evaluation; repeats (within
        // the generation or against the archive) are search no-ops.
        let mut fresh: Vec<AttackParams> = Vec::new();
        for child in children {
            let key = child.canonical_json();
            if !seen.contains_key(&key) && !fresh.iter().any(|f| f.canonical_json() == key) {
                fresh.push(child);
            }
        }
        let outcomes = evaluator.evaluate(fresh.iter().map(&spec_of).collect())?;
        for (params, outcome) in fresh.into_iter().zip(outcomes) {
            seen.insert(params.canonical_json(), archive.len());
            archive.push(Candidate {
                params,
                origin: format!("refine/g{g}"),
                outcome,
            });
        }
        population = ranked(&archive, 0..archive.len());
        population.truncate(config.population.max(1));
    }

    let best_grid = archive[best_grid_idx].clone();
    let refined: Vec<usize> = (0..archive.len())
        .filter(|&i| archive[i].origin.starts_with("refine/"))
        .collect();
    let best_refined = ranked(&archive, refined.iter().copied())
        .first()
        .map(|&i| archive[i].clone());
    let refined_dominates = refined
        .iter()
        .any(|&i| dominates(&archive[i].outcome, &best_grid.outcome));
    Ok(AttackCampaign {
        attack: attack.to_string(),
        cells: archive.len(),
        best_grid,
        best_refined,
        refined_dominates,
        frontier: pareto_frontier(&archive),
    })
}

/// Runs the whole campaign over the configured attacks.
pub fn run_campaign(
    config: &CampaignConfig,
    evaluator: &mut Evaluator,
) -> Result<CampaignReport, String> {
    let mut attacks = Vec::with_capacity(config.attacks.len());
    for attack in &config.attacks {
        attacks.push(search_attack(attack, config, evaluator)?);
    }
    Ok(CampaignReport {
        quick: config.quick,
        campaign_seed: config.campaign_seed,
        eval_seed: config.eval_seed,
        total_cells: attacks.iter().map(|a| a.cells).sum(),
        attacks,
    })
}

fn write_candidate(w: &mut json::Writer, c: &Candidate) {
    w.field_str("origin", &c.origin);
    w.field_obj("params", |w| {
        for (spec, &v) in c.params.space().iter().zip(c.params.values()) {
            w.field_f64(spec.name, v);
        }
    });
    c.outcome.write_fields(w);
}

/// Canonical JSON rendering of the campaign — the `CAMPAIGN_<label>.json`
/// document and the golden-snapshot input. Contains only deterministic
/// fields: cache hit counts and wall times never appear (they depend on
/// what a server happened to have cached).
pub fn to_canonical_json(report: &CampaignReport) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_str("campaign_seed", &report.campaign_seed.to_string());
        w.field_str("eval_seed", &report.eval_seed.to_string());
        w.field_bool("quick", report.quick);
        w.field_u64("total_cells", report.total_cells as u64);
        w.field_arr("attacks", |w| {
            for a in &report.attacks {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("attack", &a.attack);
                        w.field_u64("cells", a.cells as u64);
                        w.field_bool("refined_dominates", a.refined_dominates);
                        w.field_obj("best_grid", |w| write_candidate(w, &a.best_grid));
                        if let Some(r) = &a.best_refined {
                            w.field_obj("best_refined", |w| write_candidate(w, r));
                        }
                        w.field_arr("frontier", |w| {
                            for c in &a.frontier {
                                w.elem(|w| w.obj(|w| write_candidate(w, c)));
                            }
                        });
                    })
                });
            }
        });
    });
    w.finish()
}

/// Renders the campaign as an aligned text table (one row per attack).
pub fn render(report: &CampaignReport) -> platoon_core::tables::TextTable {
    use platoon_core::tables::{num, TextTable};
    let mut t = TextTable::new(
        "Adversarial campaign — tuned stealth vs damage per attack (default detector)",
        &[
            "Attack",
            "Cells",
            "Frontier",
            "Grid det/dmg",
            "Refined det/dmg",
            "Dominates?",
        ],
    );
    for a in &report.attacks {
        let g = &a.best_grid.outcome;
        let refined = a
            .best_refined
            .as_ref()
            .map(|r| {
                format!(
                    "{}/{}",
                    num(r.outcome.detection_score(), 1),
                    num(r.outcome.damage(), 2)
                )
            })
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            a.attack.clone(),
            a.cells.to_string(),
            a.frontier.len().to_string(),
            format!("{}/{}", num(g.detection_score(), 1), num(g.damage(), 2)),
            refined,
            if a.refined_dominates { "yes" } else { "no" }.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::harness::golden::{self, Tolerance};
    use std::path::{Path, PathBuf};

    fn golden_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/campaign_quick.json")
    }

    #[test]
    fn grid_respects_cap_and_includes_defaults() {
        for attack in searchable_attacks() {
            let grid = grid_candidates(attack, 3, 10);
            assert!(grid.len() <= 11, "{attack}: {} cells", grid.len());
            assert_eq!(grid[0], AttackParams::defaults(attack).unwrap());
            let mut keys: Vec<String> = grid.iter().map(|p| p.canonical_json()).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), grid.len(), "{attack}: duplicate grid cells");
        }
    }

    #[test]
    fn quick_campaign_matches_golden_and_refinement_pays_off() {
        let config = CampaignConfig::new(true, EXPERIMENT_BASE_SEED);
        let mut evaluator = Evaluator::local(platoon_sim::harness::default_workers());
        let report = run_campaign(&config, &mut evaluator).expect("campaign runs");

        // A replay on the same evaluator must reproduce the document
        // byte-for-byte: the search resubmits exactly the same cells (all
        // now cache hits), and hit documents are canonical.
        let replay = run_campaign(&config, &mut evaluator).expect("replay runs");
        assert_eq!(
            to_canonical_json(&replay),
            to_canonical_json(&report),
            "same campaign seed must replay byte-identically"
        );

        for a in &report.attacks {
            assert!(!a.frontier.is_empty(), "{}: empty frontier", a.attack);
            assert!(a.cells >= 2, "{}: degenerate search", a.attack);
        }
        // The acceptance bar: refinement must beat the grid outright
        // somewhere — lower detection score AND higher damage.
        assert!(
            report.attacks.iter().any(|a| a.refined_dominates),
            "no refined candidate strictly dominates its grid best: {}",
            render(&report).render()
        );

        golden::assert_matches(
            &golden_path(),
            &to_canonical_json(&report),
            Tolerance::snapshot(),
        );
    }
}
