//! # platoon-campaign
//!
//! Adversarial campaign search: *what does the catalogued threat model
//! look like once the attacker tunes it against the defense?*
//!
//! The paper's Table II fixes each attack's parameters; a real adversary
//! does not. Following the resource-aware-stealth line of work (Eslami &
//! Pirani) and closed-loop attack synthesis (CAD, Koley et al.), this
//! crate searches every attack's typed parameter space
//! ([`AttackParams`](platoon_attacks::params::AttackParams)) for
//! configurations that **minimise detection** by the Table IV pipeline
//! while **maximising platoon damage** — producing, per attack, a
//! stealth-vs-impact Pareto frontier instead of a single data point.
//!
//! The driver ([`search`]) runs a coarse grid pass and then an
//! evolutionary refinement loop (tournament selection + Gaussian
//! mutation). Every random draw derives from the campaign seed, so a
//! campaign replays **byte-identically**: same seed, same candidates, same
//! `CAMPAIGN_<label>.json`, pinned by golden and a CI byte-compare.
//!
//! Candidate evaluation is one
//! [`JobSpec::Campaign`](platoon_server::job::JobSpec::Campaign) cell,
//! executed either on an in-process service or — with
//! `--server` — on a remote one, where the content-addressed result cache
//! dedupes repeated cells across generations, replays, and campaigns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod search;
