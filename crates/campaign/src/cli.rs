//! The `campaign` subcommand (root binary and the bench report binary).

use crate::search::{self, CampaignConfig, Evaluator};
use platoon_core::experiments::common::EXPERIMENT_BASE_SEED;
use platoon_sim::harness::golden;
use std::path::{Path, PathBuf};

/// Writes `CAMPAIGN_<label>.json` into `out_dir`.
fn write_report_file(document: &str, label: &str, out_dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("CAMPAIGN_{label}.json"));
    std::fs::write(&path, document)?;
    Ok(path)
}

/// Entry point for the `campaign` subcommand. Returns the process exit
/// code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut quick = false;
    let mut seed = EXPERIMENT_BASE_SEED;
    let mut workers = platoon_sim::harness::default_workers();
    let mut out_dir = PathBuf::from(".");
    let mut check_golden: Option<PathBuf> = None;
    let mut server: Option<String> = None;
    let mut attacks: Option<Vec<String>> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--quick" => quick = true,
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--workers" => {
                    workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--check-golden" => check_golden = Some(PathBuf::from(value("--check-golden")?)),
                "--server" => server = Some(value("--server")?),
                "--attacks" => {
                    attacks = Some(
                        value("--attacks")?
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: campaign [--quick] [--seed N] [--workers N] [--out DIR]\n\
                         \x20               [--check-golden PATH] [--server ADDR] [--attacks a,b]\n\
                         \x20 --quick          small search over three attacks (the CI smoke grid)\n\
                         \x20 --seed N         campaign seed (default: {EXPERIMENT_BASE_SEED}); same seed,\n\
                         \x20                  byte-identical CAMPAIGN_<label>.json\n\
                         \x20 --workers N      in-process worker threads (default: available parallelism)\n\
                         \x20 --out DIR        where CAMPAIGN_<label>.json is written (default: .)\n\
                         \x20 --check-golden P snapshot-match the document against P\n\
                         \x20 --server ADDR    evaluate cells on a running platoon-server (its\n\
                         \x20                  content-addressed cache dedupes repeated cells)\n\
                         \x20 --attacks LIST   comma-separated attack names to search instead of\n\
                         \x20                  the effort default"
                    );
                    return Err(String::new()); // handled: exit 0 below
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    let mut config = CampaignConfig::new(quick, seed);
    if let Some(list) = attacks {
        for a in &list {
            if platoon_attacks::params::param_space(a).is_none() {
                eprintln!("error: no parameter space for attack {a:?}");
                return 2;
            }
        }
        config.attacks = list;
    }

    let label = if quick { "quick" } else { "full" };
    let mut evaluator = match &server {
        Some(addr) => match Evaluator::connect(addr) {
            Ok(e) => {
                eprintln!("evaluating on platoon-server at {addr}");
                e
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        },
        None => Evaluator::local(workers),
    };
    eprintln!(
        "running {label} campaign (seed {seed}, {} attack(s))...",
        config.attacks.len()
    );
    let report = match search::run_campaign(&config, &mut evaluator) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!("{}", search::render(&report).render());
    eprintln!("{} unique cells evaluated", report.total_cells);

    let document = search::to_canonical_json(&report);
    match write_report_file(&document, label, &out_dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: writing report: {e}");
            return 1;
        }
    }

    if let Some(path) = check_golden {
        match golden::check(&path, &document, golden::Tolerance::snapshot()) {
            Ok(golden::Outcome::Match) => eprintln!("document matches {}", path.display()),
            Ok(golden::Outcome::Updated) => eprintln!("golden written: {}", path.display()),
            Err(diff) => {
                eprintln!("campaign drift:\n{diff}");
                return 1;
            }
        }
    }
    0
}
