//! The benign-fault hook trait.
//!
//! Attacks model adversaries; **faults** model the environment misbehaving on
//! its own — rain fade, a flaky radar, an RSU power cut. The paper's open
//! challenges (§VI-B) call for evaluating platoon security under exactly these
//! degraded-but-honest conditions, because a detector that cannot tell a
//! benign fault from an attack is operationally useless.
//!
//! A [`Fault`] is a deterministic world mutator: the engine calls
//! [`Fault::apply`] at the start of every communication step (before any
//! [`Attack`](crate::attack::Attack) hook) and [`Fault::restore`] once when
//! the run finishes, so scoped faults can guarantee they leave the world as
//! they found it even when a run ends mid-window.
//!
//! Concrete faults (burst packet loss, noise-floor ramps, sensor outages,
//! clock skew, RSU blackouts) and the seed-derived `FaultSchedule` live in
//! the `platoon-faults` crate; the trait lives here so the engine can host
//! them without a dependency cycle.

use crate::world::World;
use std::any::Any;
use std::fmt::Debug;

/// A pluggable benign fault.
///
/// Faults receive **no RNG**: all nondeterminism must be baked into the
/// fault's own state when it is constructed (e.g. from a seed-derived
/// schedule), so a run with faults stays bit-reproducible for a seed and
/// worker-count invariant in batch grids.
pub trait Fault: Debug {
    /// Short stable identifier, used in labels and reports.
    fn name(&self) -> &'static str;

    /// Mutates the world at the start of the step beginning at time `now`.
    ///
    /// Called before any attack's `before_comm`, every communication step.
    /// Implementations that toggle state on window boundaries should save
    /// whatever they overwrite and put it back when the window closes.
    fn apply(&mut self, world: &mut World, now: f64);

    /// Undoes any still-active mutation.
    ///
    /// Called by [`Engine::run`](crate::engine::Engine::run) after the step
    /// loop (and available to manual steppers via
    /// [`Engine::restore_faults`](crate::engine::Engine::restore_faults)).
    /// Must be idempotent: the default does nothing.
    fn restore(&mut self, world: &mut World) {
        let _ = world;
    }

    /// Downcasting support for inspecting fault state after a run.
    fn as_any(&self) -> &dyn Any;

    /// Clones the fault (including accumulated delta/saved state) into a
    /// fresh box, for engine snapshots. `None` means the fault does not
    /// support snapshotting; engines carrying it cannot be checkpointed.
    fn clone_box(&self) -> Option<Box<dyn Fault>> {
        None
    }
}

/// The no-op fault (a placeholder analogous to
/// [`NoAttack`](crate::attack::NoAttack)).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFault;

impl Fault for NoFault {
    fn name(&self) -> &'static str {
        "none"
    }

    fn apply(&mut self, _world: &mut World, _now: f64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Fault>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::{Engine, Scenario};

    /// A fault that raises the noise floor for the whole run and restores it
    /// at the end — the minimal scoped-mutation shape concrete faults follow.
    #[derive(Debug)]
    struct NoisyRun {
        saved: Option<f64>,
        applications: usize,
    }

    impl Fault for NoisyRun {
        fn name(&self) -> &'static str {
            "noisy-run"
        }
        fn apply(&mut self, world: &mut World, _now: f64) {
            self.applications += 1;
            if self.saved.is_none() {
                self.saved = Some(world.medium.dsrc.noise_floor_dbm);
                world.medium.dsrc.noise_floor_dbm += 20.0;
            }
        }
        fn restore(&mut self, world: &mut World) {
            if let Some(saved) = self.saved.take() {
                world.medium.dsrc.noise_floor_dbm = saved;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn quick(label: &str) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(4)
            .duration(10.0)
            .seed(9)
            .build()
    }

    #[test]
    fn faults_run_every_step_and_are_restored_after_run() {
        let mut engine = Engine::new(quick("fault-hook"));
        let clean_floor = engine.world().medium.dsrc.noise_floor_dbm;
        engine.add_fault(Box::new(NoisyRun {
            saved: None,
            applications: 0,
        }));
        engine.run();
        let fault = engine.faults()[0]
            .as_any()
            .downcast_ref::<NoisyRun>()
            .expect("first fault is ours");
        assert_eq!(fault.applications as u64, engine.steps_run());
        assert!(fault.saved.is_none(), "restore ran");
        assert_eq!(
            engine.world().medium.dsrc.noise_floor_dbm,
            clean_floor,
            "the run must hand the world back unmodified"
        );
    }

    #[test]
    fn faults_degrade_the_channel_before_attacks_see_it() {
        let clean = Engine::new(quick("fault-clean")).run();
        let mut engine = Engine::new(quick("fault-clean"));
        engine.add_fault(Box::new(NoisyRun {
            saved: None,
            applications: 0,
        }));
        let faulty = engine.run();
        assert!(
            faulty.leader_tail_pdr < clean.leader_tail_pdr,
            "+20 dB noise floor must cost deliveries: {} !< {}",
            faulty.leader_tail_pdr,
            clean.leader_tail_pdr
        );
    }

    #[test]
    fn restore_faults_is_idempotent_and_manual_steppers_can_call_it() {
        let mut engine = Engine::new(quick("fault-manual"));
        let clean_floor = engine.world().medium.dsrc.noise_floor_dbm;
        engine.add_fault(Box::new(NoisyRun {
            saved: None,
            applications: 0,
        }));
        engine.step();
        assert!(engine.world().medium.dsrc.noise_floor_dbm > clean_floor);
        engine.restore_faults();
        engine.restore_faults();
        assert_eq!(engine.world().medium.dsrc.noise_floor_dbm, clean_floor);
    }

    #[test]
    fn no_fault_is_a_no_op() {
        let mut engine = Engine::new(quick("fault-noop"));
        engine.add_fault(Box::new(NoFault));
        let with = engine.run();
        let without = Engine::new(quick("fault-noop")).run();
        assert_eq!(with, without);
    }
}
