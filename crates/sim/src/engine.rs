//! The simulation engine: the sense → communicate → control → integrate loop
//! with attack and defense hook points.
//!
//! One **communication step** (default 100 ms, the CAM beacon interval) runs:
//!
//! 1. `Attack::before_comm` — adversaries mutate the world (jammers, sensor
//!    faults, infections).
//! 2. Honest nodes emit beacons and queued manoeuvre messages, sealed
//!    according to the scenario's [`AuthMode`]; `Attack::on_air` records and
//!    injects frames; the [`RadioMedium`](platoon_v2x::medium::RadioMedium)
//!    decides deliveries.
//! 3. Deliveries are verified (engine-level authentication per the deployed
//!    key scheme, then every [`Defense::filter_rx`]), then applied: beacons
//!    update controller inputs, manoeuvre messages drive the leader's
//!    [`ManeuverEngine`] and member-side split/gap handling.
//! 4. Controllers compute commands; `Defense::adjust_commands` may mitigate.
//! 5. Vehicle dynamics integrate in fine substeps; safety/fuel/stability
//!    metrics accumulate.

use crate::attack::Attack;
use crate::defense::{Defense, RejectReason};
use crate::events::{Event, EventLog};
use crate::fault::Fault;
use crate::metrics::{score_alerts, DetectionSummary, MetricsCollector, RunSummary, TruthLabels};
use crate::par;
use crate::perf::PerfCounters;
use crate::regime::{steps_for, RegimeState};
use crate::scenario::{AuthMode, CommsMode, ControllerKind, Scenario};
use crate::trace::{TraceDetail, TracePhase, TraceRecord, Tracer};
use crate::world::{AuthMaterial, CommState, HeardPeer, PlatoonLayout, Rsu, VehicleNode, World};
use platoon_crypto::cert::{CertificateAuthority, PrincipalId};
use platoon_crypto::keys::{KeyPair, SymmetricKey};
use platoon_crypto::signature::Signer;
use platoon_detect::fusion::{Alert, AlertTarget};
use platoon_detect::observation::{
    AuthMeta, BeaconClaim, BeaconObservation, ControlKind, ControlObservation, MessageObservation,
    ObserverContext, SensorObservation, TickContext,
};
use platoon_detect::pipeline::{Pipeline, PipelineConfig};
use platoon_dynamics::acc::AccController;
use platoon_dynamics::cacc::CaccController;
use platoon_dynamics::consensus::ConsensusController;
use platoon_dynamics::controller::{
    CommPeer, ControlContext, LongitudinalController, RadarReading,
};
use platoon_dynamics::fuel::PlatoonPosition;
use platoon_dynamics::ploeg::PloegController;
use platoon_dynamics::sensors::SensorSuite;
use platoon_dynamics::vehicle::Vehicle;
use platoon_proto::envelope::Envelope;
use platoon_proto::maneuver::{JoinOutcome, ManeuverEngine};
use platoon_proto::membership::Roster;
use platoon_proto::messages::{Beacon, PlatoonId, PlatoonMessage, Role};
use platoon_v2x::medium::Receiver;
use platoon_v2x::message::{ChannelKind, Delivery, Frame, NodeId, Payload, Position};
use platoon_v2x::spatial::SpatialGrid;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Salt for deriving the trusted authority's key pair from the scenario seed.
const CA_SEED_SALT: u64 = 0xCA00_0000_0000_0001;

/// How close (metres) a joiner's claimed position must be to its reserved
/// slot for the leader to consider the merge physically complete.
const JOIN_ARRIVAL_TOLERANCE: f64 = 30.0;

/// Reusable per-step scratch buffers.
///
/// The engine's hot loop builds the same transient collections every
/// communication step (outgoing frames, the receiver roster, detector
/// observation batches, dedup sets, the command vector). Allocating them
/// once and clearing them per tick keeps the steady-state step free of
/// heap churn; each buffer is `mem::take`n for the duration of the phase
/// that fills it, so the split borrows stay trivial.
#[derive(Debug, Default)]
struct StepScratch {
    /// Outgoing frames handed to the medium.
    frames: Vec<Frame>,
    /// Nodes able to receive this step.
    receivers: Vec<Receiver>,
    /// This step's accepted message observations, in arrival order, for
    /// one batched detector ingest per delivery round.
    observations: Vec<MessageObservation>,
    /// VLC relay staging: (vehicle index, relayed wire bytes).
    relays: Vec<(usize, Payload)>,
    /// Silence-monitoring member roster.
    members: Vec<PrincipalId>,
    /// Operational observer indices.
    observers: Vec<usize>,
    /// Controller commands.
    commands: Vec<f64>,
    /// PDR dedup: (sender, receiver) pairs already counted this step.
    seen_pairs: HashSet<(NodeId, NodeId)>,
    /// Protocol dedup: (receiver, payload hash) already applied this step.
    seen_payloads: HashSet<(usize, u64)>,
    /// Parallel sealing staging: (vehicle index, message, sealed nonce).
    seal_jobs: Vec<(usize, PlatoonMessage, u64)>,
}

/// Outcome of the rng-free decode + authenticate pre-pass over one
/// delivery, computed in parallel when the engine runs multi-threaded.
/// Consumed in delivery order by the sequential protocol loop.
#[derive(Debug, Default)]
enum PreVerdict {
    /// Receiver is not a vehicle: the delivery is skipped entirely.
    #[default]
    Skip,
    /// The payload failed to decode as an envelope.
    Undecodable,
    /// Decoded; carries the engine-level authentication verdict.
    Verified(Envelope, Result<PlatoonMessage, RejectReason>),
}

/// A passive tap on the accepted-message observation stream.
///
/// Attached via [`Engine::attach_observation_sink`], the sink receives
/// every delivery round's accepted observations — the exact batches a
/// detection pipeline would ingest, in arrival order — without influencing
/// the run in any way. The dataset exporter uses this to render labeled
/// per-beacon feature rows; attaching a sink never perturbs the rng
/// stream, so a tapped run is byte-identical to an untapped one.
pub trait ObservationSink: std::fmt::Debug {
    /// Receives one delivery round's accepted observations, arrival order.
    fn on_messages(&mut self, batch: &[MessageObservation]);
    /// Downcast support for extracting recorded data after a run.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Why an engine could not be snapshotted (or a snapshot could not be
/// verified): some attached component does not support deep cloning, or a
/// `clone_box` implementation lost state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError {
    component: String,
}

impl SnapshotError {
    fn new(component: impl Into<String>) -> Self {
        SnapshotError {
            component: component.into(),
        }
    }

    /// The component that refused to snapshot, e.g. ``attack `replay` ``.
    pub fn component(&self) -> &str {
        &self.component
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine cannot be snapshotted: {}", self.component)
    }
}

impl std::error::Error for SnapshotError {}

/// A frozen, verified copy of a running engine.
///
/// Produced by [`Engine::snapshot`]; [`restore`](Self::restore) hands back
/// a fresh engine that continues byte-identically to the original — same
/// rng stream, same trace digest, same [`RunSummary`] — at any worker
/// thread count. The snapshot stores a canonical [`digest`](Self::digest)
/// of the captured state and re-verifies it on every restore, so silent
/// divergence (a component whose clone loses state) fails loudly instead
/// of producing subtly different results.
#[derive(Debug)]
pub struct EngineSnapshot {
    engine: Engine,
    digest: u64,
}

impl EngineSnapshot {
    /// Canonical digest of the captured state (see
    /// [`Engine::state_digest`]).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The communication step the snapshot was taken at.
    pub fn tick(&self) -> u64 {
        self.engine.steps_run
    }

    /// Rehydrates a runnable engine from the snapshot. The snapshot stays
    /// valid — restore as many times as needed (each restore re-clones).
    ///
    /// # Errors
    ///
    /// Fails if the re-clone is refused or the rehydrated engine's digest
    /// no longer matches the one captured at snapshot time.
    pub fn restore(&self) -> Result<Engine, SnapshotError> {
        let engine = self.engine.try_clone()?;
        let digest = engine.state_digest();
        if digest != self.digest {
            return Err(SnapshotError::new(format!(
                "restored digest {digest:016x} != snapshot digest {:016x}",
                self.digest
            )));
        }
        Ok(engine)
    }
}

/// The simulation engine.
#[derive(Debug)]
pub struct Engine {
    scenario: Scenario,
    world: World,
    ca: CertificateAuthority,
    group_key: SymmetricKey,
    maneuvers: ManeuverEngine,
    attacks: Vec<Box<dyn Attack>>,
    defenses: Vec<Box<dyn Defense>>,
    faults: Vec<Box<dyn Fault>>,
    metrics: MetricsCollector,
    events: EventLog,
    rng: StdRng,
    /// Manoeuvre responses queued by the leader for the next step.
    outbox: Vec<(usize, PlatoonMessage)>,
    /// Latest claimed position per principal (from any accepted beacon).
    claimed_positions: HashMap<PrincipalId, (f64, f64)>,
    /// Count of messages rejected by verification or defenses.
    rejected_messages: usize,
    /// Count of detections raised by defenses.
    detections: usize,
    /// Optional streaming misbehavior-detection pipeline (`platoon-detect`).
    pipeline: Option<Pipeline>,
    /// Optional passive tap on the accepted-observation stream (dataset
    /// export); sees exactly the batches the pipeline would ingest.
    obs_sink: Option<Box<dyn ObservationSink>>,
    /// Ground-truth attack labels for scoring the alert stream.
    truth: Option<TruthLabels>,
    /// Next platoon id to assign on splits.
    next_platoon_id: u32,
    steps_run: u64,
    /// Driving-regime bookkeeping (active phase, applied channel deltas).
    regime: RegimeState,
    /// Previous step's service state, for edge-triggered outage events.
    service_was_down: Vec<bool>,
    /// Reusable per-step buffers (see [`StepScratch`]).
    scratch: StepScratch,
    /// Deterministic work counters (see [`crate::perf`]).
    perf: PerfCounters,
    /// Optional per-tick trace sink (see [`crate::trace`]).
    tracer: Option<Box<dyn Tracer>>,
    /// Intra-run worker threads for the shardable step phases (see
    /// [`set_threads`](Self::set_threads)). Never affects results.
    threads: usize,
    /// Cumulative RF (frame, receiver) pairs the medium sampled — the
    /// deterministic work metric the spatial index reduces.
    medium_pairs: u64,
}

impl Engine {
    /// Builds the world for a scenario: one or more already-formed platoons
    /// cruising at the profile's initial speed with all gaps at their
    /// set-points. With `scenario.platoons > 1` (corridor worlds) each
    /// platoon gets its own id and leader; platoon 1 is the frontmost and
    /// owns the manoeuvre engine.
    pub fn new(scenario: Scenario) -> Self {
        let mut ca = CertificateAuthority::new(
            PrincipalId(1_000_000),
            KeyPair::from_seed(scenario.seed ^ CA_SEED_SALT),
        );
        let group_key = SymmetricKey::derive(&scenario.seed.to_be_bytes(), "platoon-group");
        let v0 = scenario.profile.initial_speed();
        let spacing = scenario.params.length + scenario.desired_gap;
        let per_platoon = scenario.vehicles;
        let platoons = scenario.platoons.max(1);
        let n = per_platoon * platoons;

        let mut vehicles = Vec::with_capacity(n);
        for g in 0..n {
            let (p, i) = (g / per_platoon, g % per_platoon);
            let principal = PrincipalId(g as u64);
            let keypair = KeyPair::from_seed(scenario.seed.wrapping_mul(31).wrapping_add(g as u64));
            let auth = match scenario.auth {
                AuthMode::None => AuthMaterial::None,
                AuthMode::GroupMac => AuthMaterial::GroupMac(group_key),
                AuthMode::EncryptedGroupMac => AuthMaterial::EncryptedGroupMac(group_key),
                AuthMode::Pki => AuthMaterial::Pki {
                    signer: Signer::new(keypair),
                    certificate: ca.issue(
                        principal,
                        keypair.public(),
                        0.0,
                        scenario.duration + 3600.0,
                    ),
                },
            };
            // Leaders at the front of their platoons (largest x), platoon 1
            // frontmost; later platoons trail by the inter-platoon spacing.
            let position = (n - 1 - g) as f64 * spacing
                + scenario.params.length
                + (platoons - 1 - p) as f64 * scenario.platoon_spacing;
            let controller: Box<dyn LongitudinalController> = if i == 0 {
                Box::new(platoon_dynamics::controller::CruiseController::new(v0))
            } else {
                match scenario.controller {
                    ControllerKind::Acc => Box::new(AccController::default()),
                    ControllerKind::Cacc => Box::new(CaccController::default()),
                    ControllerKind::Ploeg => Box::new(PloegController::default()),
                    ControllerKind::Consensus => Box::new(ConsensusController::default()),
                }
            };
            vehicles.push(VehicleNode {
                principal,
                node: NodeId(g as u64),
                vehicle: Vehicle::new(scenario.params, position, v0),
                sensors: SensorSuite::default(),
                controller,
                role: if i == 0 { Role::Leader } else { Role::Member },
                platoon: PlatoonId(p as u32 + 1),
                seq: 0,
                nonce: 0,
                comm: CommState::default(),
                auth,
                fuel: Default::default(),
                extra_front_gap: 0.0,
                extra_gap_until: 0.0,
                beacon_lie: None,
                infected: false,
                hardened: false,
                platooning_enabled: true,
                lane_offset: 0.0,
            });
        }

        let rsus = scenario
            .rsu_positions
            .iter()
            .enumerate()
            .map(|(i, &position)| Rsu {
                node: NodeId(10_000 + i as u64),
                position,
                compromised: false,
            })
            .collect();

        // The manoeuvre engine is platoon 1's: only its followers enter the
        // roster. Other platoons in a corridor run cruise independently.
        let mut roster = Roster::new(PlatoonId(1), PrincipalId(0), scenario.max_platoon_size);
        for v in vehicles.iter().take(per_platoon).skip(1) {
            roster
                .admit_tail(v.principal)
                .expect("initial platoon fits");
        }
        let maneuvers = ManeuverEngine::new(roster, scenario.maneuvers);
        let metrics = MetricsCollector::new(n, scenario.comm_step);
        let rng = StdRng::seed_from_u64(scenario.seed);
        let medium = scenario.medium;

        Engine {
            world: World::new(vehicles, rsus, medium, Vec::new()),
            ca,
            group_key,
            maneuvers,
            attacks: Vec::new(),
            defenses: Vec::new(),
            faults: Vec::new(),
            metrics,
            events: EventLog::default(),
            rng,
            outbox: Vec::new(),
            claimed_positions: HashMap::new(),
            rejected_messages: 0,
            detections: 0,
            pipeline: None,
            obs_sink: None,
            truth: None,
            next_platoon_id: platoons as u32 + 1,
            steps_run: 0,
            regime: RegimeState::default(),
            threads: 1,
            medium_pairs: 0,
            service_was_down: vec![false; n],
            scratch: StepScratch::default(),
            perf: PerfCounters::default(),
            tracer: None,
            scenario,
        }
    }

    /// Number of communication steps executed so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Sets the number of worker threads for the shardable per-vehicle step
    /// phases (frame sealing, delivery verification, dynamics substeps).
    ///
    /// Results are **byte-identical for every thread count**: work is
    /// sharded in contiguous index chunks and merged in vehicle order, and
    /// every rng-consuming phase stays sequential. `1` (the default) runs
    /// the plain sequential path with zero thread overhead.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Current intra-run worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cumulative RF (frame, receiver) pairs the medium sampled across the
    /// run — the deterministic work metric the spatial index reduces.
    pub fn medium_pairs_considered(&self) -> u64 {
        self.medium_pairs
    }

    /// Plugs in an adversary.
    pub fn add_attack(&mut self, attack: Box<dyn Attack>) {
        self.attacks.push(attack);
    }

    /// Plugs in a security mechanism.
    pub fn add_defense(&mut self, defense: Box<dyn Defense>) {
        self.defenses.push(defense);
    }

    /// Plugs in a benign fault (see [`crate::fault`]).
    pub fn add_fault(&mut self, fault: Box<dyn Fault>) {
        self.faults.push(fault);
    }

    /// The trusted authority (for provisioning defenses or attacker
    /// credentials in experiments).
    pub fn ca(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// Mutable authority access (revocation during a run).
    pub fn ca_mut(&mut self) -> &mut CertificateAuthority {
        &mut self.ca
    }

    /// The platoon group key (when `AuthMode::GroupMac` — but always derived,
    /// so experiments can hand it to insiders).
    pub fn group_key(&self) -> SymmetricKey {
        self.group_key
    }

    /// The world state.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access for test scaffolding and experiment setup.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The scenario this engine runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The leader's manoeuvre engine.
    pub fn maneuvers(&self) -> &ManeuverEngine {
        &self.maneuvers
    }

    /// Plugged-in attacks (for downcasting after a run).
    pub fn attacks(&self) -> &[Box<dyn Attack>] {
        &self.attacks
    }

    /// Plugged-in defenses (for downcasting after a run).
    pub fn defenses(&self) -> &[Box<dyn Defense>] {
        &self.defenses
    }

    /// Plugged-in faults (for downcasting after a run).
    pub fn faults(&self) -> &[Box<dyn Fault>] {
        &self.faults
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Attaches a streaming misbehavior-detection pipeline. The engine
    /// feeds it every observation vehicles already see — received beacons
    /// and manoeuvre messages (after channel delivery, with RSSI and
    /// credential metadata), on-board radar/LiDAR cross-check samples, and
    /// a per-step tick for silence monitoring. Alerts it raises are
    /// counted in `detections` and logged as events.
    pub fn attach_detectors(&mut self, pipeline: Pipeline) {
        self.pipeline = Some(pipeline);
    }

    /// Builds and attaches the stock detection bank from a config, first
    /// resolving scenario-dependent tuning: the frequency detector's
    /// nominal beacon rate becomes the scenario's configured rate
    /// (`1 / comm_step`), so its flood limit tracks what the platoon
    /// actually transmits instead of assuming 10 Hz. Prefer this over
    /// [`attach_detectors`](Self::attach_detectors) unless the pipeline
    /// was assembled by hand.
    pub fn attach_detector_config(&mut self, mut config: PipelineConfig) {
        if self.scenario.comm_step > 0.0 {
            config.frequency.nominal_rate_hz = 1.0 / self.scenario.comm_step;
        }
        self.pipeline = Some(Pipeline::new(config));
    }

    /// Attaches a passive [`ObservationSink`] fed the same accepted-message
    /// batches a detection pipeline would ingest. Works with or without a
    /// pipeline attached and never perturbs the run.
    pub fn attach_observation_sink(&mut self, sink: Box<dyn ObservationSink>) {
        self.obs_sink = Some(sink);
    }

    /// Detaches and returns the observation sink (to extract recorded data).
    pub fn take_observation_sink(&mut self) -> Option<Box<dyn ObservationSink>> {
        self.obs_sink.take()
    }

    /// The attached detection pipeline, if any.
    pub fn detector_pipeline(&self) -> Option<&Pipeline> {
        self.pipeline.as_ref()
    }

    /// Attaches a per-tick trace sink, alongside attacks, defenses and
    /// faults. Each step emits phase-scoped [`TraceRecord`]s stamped with
    /// the tick index and tick-derived simulation time only — never wall
    /// clock — so the recorded stream is identical across worker counts
    /// and machines. The tracer's digest is folded into the
    /// [`RunSummary`].
    pub fn attach_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any (for downcasting after a run).
    pub fn tracer(&self) -> Option<&dyn Tracer> {
        self.tracer.as_deref()
    }

    /// Detaches and returns the tracer (to extract the recorded trace).
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Emits one trace record into `tracer` if one is attached.
    ///
    /// A free-standing helper over the field (rather than `&mut self`) so
    /// phases that already hold disjoint field borrows — the fault/defense
    /// hook loops, delivery processing — can emit without fighting the
    /// borrow checker, mirroring how `events.push` is reached.
    fn trace_into(
        tracer: &mut Option<Box<dyn Tracer>>,
        tick: u64,
        time: f64,
        phase: TracePhase,
        detail: TraceDetail,
    ) {
        if let Some(t) = tracer.as_mut() {
            t.record(&TraceRecord {
                tick,
                time,
                phase,
                detail,
            });
        }
    }

    /// Labels the run with ground truth about the injected attack, so the
    /// alert stream can be scored by [`detection_summary`](Self::detection_summary).
    pub fn set_truth(&mut self, truth: TruthLabels) {
        self.truth = Some(truth);
    }

    /// The ground-truth labels, if set.
    pub fn truth(&self) -> Option<&TruthLabels> {
        self.truth.as_ref()
    }

    /// Every alert the detection pipeline has raised, in raise order
    /// (empty when no pipeline is attached).
    pub fn alerts(&self) -> &[Alert] {
        self.pipeline.as_ref().map(|p| p.alerts()).unwrap_or(&[])
    }

    /// Scores the alert stream against the run's ground-truth labels.
    /// `None` until [`set_truth`](Self::set_truth) has been called.
    pub fn detection_summary(&self) -> Option<DetectionSummary> {
        let truth = self.truth.as_ref()?;
        Some(score_alerts(self.alerts(), truth))
    }

    /// The metric collector.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }

    /// The deterministic work counters accumulated so far.
    pub fn perf(&self) -> &PerfCounters {
        &self.perf
    }

    /// Rotates the platoon group key, excluding the listed principals from
    /// the new epoch — the §VI-A.2 eviction mechanism: "updating the keys so
    /// that anomalous users can be screened out faster". Excluded members
    /// keep the old key; everything they send afterwards fails verification,
    /// and they can no longer read encrypted traffic.
    ///
    /// Only meaningful under the group-key auth modes; a no-op otherwise.
    pub fn rekey_excluding(&mut self, excluded: &[PrincipalId]) {
        if !matches!(
            self.scenario.auth,
            AuthMode::GroupMac | AuthMode::EncryptedGroupMac
        ) {
            return;
        }
        self.group_key = SymmetricKey::derive(self.group_key.as_bytes(), "platoon-group-rotation");
        for v in self.world.vehicles.iter_mut() {
            if excluded.contains(&v.principal) {
                continue; // stays on the dead epoch
            }
            v.auth = match self.scenario.auth {
                AuthMode::GroupMac => AuthMaterial::GroupMac(self.group_key),
                AuthMode::EncryptedGroupMac => AuthMaterial::EncryptedGroupMac(self.group_key),
                _ => unreachable!("guarded above"),
            };
        }
    }

    /// Queues a *legitimate* split command from the leader: the platoon
    /// divides at `at_index` (platoon-local) on the next step. Returns the
    /// id assigned to the new trailing platoon.
    ///
    /// # Errors
    ///
    /// Propagates [`platoon_proto::membership::RosterError`] if the index is
    /// invalid for the current roster.
    pub fn command_split(
        &mut self,
        at_index: usize,
    ) -> Result<PlatoonId, platoon_proto::membership::RosterError> {
        let new_platoon = PlatoonId(self.next_platoon_id);
        self.maneuvers.handle_split(at_index, new_platoon)?;
        self.next_platoon_id += 1;
        self.outbox.push((
            0,
            PlatoonMessage::SplitCommand {
                platoon: self.world.vehicles[0].platoon,
                at_index: at_index as u32,
                new_platoon,
                timestamp: self.world.time,
            },
        ));
        Ok(new_platoon)
    }

    /// Merges the platoon immediately trailing the lead platoon back into
    /// it: its vehicles revert to followers of the original leader and
    /// re-enter the roster (the §II-B reform manoeuvre after a split, and
    /// how "all savings are lost ... until the platoon can reform" ends).
    ///
    /// Returns the number of vehicles merged (0 if nothing trails).
    pub fn command_merge(&mut self) -> usize {
        let lead_platoon = self.world.vehicles[0].platoon;
        // Find the first trailing platoon id after the lead block.
        let Some(trailing) = self
            .world
            .vehicles
            .iter()
            .map(|v| v.platoon)
            .find(|p| *p != lead_platoon)
        else {
            return 0;
        };
        let mut merged = 0;
        for idx in 0..self.world.vehicles.len() {
            if self.world.vehicles[idx].platoon != trailing {
                continue;
            }
            let principal = self.world.vehicles[idx].principal;
            let v = &mut self.world.vehicles[idx];
            v.platoon = lead_platoon;
            if v.role == Role::Leader && idx != 0 {
                v.role = Role::Member;
                // Restore the scenario's follower controller.
                v.controller = match self.scenario.controller {
                    ControllerKind::Acc => Box::new(AccController::default()),
                    ControllerKind::Cacc => Box::new(CaccController::default()),
                    ControllerKind::Ploeg => Box::new(PloegController::default()),
                    ControllerKind::Consensus => Box::new(ConsensusController::default()),
                };
                v.comm = CommState::default();
            }
            if !self.maneuvers.roster().contains(principal) {
                let _ = self.maneuvers.roster_mut().admit_tail(principal);
            }
            merged += 1;
        }
        merged
    }

    /// Queues a *legitimate* gap-open command from the leader: the member at
    /// platoon-local `slot` opens `extra_gap` metres for an entering vehicle.
    pub fn command_gap_open(&mut self, slot: usize, extra_gap: f64) {
        self.outbox.push((
            0,
            PlatoonMessage::GapOpen {
                platoon: self.world.vehicles[0].platoon,
                slot: slot as u32,
                extra_gap,
                timestamp: self.world.time,
            },
        ));
    }

    /// Runs the scenario to completion and returns the summary.
    ///
    /// The tick count comes from [`steps_for`], which is exact on whole
    /// multiples of the step and truncates partial ticks — the previous
    /// `round()` derivation simulated a full extra tick whenever the
    /// duration landed on a half-step. The loop resumes from
    /// [`steps_run`](Self::steps_run) rather than always stepping the full
    /// count, so a restored snapshot continues to the scheduled end instead
    /// of overshooting it.
    pub fn run(&mut self) -> RunSummary {
        let total = steps_for(self.scenario.duration, self.scenario.comm_step);
        while self.steps_run < total {
            self.step();
        }
        self.restore_faults();
        self.summary()
    }

    /// Restores every plugged-in fault's saved state.
    ///
    /// [`run`](Self::run) calls this after the step loop so scoped faults
    /// hand the world back unmodified even when a run ends mid-window;
    /// manual steppers driving [`step`](Self::step) directly should call it
    /// themselves once done. Idempotent.
    pub fn restore_faults(&mut self) {
        for fault in self.faults.iter_mut() {
            fault.restore(&mut self.world);
        }
        // The regime layer tracks its channel deltas the same way faults
        // do; hand the medium back at its scenario baseline too.
        self.world.medium.dsrc.noise_floor_dbm -= self.regime.applied_noise_db;
        self.regime.applied_noise_db = 0.0;
        self.world.medium.vlc.ambient_outage_prob -= self.regime.applied_vlc_outage;
        self.regime.applied_vlc_outage = 0.0;
    }

    /// Applies the scenario's regime plan for the tick about to run:
    /// announces phase transitions (trace + detector pipeline), retargets
    /// the channel noise environment delta-style, and decides whether
    /// members beacon this tick. Runs *before* Phase 0 so faults and
    /// attacks act on the already-retargeted environment.
    fn apply_regime(&mut self, tick: u64, now: f64) {
        let Some(plan) = &self.scenario.regimes else {
            self.regime.beacon_this_tick = true;
            return;
        };
        let (idx, start_tick) = plan.phase_at(tick, self.scenario.comm_step);
        let phase = &plan.phases[idx];
        let beacon_every = phase.beacon_every;
        let noise_db = phase.noise_extra_db;
        if self.regime.phase != Some(idx) {
            let label = phase.label.clone();
            self.regime.phase = Some(idx);
            self.regime.phase_start_tick = start_tick;
            Self::trace_into(
                &mut self.tracer,
                tick,
                now,
                TracePhase::Regime,
                TraceDetail::RegimeEnter {
                    label: label.clone(),
                },
            );
            if let Some(pipeline) = self.pipeline.as_mut() {
                pipeline.on_regime(&label);
            }
        }
        // Delta application, exactly like `NoiseFloorRamp`: add the change
        // relative to what this layer already applied, so regime noise and
        // fault-injected noise compose without clobbering each other.
        self.world.medium.dsrc.noise_floor_dbm += noise_db - self.regime.applied_noise_db;
        self.regime.applied_noise_db = noise_db;
        // The optical channel has no RF noise floor; weather/tunnel dB map
        // onto ambient-outage probability so every active medium degrades.
        let vlc_outage = noise_db * platoon_v2x::vlc::VLC_OUTAGE_PER_DB;
        self.world.medium.vlc.ambient_outage_prob += vlc_outage - self.regime.applied_vlc_outage;
        self.regime.applied_vlc_outage = vlc_outage;
        self.regime.beacon_this_tick = (tick - start_tick).is_multiple_of(beacon_every);
    }

    /// Captures the full run state — world, rng, metrics, detector
    /// pipeline, tracer, fault/attack/defense internals — as a verified
    /// [`EngineSnapshot`].
    ///
    /// # Errors
    ///
    /// Fails when any attached component does not support deep cloning
    /// (its `clone_box` returns `None`), when an observation sink is
    /// attached (the sink is a side channel the snapshot cannot carry —
    /// re-attach it to the restored engine instead), or when the captured
    /// copy's digest disagrees with the live engine's (a `clone_box`
    /// implementation lost state).
    pub fn snapshot(&self) -> Result<EngineSnapshot, SnapshotError> {
        let digest = self.state_digest();
        let engine = self.try_clone()?;
        let cloned = engine.state_digest();
        if cloned != digest {
            return Err(SnapshotError::new(format!(
                "captured digest {cloned:016x} != live digest {digest:016x}"
            )));
        }
        Ok(EngineSnapshot { engine, digest })
    }

    /// Deep-clones the engine, component by component. Trait objects go
    /// through their `clone_box` hooks; the first component that refuses
    /// names itself in the error. Scratch buffers are *not* copied — they
    /// are cleared before every use, so a fresh default is equivalent.
    pub fn try_clone(&self) -> Result<Engine, SnapshotError> {
        if self.obs_sink.is_some() {
            // The sink taps the observation stream without being part of
            // the simulation state; a clone could not carry it and the
            // tapped rows would silently stop. Refuse instead.
            return Err(SnapshotError::new(
                "observation sink (re-attach it to the restored engine)",
            ));
        }
        let world = self.world.try_clone().map_err(SnapshotError::new)?;
        let mut attacks: Vec<Box<dyn Attack>> = Vec::with_capacity(self.attacks.len());
        for attack in &self.attacks {
            attacks.push(
                attack
                    .clone_box()
                    .ok_or_else(|| SnapshotError::new(format!("attack `{}`", attack.name())))?,
            );
        }
        let mut defenses: Vec<Box<dyn Defense>> = Vec::with_capacity(self.defenses.len());
        for defense in &self.defenses {
            defenses.push(
                defense
                    .clone_box()
                    .ok_or_else(|| SnapshotError::new(format!("defense `{}`", defense.name())))?,
            );
        }
        let mut faults: Vec<Box<dyn Fault>> = Vec::with_capacity(self.faults.len());
        for fault in &self.faults {
            faults.push(
                fault
                    .clone_box()
                    .ok_or_else(|| SnapshotError::new(format!("fault `{}`", fault.name())))?,
            );
        }
        let pipeline = match &self.pipeline {
            Some(p) => Some(
                p.try_clone()
                    .ok_or_else(|| SnapshotError::new("detector pipeline"))?,
            ),
            None => None,
        };
        let tracer = match &self.tracer {
            Some(t) => Some(t.clone_box().ok_or_else(|| SnapshotError::new("tracer"))?),
            None => None,
        };
        Ok(Engine {
            scenario: self.scenario.clone(),
            world,
            ca: self.ca.clone(),
            group_key: self.group_key,
            maneuvers: self.maneuvers.clone(),
            attacks,
            defenses,
            faults,
            metrics: self.metrics.clone(),
            events: self.events.clone(),
            rng: self.rng.clone(),
            outbox: self.outbox.clone(),
            claimed_positions: self.claimed_positions.clone(),
            rejected_messages: self.rejected_messages,
            detections: self.detections,
            pipeline,
            obs_sink: None,
            truth: self.truth.clone(),
            next_platoon_id: self.next_platoon_id,
            steps_run: self.steps_run,
            regime: self.regime.clone(),
            service_was_down: self.service_was_down.clone(),
            scratch: StepScratch::default(),
            perf: self.perf,
            tracer,
            threads: self.threads,
            medium_pairs: self.medium_pairs,
        })
    }

    /// A canonical FNV-1a digest over the engine's run-visible state:
    /// tick/time, the rng stream position (probed by cloning — the live
    /// stream is untouched), per-vehicle kinematics and protocol counters,
    /// the channel environment, the perf counters, the verdict tallies and
    /// the trace digest. Two engines with equal digests continue
    /// byte-identically; the snapshot machinery uses it to verify restores.
    pub fn state_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut words: Vec<u64> = Vec::with_capacity(24 + self.world.vehicles.len() * 7);
        words.push(self.steps_run);
        words.push(self.world.time.to_bits());
        // Probe the rng position by drawing from a clone: StdRng draws are
        // a pure function of internal state, so four words pin the stream
        // without perturbing it.
        let mut probe = self.rng.clone();
        for _ in 0..4 {
            words.push(probe.next_u64());
        }
        for v in &self.world.vehicles {
            words.push(v.vehicle.state.position.to_bits());
            words.push(v.vehicle.state.speed.to_bits());
            words.push(v.vehicle.state.accel.to_bits());
            words.push(v.seq);
            words.push(v.nonce);
            words.push(u64::from(v.platoon.0));
            words.push(u64::from(v.platooning_enabled));
        }
        words.push(self.world.medium.dsrc.noise_floor_dbm.to_bits());
        words.push(self.world.medium.vlc.ambient_outage_prob.to_bits());
        let p = &self.perf;
        words.extend([
            p.ticks,
            p.frames_built,
            p.bytes_encoded,
            p.frame_bytes,
            p.payload_clones_avoided,
            p.deliveries,
            p.detector_observations,
            p.commands_computed,
        ]);
        words.push(self.rejected_messages as u64);
        words.push(self.detections as u64);
        words.push(self.medium_pairs);
        if let Some(tracer) = &self.tracer {
            let d = tracer.digest();
            words.extend([d.records, d.dropped, d.hash]);
        }
        let mut hash = FNV_OFFSET;
        for word in words {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash
    }

    /// Advances the engine by `ticks` communication steps.
    ///
    /// This is checkpoint *catch-up*, not simulation skipping: every tick
    /// draws from the rng stream and feeds detector hysteresis, so a
    /// restored engine must replay the exact per-tick computation to stay
    /// byte-identical to an uninterrupted run — which this does, in a
    /// tight loop. Combined with [`snapshot`](Self::snapshot)/
    /// [`EngineSnapshot::restore`] it gives interrupt-and-resume semantics:
    /// the resumed run's [`RunSummary`], trace digest and
    /// [`PerfCounters`] match the straight-through run byte for byte at
    /// any worker thread count.
    pub fn fast_forward(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Advances one communication step.
    pub fn step(&mut self) {
        let now = self.world.time;
        let tick = self.steps_run;

        // Pre-phase: driving-regime retargeting (noise environment, beacon
        // cadence, phase-transition announcements).
        self.apply_regime(tick, now);

        // Phase 0: benign environment degradation (faults precede
        // adversaries, so attacks act on the already-degraded world).
        for fault in self.faults.iter_mut() {
            fault.apply(&mut self.world, now);
            Self::trace_into(
                &mut self.tracer,
                tick,
                now,
                TracePhase::Fault,
                TraceDetail::FaultApplied {
                    fault: fault.name(),
                },
            );
        }

        // Phase 1: adversary world mutation.
        for attack in self.attacks.iter_mut() {
            attack.before_comm(&mut self.world, &mut self.rng);
        }

        // Phase 2: honest transmissions. The frame buffer is reused across
        // steps (capacity survives the clear).
        let mut frames = std::mem::take(&mut self.scratch.frames);
        frames.clear();
        self.build_outgoing_frames(now, &mut frames);
        if self.regime.beacon_this_tick {
            for v in self.world.vehicles.iter() {
                if v.platooning_enabled {
                    self.metrics.links.record_offer(v.node);
                }
            }
        }
        let honest_frames = frames.len() as u64;
        for attack in self.attacks.iter_mut() {
            attack.on_air(&mut self.world, &mut self.rng, &mut frames);
        }
        if !self.attacks.is_empty() {
            Self::trace_into(
                &mut self.tracer,
                tick,
                now,
                TracePhase::Attack,
                TraceDetail::AttackFrames {
                    honest: honest_frames,
                    total: frames.len() as u64,
                },
            );
        }

        let mut receivers = std::mem::take(&mut self.scratch.receivers);
        receivers.clear();
        receivers.extend(
            self.world
                .vehicles
                .iter()
                .filter(|v| v.platooning_enabled)
                .map(|v| Receiver {
                    id: v.node,
                    position: v.position(),
                }),
        );
        receivers.extend(self.world.rsus.iter().map(|r| Receiver {
            id: r.node,
            position: r.position,
        }));
        for attack in self.attacks.iter() {
            if let Some(rx) = attack.receiver(&self.world) {
                // Deduplicate delivery targets: a duplicate id (two attacks
                // sharing an attacker node, or an eavesdropper colliding
                // with a vehicle/RSU id) would make the medium decode every
                // frame once per roster entry, double-counting the
                // eavesdropper's capture and the detector ingest.
                if receivers.iter().all(|r| r.id != rx.id) {
                    receivers.push(rx);
                }
            }
        }

        let (deliveries, step_stats) =
            self.world
                .medium
                .step(now, &frames, &receivers, &self.world.jammers, &mut self.rng);
        self.medium_pairs += step_stats.pairs_considered as u64;
        // Per-tick max delivery latency: canonical NaN when nothing landed
        // (the same convention as `per_frame_ratio` / `LinkStats::max_latency`).
        let tick_max_latency = deliveries
            .iter()
            .map(|d| d.latency)
            .fold(f64::NAN, f64::max);
        Self::trace_into(
            &mut self.tracer,
            tick,
            now,
            TracePhase::Medium,
            TraceDetail::MediumStep {
                offered: step_stats.offered as u64,
                delivered: step_stats.delivered as u64,
                lost: step_stats.lost as u64,
                max_latency: tick_max_latency,
            },
        );

        for attack in self.attacks.iter_mut() {
            attack.observe(&mut self.world, &mut self.rng, &deliveries);
        }

        // Return the buffers (keeping their capacity) before phase 3.
        self.scratch.frames = frames;
        self.scratch.receivers = receivers;

        // Phase 3: reception and protocol processing.
        self.process_deliveries(&deliveries, now);

        // Expire pending joins (ghosts) and mirror held gaps onto vehicles.
        for requester in self.maneuvers.expire_pending(now) {
            self.events.push(now, Event::JoinExpired { requester });
        }
        self.mirror_pending_gaps(now);

        // Phase 4: control.
        let mut commands = std::mem::take(&mut self.scratch.commands);
        self.compute_commands(now, &mut commands);
        for defense in self.defenses.iter_mut() {
            defense.adjust_commands(&self.world, &mut commands);
        }
        for (v, u) in self.world.vehicles.iter_mut().zip(commands.iter()) {
            v.vehicle.set_command(*u);
        }
        self.scratch.commands = commands;

        // Detection pass.
        for defense in self.defenses.iter_mut() {
            for det in defense.on_step(&mut self.world, &mut self.rng) {
                self.detections += 1;
                self.events.push(
                    det.time,
                    Event::Detection {
                        suspect: det.suspect,
                    },
                );
                Self::trace_into(
                    &mut self.tracer,
                    tick,
                    now,
                    TracePhase::Detector,
                    TraceDetail::DetectorAlert {
                        suspect: Some(det.suspect.0),
                    },
                );
            }
        }
        self.run_detection_pipeline(now);

        // Phase 5: integrate dynamics and collect metrics.
        self.integrate_and_measure(now);

        self.world.time = now + self.scenario.comm_step;
        self.steps_run += 1;
        self.perf.ticks += 1;
    }

    /// Seals a message according to the vehicle's credential material.
    fn seal(v: &mut VehicleNode, msg: &PlatoonMessage) -> Envelope {
        if matches!(v.auth, AuthMaterial::EncryptedGroupMac(_)) {
            v.nonce += 1;
        }
        Self::seal_prepared(v, msg, v.nonce)
    }

    /// Seal with a pre-reserved nonce: the rng/counter-free half of
    /// [`Self::seal`], shardable across threads. Signatures are
    /// deterministic (RFC 6979-style), so sealing draws no randomness.
    fn seal_prepared(v: &VehicleNode, msg: &PlatoonMessage, nonce: u64) -> Envelope {
        match &v.auth {
            AuthMaterial::None => Envelope::plain(v.principal, msg),
            AuthMaterial::GroupMac(key) => Envelope::mac(v.principal, msg, key),
            AuthMaterial::EncryptedGroupMac(key) => {
                Envelope::seal_encrypted(v.principal, msg, key, nonce)
            }
            AuthMaterial::Pki {
                signer,
                certificate,
            } => Envelope::sign(v.principal, msg, signer, *certificate),
        }
    }

    /// Builds a vehicle's outgoing beacon. The claimed position comes from
    /// the GPS receiver — which is exactly why GPS spoofing (§V-G) poisons
    /// the information the platoon shares, not just local navigation. A GPS
    /// outage falls back to dead-reckoned truth (inertial backup).
    fn beacon_for(v: &mut VehicleNode, now: f64, rng: &mut StdRng) -> Beacon {
        v.seq += 1;
        let lie = v.beacon_lie.unwrap_or_default();
        let gps_position = v
            .sensors
            .gps
            .measure(v.vehicle.state.position, v.vehicle.state.speed, now, rng)
            .map(|(p, _)| p)
            .unwrap_or(v.vehicle.state.position);
        Beacon {
            sender: v.principal,
            platoon: v.platoon,
            role: v.role,
            seq: v.seq,
            timestamp: now,
            position: gps_position + lie.position_offset,
            speed: (v.vehicle.state.speed + lie.speed_offset).max(0.0),
            accel: v.vehicle.state.accel + lie.accel_offset,
            length: v.vehicle.params.length,
        }
    }

    /// Fills `frames` with this step's honest transmissions. Each sealed
    /// envelope is encoded exactly once; the hybrid-channel copy and any
    /// VLC relay share the encoded bytes ([`Payload`] is `Arc`-backed, so
    /// a clone is a refcount bump, not a byte copy).
    fn build_outgoing_frames(&mut self, now: f64, frames: &mut Vec<Frame>) {
        let comms = self.scenario.comms;
        let power = self.world.medium.dsrc.default_tx_power_dbm;
        let hybrid_channel = match comms {
            CommsMode::DsrcOnly => None,
            CommsMode::HybridVlc => Some(ChannelKind::Vlc),
            CommsMode::HybridCv2x => Some(ChannelKind::CV2x),
        };

        // Beacons from every operational vehicle. A regime phase with a
        // beacon cadence divisor (congestion-control backoff) silences
        // whole ticks; manoeuvre traffic in the outbox below still goes out.
        if self.regime.beacon_this_tick && self.threads > 1 {
            // Sharded sealing. The rng-consuming half (GPS measurement,
            // seq/nonce counters) runs sequentially in vehicle order first —
            // exactly the draws the sequential loop makes — then the pure
            // seal + encode work (MACs, encryption, deterministic
            // signatures) fans out, and frames are pushed in vehicle order.
            let mut jobs = std::mem::take(&mut self.scratch.seal_jobs);
            jobs.clear();
            for (idx, v) in self.world.vehicles.iter_mut().enumerate() {
                if !v.platooning_enabled {
                    continue;
                }
                let beacon = Self::beacon_for(v, now, &mut self.rng);
                if matches!(v.auth, AuthMaterial::EncryptedGroupMac(_)) {
                    v.nonce += 1;
                }
                jobs.push((idx, PlatoonMessage::Beacon(beacon), v.nonce));
            }
            let vehicles = &self.world.vehicles;
            let payloads: Vec<Payload> =
                par::map_indexed(&jobs, self.threads, |_, (idx, msg, nonce)| {
                    Self::seal_prepared(&vehicles[*idx], msg, *nonce)
                        .encode()
                        .into()
                });
            for ((idx, _, _), payload) in jobs.iter().zip(payloads) {
                let v = &self.world.vehicles[*idx];
                self.perf.bytes_encoded += payload.len() as u64;
                self.perf.frames_built += 1;
                self.perf.frame_bytes += payload.len() as u64;
                frames.push(Frame {
                    sender: v.node,
                    origin: v.position(),
                    power_dbm: power,
                    channel: ChannelKind::Dsrc,
                    payload: payload.clone(),
                });
                if let Some(channel) = hybrid_channel {
                    self.perf.frames_built += 1;
                    self.perf.frame_bytes += payload.len() as u64;
                    self.perf.payload_clones_avoided += 1;
                    frames.push(Frame {
                        sender: v.node,
                        origin: v.position(),
                        power_dbm: power,
                        channel,
                        payload,
                    });
                }
            }
            self.scratch.seal_jobs = jobs;
        } else if self.regime.beacon_this_tick {
            for v in self.world.vehicles.iter_mut() {
                if !v.platooning_enabled {
                    continue;
                }
                let beacon = Self::beacon_for(v, now, &mut self.rng);
                let env = Self::seal(v, &PlatoonMessage::Beacon(beacon));
                let payload: Payload = env.encode().into();
                self.perf.bytes_encoded += payload.len() as u64;
                self.perf.frames_built += 1;
                self.perf.frame_bytes += payload.len() as u64;
                frames.push(Frame {
                    sender: v.node,
                    origin: v.position(),
                    power_dbm: power,
                    channel: ChannelKind::Dsrc,
                    payload: payload.clone(),
                });
                if let Some(channel) = hybrid_channel {
                    self.perf.frames_built += 1;
                    self.perf.frame_bytes += payload.len() as u64;
                    self.perf.payload_clones_avoided += 1;
                    frames.push(Frame {
                        sender: v.node,
                        origin: v.position(),
                        power_dbm: power,
                        channel,
                        payload,
                    });
                }
            }
        }

        // SP-VLC hop-by-hop relaying: each member forwards the freshest
        // leader beacon it holds down the optical chain, so leader data
        // survives RF jamming one hop at a time (Ucar et al. [2]). The
        // relayed frame shares the stored wire image.
        if self.regime.beacon_this_tick && comms == CommsMode::HybridVlc {
            let mut relays = std::mem::take(&mut self.scratch.relays);
            relays.clear();
            relays.extend(
                self.world
                    .vehicles
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.platooning_enabled)
                    .filter_map(|(i, v)| {
                        let heard = v.comm.leader.as_ref()?;
                        if now - heard.heard_at > 0.3 {
                            return None;
                        }
                        Some((i, v.comm.leader_envelope.clone()?))
                    }),
            );
            for (idx, payload) in relays.drain(..) {
                let v = &self.world.vehicles[idx];
                self.perf.frames_built += 1;
                self.perf.frame_bytes += payload.len() as u64;
                self.perf.payload_clones_avoided += 1;
                frames.push(Frame {
                    sender: v.node,
                    origin: v.position(),
                    power_dbm: power,
                    channel: ChannelKind::Vlc,
                    payload,
                });
            }
            self.scratch.relays = relays;
        }

        // Queued manoeuvre responses / commands.
        let outbox = std::mem::take(&mut self.outbox);
        for (idx, msg) in outbox {
            if idx >= self.world.vehicles.len() {
                continue;
            }
            if !self.world.vehicles[idx].platooning_enabled {
                continue;
            }
            let env = Self::seal(&mut self.world.vehicles[idx], &msg);
            let v = &self.world.vehicles[idx];
            let payload: Payload = env.encode().into();
            self.perf.bytes_encoded += payload.len() as u64;
            self.perf.frames_built += 1;
            self.perf.frame_bytes += payload.len() as u64;
            frames.push(Frame {
                sender: v.node,
                origin: v.position(),
                power_dbm: power,
                channel: ChannelKind::Dsrc,
                payload: payload.clone(),
            });
            if let Some(channel) = hybrid_channel {
                self.perf.frames_built += 1;
                self.perf.frame_bytes += payload.len() as u64;
                self.perf.payload_clones_avoided += 1;
                frames.push(Frame {
                    sender: v.node,
                    origin: v.position(),
                    power_dbm: power,
                    channel,
                    payload,
                });
            }
        }
    }

    /// Engine-level authentication per the deployed key scheme.
    fn authenticate(&self, env: &Envelope, now: f64) -> Result<PlatoonMessage, RejectReason> {
        Self::authenticate_with(self.scenario.auth, &self.group_key, &self.ca, env, now)
    }

    /// The borrow-friendly body of [`Self::authenticate`]: pure verification
    /// against immutable key material, shardable across threads.
    fn authenticate_with(
        auth: AuthMode,
        group_key: &SymmetricKey,
        ca: &CertificateAuthority,
        env: &Envelope,
        now: f64,
    ) -> Result<PlatoonMessage, RejectReason> {
        match auth {
            AuthMode::None => env.open_unverified().map_err(|_| RejectReason::AuthFailed),
            AuthMode::GroupMac => env
                .verify_mac(group_key)
                .map_err(|_| RejectReason::AuthFailed),
            AuthMode::EncryptedGroupMac => env
                .open_encrypted(group_key)
                .map_err(|_| RejectReason::AuthFailed),
            AuthMode::Pki => {
                if let platoon_proto::envelope::AuthScheme::Signed { certificate, .. } = &env.auth {
                    if ca.is_revoked(certificate.serial()) {
                        return Err(RejectReason::Distrusted);
                    }
                }
                env.verify_signed(&ca.public(), ca.id(), now)
                    .map_err(|_| RejectReason::AuthFailed)
            }
        }
    }

    fn process_deliveries(&mut self, deliveries: &[Delivery], now: f64) {
        self.perf.deliveries += deliveries.len() as u64;
        // PDR accounting: count at most one delivery per (sender, receiver)
        // pair per step so hybrid duplicates do not inflate the ratio.
        let mut seen_pairs = std::mem::take(&mut self.scratch.seen_pairs);
        seen_pairs.clear();
        // Protocol dedup: in hybrid modes the same payload arrives on two
        // channels; apply it once per receiver per step so counters (e.g.
        // join-request statistics) are not inflated. Defenses still see
        // every copy via filter_rx (the hybrid cross-validator needs both).
        let mut seen_payloads = std::mem::take(&mut self.scratch.seen_payloads);
        seen_payloads.clear();
        // Accepted message observations accumulate here in arrival order
        // and are handed to the detection pipeline in one batched ingest
        // after the loop. The constructed observations depend only on
        // state `apply_message` does not touch (true kinematics, rosters
        // of principals, the radio config), so batching preserves the
        // exact per-delivery stream the detectors saw before.
        let mut observations = std::mem::take(&mut self.scratch.observations);
        observations.clear();
        // Rng-free pre-pass: envelope decode + cryptographic verification,
        // sharded across threads. Safe because the identity maps, the key
        // material and the CA are immutable for the duration of the delivery
        // loop; all stateful work (PDR accounting, defenses, protocol
        // application) stays sequential below, in delivery order.
        let mut pre: Option<Vec<PreVerdict>> = if self.threads > 1 && deliveries.len() > 1 {
            let world = &self.world;
            let auth_mode = self.scenario.auth;
            let group_key = &self.group_key;
            let ca = &self.ca;
            Some(par::map_indexed(deliveries, self.threads, |_, delivery| {
                if world.index_of_node(delivery.receiver).is_none() {
                    return PreVerdict::Skip;
                }
                match Envelope::decode(&delivery.payload) {
                    Ok(env) => {
                        let verdict = Self::authenticate_with(auth_mode, group_key, ca, &env, now);
                        PreVerdict::Verified(env, verdict)
                    }
                    Err(_) => PreVerdict::Undecodable,
                }
            }))
        } else {
            None
        };
        // Co-location context for the detector observations: with a finite
        // radio horizon the all-vehicle scan per observation becomes a grid
        // query. Positions are frozen for the whole delivery loop (kinematics
        // only change in the integration phase), so one grid serves all
        // deliveries this step.
        let wants_observations = self.pipeline.is_some() || self.obs_sink.is_some();
        let coloc: Option<(SpatialGrid, f64)> =
            if wants_observations && self.world.medium.radio_horizon_m.is_finite() {
                let positions: Vec<Position> = self
                    .world
                    .vehicles
                    .iter()
                    .map(|v| (v.vehicle.state.position, 0.0))
                    .collect();
                let radius = self
                    .world
                    .vehicles
                    .iter()
                    .map(|v| v.vehicle.params.length * 0.5)
                    .fold(0.0, f64::max);
                Some((SpatialGrid::build(radius.max(1.0), &positions), radius))
            } else {
                None
            };
        // Platoon layout cache for `apply_message`, invalidated whenever a
        // manoeuvre rewrites platoon membership mid-loop.
        let mut layout_cache: Option<PlatoonLayout> = None;
        for (di, delivery) in deliveries.iter().enumerate() {
            let Some(rx_idx) = self.world.index_of_node(delivery.receiver) else {
                continue; // RSU or attacker receiver; vehicles only here.
            };
            if self.world.index_of_node(delivery.sender).is_some()
                && seen_pairs.insert((delivery.sender, delivery.receiver))
            {
                self.metrics.links.record_delivery(
                    delivery.sender,
                    delivery.receiver,
                    delivery.latency,
                );
            }
            let (env, auth_verdict) = match pre.as_mut().map(|p| std::mem::take(&mut p[di])) {
                None => match Envelope::decode(&delivery.payload) {
                    Ok(env) => {
                        let verdict = self.authenticate(&env, now);
                        (env, verdict)
                    }
                    Err(_) => continue,
                },
                Some(PreVerdict::Verified(env, verdict)) => (env, verdict),
                Some(PreVerdict::Undecodable) | Some(PreVerdict::Skip) => continue,
            };
            // Engine-level authentication.
            let msg = match auth_verdict {
                Ok(msg) => msg,
                Err(reason) => {
                    self.rejected_messages += 1;
                    self.events.push(
                        now,
                        Event::MessageRejected {
                            receiver: rx_idx,
                            sender: env.sender,
                            reason,
                        },
                    );
                    Self::trace_into(
                        &mut self.tracer,
                        self.steps_run,
                        now,
                        TracePhase::Defense,
                        TraceDetail::DefenseVerdict {
                            receiver: rx_idx as u64,
                            sender: env.sender.0,
                            reason: format!("{reason:?}"),
                        },
                    );
                    continue;
                }
            };
            // Defense filters.
            let mut rejected = None;
            for defense in self.defenses.iter_mut() {
                if let Err(reason) = defense.filter_rx(rx_idx, &self.world, delivery, &env, now) {
                    rejected = Some(reason);
                    break;
                }
            }
            if let Some(reason) = rejected {
                self.rejected_messages += 1;
                self.events.push(
                    now,
                    Event::MessageRejected {
                        receiver: rx_idx,
                        sender: env.sender,
                        reason,
                    },
                );
                Self::trace_into(
                    &mut self.tracer,
                    self.steps_run,
                    now,
                    TracePhase::Defense,
                    TraceDetail::DefenseVerdict {
                        receiver: rx_idx as u64,
                        sender: env.sender.0,
                        reason: format!("{reason:?}"),
                    },
                );
                continue;
            }
            let payload_key = (
                rx_idx,
                platoon_crypto::sha256::Sha256::digest(&delivery.payload).to_u64(),
            );
            if !seen_payloads.insert(payload_key) {
                continue; // duplicate channel copy already applied
            }
            if wants_observations {
                observations.push(Self::build_observation(
                    &self.world,
                    rx_idx,
                    delivery,
                    &env,
                    &msg,
                    now,
                    coloc.as_ref(),
                ));
            }
            self.apply_message(rx_idx, env.sender, &env, msg, now, &mut layout_cache);
        }
        self.perf.detector_observations += observations.len() as u64;
        if let Some(pipeline) = self.pipeline.as_mut() {
            pipeline.ingest_messages(&observations);
        }
        if let Some(sink) = self.obs_sink.as_mut() {
            sink.on_messages(&observations);
        }
        self.scratch.seen_pairs = seen_pairs;
        self.scratch.seen_payloads = seen_payloads;
        self.scratch.observations = observations;
    }

    /// Translates one accepted delivery into the observation the receiver's
    /// on-board IDS would see. `coloc` is an optional pre-built grid over
    /// vehicle road positions (paired with the fleet's maximum half-length)
    /// that turns the co-location scan into a range query.
    fn build_observation(
        world: &World,
        rx_idx: usize,
        delivery: &Delivery,
        env: &Envelope,
        msg: &PlatoonMessage,
        now: f64,
        coloc: Option<&(SpatialGrid, f64)>,
    ) -> MessageObservation {
        use platoon_proto::envelope::AuthScheme;
        let auth = match &env.auth {
            AuthScheme::Plain => AuthMeta::Plain,
            AuthScheme::GroupMac { .. } => AuthMeta::GroupMac,
            AuthScheme::EncryptedGroupMac { .. } => AuthMeta::Encrypted,
            AuthScheme::Signed { certificate, .. } => AuthMeta::Signed {
                subject: certificate.subject,
            },
        };
        let rx = &world.vehicles[rx_idx];
        // The position the message claims its sender occupies (for RSSI and
        // co-location context).
        let claimed_position = match msg {
            PlatoonMessage::Beacon(b) => Some(b.position),
            PlatoonMessage::JoinRequest { position, .. } => Some(*position),
            _ => None,
        };
        // RSSI the claimed position would predict (RF channels only; VLC
        // has no meaningful received-power model).
        let expected_rssi_dbm = match (claimed_position, delivery.channel) {
            (Some(claimed), ChannelKind::Dsrc | ChannelKind::CV2x) => {
                let d = platoon_v2x::message::distance((claimed, 0.0), rx.position());
                Some(
                    world
                        .medium
                        .dsrc
                        .median_rx_power_dbm(world.medium.dsrc.default_tx_power_dbm, d),
                )
            }
            _ => None,
        };
        let colocation_conflict = claimed_position.is_some_and(|claimed| {
            match coloc {
                // Grid path: every vehicle matching the per-vehicle predicate
                // lies within the fleet's max half-length of the claim, so
                // querying at that radius and re-applying the exact predicate
                // reproduces the scan's answer.
                Some((grid, radius)) if claimed.is_finite() => {
                    grid.any_within((claimed, 0.0), *radius, |i| {
                        let v = &world.vehicles[i];
                        v.principal != env.sender
                            && (v.vehicle.state.position - claimed).abs()
                                < v.vehicle.params.length * 0.5
                    })
                }
                _ => world.vehicles.iter().any(|v| {
                    v.principal != env.sender
                        && (v.vehicle.state.position - claimed).abs()
                            < v.vehicle.params.length * 0.5
                }),
            }
        });
        let ctx = ObserverContext {
            observer: rx_idx,
            observer_principal: rx.principal,
            observer_position: rx.vehicle.state.position,
            observer_speed: rx.vehicle.state.speed,
            sender_is_predecessor: rx_idx > 0 && world.vehicles[rx_idx - 1].principal == env.sender,
            // The observer's own ranging to its predecessor: the control
            // loop's radar path (ground truth here; sensor noise rides on
            // the control reading, not the IDS cross-check — the same
            // convention VPD-ADA uses).
            ranged_gap: if rx_idx > 0 {
                world.true_gap(rx_idx).zip(world.true_range_rate(rx_idx))
            } else {
                None
            },
            expected_rssi_dbm,
            colocation_conflict,
        };
        match msg {
            PlatoonMessage::Beacon(b) => MessageObservation::Beacon(BeaconObservation {
                time: now,
                sender: env.sender,
                claim: BeaconClaim {
                    position: b.position,
                    speed: b.speed,
                    accel: b.accel,
                    length: b.length,
                    seq: b.seq,
                    timestamp: b.timestamp,
                },
                rssi_dbm: delivery.rssi_dbm,
                channel: delivery.channel,
                auth,
                ctx,
            }),
            other => {
                let kind = match other {
                    PlatoonMessage::JoinRequest { position, .. } => ControlKind::JoinRequest {
                        claimed_position: *position,
                    },
                    PlatoonMessage::LeaveRequest { .. } => ControlKind::LeaveRequest,
                    PlatoonMessage::SplitCommand { .. } => ControlKind::SplitCommand,
                    PlatoonMessage::GapOpen { .. } => ControlKind::GapOpen,
                    _ => ControlKind::Other,
                };
                MessageObservation::Control(ControlObservation {
                    time: now,
                    sender: env.sender,
                    kind,
                    timestamp: other.timestamp(),
                    rssi_dbm: delivery.rssi_dbm,
                    channel: delivery.channel,
                    auth,
                    ctx,
                })
            }
        }
    }

    /// Per-step detection-pipeline work: on-board sensor cross-checks,
    /// silence monitoring, and draining freshly raised alerts into the
    /// event log.
    fn run_detection_pipeline(&mut self, now: f64) {
        let Some(pipeline) = self.pipeline.as_mut() else {
            return;
        };
        // Radar-vs-LiDAR cross-check samples for every operational follower
        // (independent ranging paths over the same true gap).
        for idx in 1..self.world.vehicles.len() {
            let v = &self.world.vehicles[idx];
            if !v.platooning_enabled {
                continue;
            }
            let Some(true_gap) = self.world.true_gap(idx) else {
                continue;
            };
            let true_rate = self.world.true_range_rate(idx).unwrap_or(0.0);
            let radar = v
                .sensors
                .radar
                .measure(true_gap, true_rate, now, &mut self.rng);
            let lidar = v.sensors.lidar.measure(true_gap, now, &mut self.rng);
            if let (Some((radar_range, _)), Some(lidar_range)) = (radar, lidar) {
                self.perf.detector_observations += 1;
                pipeline.observe_sensors(&SensorObservation {
                    time: now,
                    observer: idx,
                    observer_principal: v.principal,
                    radar_range,
                    lidar_range,
                });
            }
        }
        // Silence monitoring: every vehicle is *expected* to beacon; only
        // operational vehicles observe.
        let mut members = std::mem::take(&mut self.scratch.members);
        members.clear();
        members.extend(self.world.vehicles.iter().map(|v| v.principal));
        let mut observers = std::mem::take(&mut self.scratch.observers);
        observers.clear();
        observers.extend(
            self.world
                .vehicles
                .iter()
                .enumerate()
                .filter(|(_, v)| v.platooning_enabled)
                .map(|(i, _)| i),
        );
        self.perf.detector_observations += 1; // the per-step silence tick
        pipeline.tick(&TickContext {
            now,
            comm_step: self.scenario.comm_step,
            members: &members,
            observers: &observers,
        });
        self.scratch.members = members;
        self.scratch.observers = observers;
        for alert in pipeline.take_alerts() {
            self.detections += 1;
            let suspect = match alert.target {
                AlertTarget::Sender(suspect) => {
                    self.events.push(alert.time, Event::Detection { suspect });
                    Some(suspect.0)
                }
                AlertTarget::Channel => {
                    self.events.push(alert.time, Event::ChannelAlarm);
                    None
                }
            };
            Self::trace_into(
                &mut self.tracer,
                self.steps_run,
                now,
                TracePhase::Detector,
                TraceDetail::DetectorAlert { suspect },
            );
        }
    }

    /// Looks up (or lazily computes) the delivery loop's platoon layout.
    /// Callers must clear the cache after any platoon-membership mutation.
    fn layout_of<'a>(world: &World, cache: &'a mut Option<PlatoonLayout>) -> &'a PlatoonLayout {
        cache.get_or_insert_with(|| world.platoon_layout())
    }

    fn apply_message(
        &mut self,
        rx_idx: usize,
        claimed_sender: PrincipalId,
        env: &Envelope,
        msg: PlatoonMessage,
        now: f64,
        layout: &mut Option<PlatoonLayout>,
    ) {
        match msg {
            PlatoonMessage::Beacon(b) => {
                self.claimed_positions
                    .insert(claimed_sender, (b.position, now));
                let cached = Self::layout_of(&self.world, layout);
                let local_idx = cached.local_index[rx_idx];
                let leader_idx = cached.leader_index[rx_idx];
                let peer = CommPeer {
                    position: b.position,
                    speed: b.speed,
                    accel: b.accel,
                    length: b.length,
                    age: 0.0,
                };
                let heard = HeardPeer {
                    principal: claimed_sender,
                    peer,
                    heard_at: now,
                };
                if local_idx > 0 {
                    let pred_principal = self.world.vehicles[rx_idx - 1].principal;
                    if claimed_sender == pred_principal {
                        self.world.vehicles[rx_idx].comm.predecessor = Some(heard);
                    }
                    let leader_principal = self.world.vehicles[leader_idx].principal;
                    if claimed_sender == leader_principal {
                        self.world.vehicles[rx_idx].comm.leader = Some(heard);
                        // The stored wire image only feeds VLC relaying.
                        if self.scenario.comms == CommsMode::HybridVlc {
                            self.world.vehicles[rx_idx].comm.leader_envelope =
                                Some(env.encode().into());
                        }
                    }
                }
                // Leader: a beacon from a pending joiner claiming to be at
                // its reserved slot completes the join.
                if rx_idx == 0 {
                    self.try_complete_joins(now);
                }
            }
            PlatoonMessage::JoinRequest {
                requester,
                platoon,
                position,
                ..
            } => {
                // Only the lead platoon's leader owns the manoeuvre engine;
                // a split-off leader (also Role::Leader) must not admit
                // vehicles into a roster it does not hold.
                if rx_idx != 0 || self.world.vehicles[rx_idx].platoon != platoon {
                    return;
                }
                let mut credentials_ok = true;
                for defense in self.defenses.iter_mut() {
                    if !defense.authorize_join(requester, env, &self.world, now) {
                        credentials_ok = false;
                        break;
                    }
                }
                let slot_hint = self.slot_for_position(position);
                let outcome = self.maneuvers.handle_join_request_with_slot(
                    requester,
                    now,
                    credentials_ok,
                    slot_hint,
                );
                match outcome {
                    JoinOutcome::Accept { slot } => {
                        self.events
                            .push(now, Event::JoinAccepted { requester, slot });
                        self.outbox.push((
                            rx_idx,
                            PlatoonMessage::JoinAccept {
                                requester,
                                platoon: self.world.vehicles[rx_idx].platoon,
                                slot: slot as u32,
                                timestamp: now,
                            },
                        ));
                        self.outbox.push((
                            rx_idx,
                            PlatoonMessage::GapOpen {
                                platoon: self.world.vehicles[rx_idx].platoon,
                                slot: slot as u32,
                                extra_gap: self.scenario.maneuvers.join_gap_extra,
                                timestamp: now,
                            },
                        ));
                    }
                    JoinOutcome::Deny(reason) => {
                        self.events.push(now, Event::JoinRefused { requester });
                        self.outbox.push((
                            rx_idx,
                            PlatoonMessage::JoinDeny {
                                requester,
                                platoon: self.world.vehicles[rx_idx].platoon,
                                reason,
                                timestamp: now,
                            },
                        ));
                    }
                    JoinOutcome::Dropped => {
                        self.events.push(now, Event::JoinRefused { requester });
                    }
                }
            }
            PlatoonMessage::LeaveRequest {
                member, platoon, ..
            } => {
                if rx_idx != 0 || self.world.vehicles[rx_idx].platoon != platoon {
                    return;
                }
                if self.maneuvers.handle_leave(member).is_ok() {
                    self.outbox.push((
                        rx_idx,
                        PlatoonMessage::LeaveAck {
                            member,
                            platoon: self.world.vehicles[rx_idx].platoon,
                            timestamp: now,
                        },
                    ));
                }
            }
            PlatoonMessage::SplitCommand {
                platoon,
                at_index,
                new_platoon,
                ..
            } => {
                // Members obey a split claimed to come from their platoon
                // leader. (Authentication — or its absence — already
                // happened; this check is the protocol-level authorisation.)
                let cached = Self::layout_of(&self.world, layout);
                let leader_idx = cached.leader_index[rx_idx];
                let local_idx = cached.local_index[rx_idx];
                let leader_principal = self.world.vehicles[leader_idx].principal;
                if claimed_sender != leader_principal
                    || self.world.vehicles[rx_idx].platoon != platoon
                {
                    return;
                }
                if local_idx >= at_index as usize && local_idx > 0 {
                    self.execute_split_membership(rx_idx, new_platoon, now);
                    // Membership changed: later deliveries this step must
                    // recompute the layout.
                    *layout = None;
                }
            }
            PlatoonMessage::GapOpen {
                platoon,
                slot,
                extra_gap,
                ..
            } => {
                let cached = Self::layout_of(&self.world, layout);
                let leader_idx = cached.leader_index[rx_idx];
                let local_idx = cached.local_index[rx_idx];
                let leader_principal = self.world.vehicles[leader_idx].principal;
                if claimed_sender != leader_principal
                    || self.world.vehicles[rx_idx].platoon != platoon
                {
                    return;
                }
                if local_idx == slot as usize {
                    let v = &mut self.world.vehicles[rx_idx];
                    v.extra_front_gap = extra_gap;
                    v.extra_gap_until = now + self.scenario.maneuvers.join_timeout;
                }
            }
            PlatoonMessage::JoinAccept { .. }
            | PlatoonMessage::JoinDeny { .. }
            | PlatoonMessage::LeaveAck { .. } => {
                // Consumed by joiner agents (observers), not platoon members.
            }
        }
    }

    /// Converts a claimed road position into a roster slot hint.
    fn slot_for_position(&self, position: f64) -> Option<usize> {
        let n = self.world.vehicles.len();
        for idx in 0..n {
            if self.world.vehicles[idx].vehicle.state.position < position {
                return Some(idx.max(1));
            }
        }
        None // behind everyone: tail join
    }

    /// Completes pending joins whose principals have beaconed an arrival
    /// position near their reserved slot.
    fn try_complete_joins(&mut self, now: f64) {
        let pending: Vec<(PrincipalId, usize)> = self
            .maneuvers
            .pending()
            .map(|p| (p.requester, p.slot))
            .collect();
        for (requester, slot) in pending {
            let Some(&(claimed_pos, heard_at)) = self.claimed_positions.get(&requester) else {
                continue;
            };
            if now - heard_at > 1.0 {
                continue;
            }
            let slot_pos = self.expected_slot_position(slot);
            if (claimed_pos - slot_pos).abs() <= JOIN_ARRIVAL_TOLERANCE {
                let _ = self.maneuvers.complete_join(requester);
            }
        }
    }

    /// Road position a vehicle occupying `slot` would have.
    fn expected_slot_position(&self, slot: usize) -> f64 {
        let spacing = self.scenario.params.length + self.scenario.desired_gap;
        let leader_pos = self.world.vehicles[0].vehicle.state.position;
        leader_pos - slot as f64 * spacing
    }

    /// Marks `rx_idx` and all same-platoon vehicles behind it as members of
    /// `new_platoon`, promoting the frontmost to leader of the new platoon.
    fn execute_split_membership(&mut self, rx_idx: usize, new_platoon: PlatoonId, now: f64) {
        let old = self.world.vehicles[rx_idx].platoon;
        let local_idx = self.world.platoon_local_index(rx_idx);
        let mut first_new: Option<usize> = None;
        for idx in rx_idx..self.world.vehicles.len() {
            if self.world.vehicles[idx].platoon == old {
                self.world.vehicles[idx].platoon = new_platoon;
                if first_new.is_none() {
                    first_new = Some(idx);
                }
            }
        }
        if let Some(front) = first_new {
            // The new platoon's front vehicle leads with radar-based ACC so
            // it keeps a safe distance from the platoon ahead (a split-off
            // leader must not blindly cruise into the front platoon's tail).
            self.world.vehicles[front].role = Role::Leader;
            self.world.vehicles[front].controller = Box::new(AccController::default());
            self.world.vehicles[front].comm = CommState::default();
        }
        self.next_platoon_id = self.next_platoon_id.max(new_platoon.0 + 1);
        self.events.push(
            now,
            Event::Split {
                at_index: local_idx,
                new_platoon,
            },
        );
    }

    /// Fills `commands` (cleared first) with one command per vehicle.
    fn compute_commands(&mut self, now: f64, commands: &mut Vec<f64>) {
        let dt = self.scenario.comm_step;
        // The active regime phase may retarget the leader profile (at
        // phase-local time, so each phase's profile starts from its own
        // t=0) and the commanded gap. Control follows the phase; spacing
        // metrics stay relative to the scenario's nominal gap.
        let mut profile = self.scenario.profile;
        let mut desired_gap = self.scenario.desired_gap;
        let mut profile_now = now;
        if let (Some(plan), Some(idx)) = (&self.scenario.regimes, self.regime.phase) {
            let phase = &plan.phases[idx];
            if let Some(p) = phase.profile {
                profile = p;
                profile_now = now - self.regime.phase_start_tick as f64 * self.scenario.comm_step;
            }
            if let Some(gap) = phase.desired_gap {
                desired_gap = gap;
            }
        }
        let n = self.world.vehicles.len();
        commands.clear();
        commands.resize(n, 0.0);
        self.perf.commands_computed += n as u64;

        // One O(n) layout pass replaces the per-vehicle O(n) local-index
        // scans (membership cannot change while commands are computed).
        let layout = self.world.platoon_layout();
        // Indexed loop on purpose: the body needs simultaneous &mut access
        // to `commands[idx]` and `self` (for contexts and controllers).
        #[allow(clippy::needless_range_loop)]
        for idx in 0..n {
            let local_idx = layout.local_index[idx];
            if !self.world.vehicles[idx].platooning_enabled && local_idx > 0 {
                // Platooning service down: fall back to radar-only ACC-like
                // behaviour to avoid modelling a driverless brick.
                let ctx = self.control_context(idx, local_idx, desired_gap, dt, now);
                let mut fallback = AccController::default();
                commands[idx] = fallback.command(&ctx);
                continue;
            }
            if local_idx == 0 {
                // Leads its platoon: the original leader tracks the speed
                // profile directly; split-off leaders run the cruise
                // controller frozen at their split-time speed.
                if idx == 0 {
                    let target = profile.target_speed(profile_now);
                    let speed = self.world.vehicles[idx].vehicle.state.speed;
                    commands[idx] = 0.8 * (target - speed);
                } else {
                    let ctx = self.control_context(idx, local_idx, desired_gap, dt, now);
                    commands[idx] = self.world.vehicles[idx].controller.command(&ctx);
                }
            } else {
                let ctx = self.control_context(idx, local_idx, desired_gap, dt, now);
                commands[idx] = self.world.vehicles[idx].controller.command(&ctx);
            }
        }
    }

    fn control_context(
        &mut self,
        idx: usize,
        local_idx: usize,
        desired_gap: f64,
        dt: f64,
        now: f64,
    ) -> ControlContext {
        let extra = if now < self.world.vehicles[idx].extra_gap_until {
            self.world.vehicles[idx].extra_front_gap
        } else {
            0.0
        };
        let radar = if idx > 0 {
            let true_gap = self.world.true_gap(idx).expect("idx > 0");
            let true_rate = self.world.true_range_rate(idx).expect("idx > 0");
            let primary = self.world.vehicles[idx]
                .sensors
                .radar
                .measure(true_gap, true_rate, now, &mut self.rng)
                .map(|(range, range_rate)| RadarReading { range, range_rate });
            // LiDAR failover: if the radar is blind (jammed or disabled by a
            // sensor guard), range on the LiDAR with the true closing rate.
            primary.or_else(|| {
                self.world.vehicles[idx]
                    .sensors
                    .lidar
                    .measure(true_gap, now, &mut self.rng)
                    .map(|range| RadarReading {
                        range,
                        range_rate: true_rate,
                    })
            })
        } else {
            None
        };
        let v = &self.world.vehicles[idx];
        ControlContext {
            dt,
            ego: v.vehicle.state,
            index: local_idx,
            radar,
            predecessor: v.comm.comm_peer_predecessor(now),
            leader: v.comm.comm_peer_leader(now),
            desired_gap: desired_gap + extra,
            desired_offset_from_leader: local_idx as f64
                * (self.scenario.params.length + desired_gap),
        }
    }

    fn mirror_pending_gaps(&mut self, now: f64) {
        // Clear expired extra gaps.
        for v in self.world.vehicles.iter_mut() {
            if now >= v.extra_gap_until {
                v.extra_front_gap = 0.0;
            }
        }
    }

    fn integrate_and_measure(&mut self, now: f64) {
        let substeps = (self.scenario.comm_step / self.scenario.dyn_step).round() as usize;
        let dt = self.scenario.dyn_step;
        let n = self.world.vehicles.len();
        // Membership is stable during integration: one layout serves every
        // substep's fuel accounting.
        let layout = self.world.platoon_layout();

        for _ in 0..substeps.max(1) {
            if self.threads > 1 {
                // Per-vehicle dynamics are independent and rng-free; shard
                // them in contiguous index chunks (results land in each
                // vehicle's own state, so order cannot leak through).
                par::for_each_mut(&mut self.world.vehicles, self.threads, |_, v| {
                    v.vehicle.step(dt);
                });
            } else {
                for v in self.world.vehicles.iter_mut() {
                    v.vehicle.step(dt);
                }
            }
            // Safety observation per substep (collisions are fast).
            for idx in 1..n {
                let gap = self.world.true_gap(idx).expect("idx > 0");
                let rate = self.world.true_range_rate(idx).expect("idx > 0");
                let before = self.metrics.safety.collision_count();
                self.metrics
                    .safety
                    .observe(self.world.time, idx - 1, gap, rate);
                if self.metrics.safety.collision_count() > before {
                    self.events
                        .push(self.world.time, Event::Collision { rear_index: idx });
                    Self::trace_into(
                        &mut self.tracer,
                        self.steps_run,
                        now,
                        TracePhase::Dynamics,
                        TraceDetail::SafetyEvent {
                            kind: "collision",
                            vehicle: idx as u64,
                        },
                    );
                }
            }
            // Fuel per substep.
            for idx in 0..n {
                let local_idx = layout.local_index[idx];
                let gap = if idx > 0 {
                    self.world.true_gap(idx).expect("idx > 0").max(0.0)
                } else {
                    f64::INFINITY
                };
                let position = if local_idx == 0 {
                    if n > 1 && idx == 0 {
                        PlatoonPosition::Leader
                    } else {
                        PlatoonPosition::Solo
                    }
                } else {
                    PlatoonPosition::Follower
                };
                let v = &mut self.world.vehicles[idx];
                let (speed, accel) = (v.vehicle.state.speed, v.vehicle.state.accel);
                v.fuel
                    .record(&v.vehicle.params, speed, accel, position, gap.min(1e6), dt);
            }
        }

        // Per-comm-step series.
        #[allow(clippy::needless_range_loop)]
        for idx in 1..n {
            let gap = self.world.true_gap(idx).expect("idx > 0");
            self.metrics.spacing_errors[idx - 1].push(gap - self.scenario.desired_gap);
        }
        for (idx, v) in self.world.vehicles.iter().enumerate() {
            self.metrics.speeds[idx].push(v.vehicle.state.speed);
        }
        let tail = self.world.vehicles.last().expect("platoon non-empty");
        let age = tail
            .comm
            .leader
            .map(|h| (self.world.time - h.heard_at).clamp(0.0, 10.0))
            .unwrap_or(10.0);
        self.metrics.tail_leader_age.push(age);
        let fragmented = self.world.platoon_count() > 1;
        let any_down = self.world.vehicles.iter().any(|v| !v.platooning_enabled);
        // Log service transitions (once per outage).
        for idx in 0..n {
            let down = !self.world.vehicles[idx].platooning_enabled;
            if down && !self.service_was_down[idx] {
                self.events.push(now, Event::ServiceDown { vehicle: idx });
                Self::trace_into(
                    &mut self.tracer,
                    self.steps_run,
                    now,
                    TracePhase::Dynamics,
                    TraceDetail::SafetyEvent {
                        kind: "service-down",
                        vehicle: idx as u64,
                    },
                );
            }
            self.service_was_down[idx] = down;
        }
        self.metrics
            .record_step_state(self.scenario.comm_step, fragmented, any_down);
    }

    /// Builds the run summary from the collected metrics.
    pub fn summary(&self) -> RunSummary {
        let stability = self.metrics.stability();
        let n = self.world.vehicles.len();
        let fuel: f64 = self
            .world
            .vehicles
            .iter()
            .map(|v| v.fuel.litres_per_100km())
            .filter(|f| f.is_finite())
            .sum::<f64>()
            / n as f64;
        let leader_node = self.world.vehicles[0].node;
        let tail_node = self.world.vehicles[n - 1].node;
        let leader_tail_pdr = self
            .metrics
            .links
            .pdr(leader_node, tail_node)
            .unwrap_or(0.0);
        let mean_abs: f64 = if self.metrics.spacing_errors.is_empty() {
            0.0
        } else {
            let (sum, count) = self
                .metrics
                .spacing_errors
                .iter()
                .flat_map(|s| s.values.iter())
                .fold((0.0, 0usize), |(s, c), v| (s + v.abs(), c + 1));
            if count == 0 {
                0.0
            } else {
                sum / count as f64
            }
        };

        RunSummary {
            label: self.scenario.label.clone(),
            duration: self.world.time,
            vehicles: n,
            max_spacing_error: stability
                .linf_errors
                .iter()
                .copied()
                .fold(0.0_f64, f64::max),
            oscillation_energy: stability.total_energy,
            worst_amplification: stability.worst_amplification(),
            string_stable: stability.is_string_stable(0.05),
            collisions: self.metrics.safety.collision_count(),
            min_gap: self.metrics.safety.global_min_gap(),
            min_ttc: self.metrics.safety.min_ttc,
            fuel_l_per_100km: fuel,
            leader_tail_pdr,
            tail_leader_age_mean: self.metrics.tail_leader_age.mean(),
            fragmented_fraction: self.metrics.fragmented_fraction(),
            service_down_fraction: self.metrics.service_down_fraction(),
            maneuvers: self.maneuvers.stats(),
            rejected_messages: self.rejected_messages,
            detections: self.detections,
            mean_abs_spacing_error: mean_abs,
            perf: self.perf,
            events_dropped: self.events.dropped(),
            trace: self.tracer.as_ref().map(|t| t.digest()),
        }
    }
}
