//! The defense hook interface.
//!
//! A [`Defense`] is a pluggable security mechanism with hook points matching
//! the paper's Table III mechanism classes: admission of received messages
//! (keys/certificates), join authorisation (RSU-assisted credentials),
//! behavioural detection (control algorithms / VPD-ADA) and command
//! mitigation (attack-resilient control). Implementations live in the
//! `platoon-defense` crate.

use crate::world::World;
use platoon_crypto::cert::PrincipalId;
use platoon_proto::envelope::Envelope;
use platoon_v2x::message::Delivery;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;

/// Why a defense rejected an incoming message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Authentication failed (signature/MAC/certificate).
    AuthFailed,
    /// The message was a replay or too stale.
    Replayed,
    /// The claimed sender is revoked or distrusted.
    Distrusted,
    /// The content contradicts local sensing (plausibility check).
    Implausible,
    /// Cross-channel confirmation (hybrid comms) was missing.
    Unconfirmed,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::AuthFailed => f.write_str("authentication failed"),
            RejectReason::Replayed => f.write_str("replayed or stale"),
            RejectReason::Distrusted => f.write_str("sender distrusted"),
            RejectReason::Implausible => f.write_str("contradicts local sensing"),
            RejectReason::Unconfirmed => f.write_str("missing cross-channel confirmation"),
        }
    }
}

/// A misbehaviour detection raised by a defense.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectionEvent {
    /// Simulation time of the detection.
    pub time: f64,
    /// The accused principal (ghost ids included).
    pub suspect: PrincipalId,
    /// Short label of the detector that fired.
    pub detector: &'static str,
}

/// A pluggable security mechanism.
pub trait Defense: fmt::Debug {
    /// Short identifier, e.g. `"pki"`.
    fn name(&self) -> &'static str;

    /// Admission decision for a received envelope at vehicle
    /// `receiver_idx`. All active defenses must accept for the message to be
    /// processed. The default accepts everything.
    fn filter_rx(
        &mut self,
        _receiver_idx: usize,
        _world: &World,
        _delivery: &Delivery,
        _envelope: &Envelope,
        _now: f64,
    ) -> Result<(), RejectReason> {
        Ok(())
    }

    /// Whether a join request from `requester` should be treated as
    /// presenting valid credentials. Defaults to `true` — the undefended
    /// leader cannot tell ghosts from vehicles (§V-A.2).
    fn authorize_join(
        &mut self,
        _requester: PrincipalId,
        _envelope: &Envelope,
        _world: &World,
        _now: f64,
    ) -> bool {
        true
    }

    /// Per-step behavioural detection pass. May mutate the world (e.g. evict
    /// a suspect's beacons) and returns newly raised detections.
    fn on_step(&mut self, _world: &mut World, _rng: &mut StdRng) -> Vec<DetectionEvent> {
        Vec::new()
    }

    /// Command mitigation: may adjust the per-vehicle acceleration commands
    /// after the controllers have run (Table III "Control Algorithms").
    fn adjust_commands(&mut self, _world: &World, _commands: &mut [f64]) {}

    /// Downcasting support for experiment post-processing.
    fn as_any(&self) -> &dyn Any;

    /// Clones the defense (including trust/reputation state) into a
    /// fresh box, for engine snapshots. `None` means the defense does
    /// not support snapshotting; engines carrying it cannot be
    /// checkpointed.
    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        None
    }
}

/// The absent defense: accepts everything (the undefended baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDefense;

impl Defense for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Defense>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_defense_accepts_all() {
        let d = NoDefense;
        assert_eq!(d.name(), "none");
        assert!(d.as_any().downcast_ref::<NoDefense>().is_some());
    }

    #[test]
    fn reject_reason_display() {
        assert_eq!(RejectReason::Replayed.to_string(), "replayed or stale");
        assert_eq!(
            RejectReason::Unconfirmed.to_string(),
            "missing cross-channel confirmation"
        );
    }
}
