//! Typed event log: the audit trail of a simulation run.

use crate::defense::RejectReason;
use platoon_crypto::cert::PrincipalId;
use platoon_proto::messages::PlatoonId;
use serde::{Deserialize, Serialize};

/// A notable occurrence during a run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A received message was rejected by a defense.
    MessageRejected {
        /// Receiving vehicle index.
        receiver: usize,
        /// Claimed sender.
        sender: PrincipalId,
        /// Why.
        reason: RejectReason,
    },
    /// A join request was accepted.
    JoinAccepted {
        /// The joiner.
        requester: PrincipalId,
        /// Reserved slot.
        slot: usize,
    },
    /// A join request was denied or dropped.
    JoinRefused {
        /// The requester.
        requester: PrincipalId,
    },
    /// A pending join expired without the vehicle arriving (ghost).
    JoinExpired {
        /// The no-show requester.
        requester: PrincipalId,
    },
    /// The platoon split.
    Split {
        /// Index at which it split.
        at_index: usize,
        /// Id of the new trailing platoon.
        new_platoon: PlatoonId,
    },
    /// A collision occurred.
    Collision {
        /// Striking (rear) vehicle index.
        rear_index: usize,
    },
    /// A misbehaviour detection fired.
    Detection {
        /// The accused principal.
        suspect: PrincipalId,
    },
    /// A channel-level misbehaviour alarm with no attributable sender
    /// (jamming, manoeuvre-channel flooding).
    ChannelAlarm,
    /// A vehicle's platooning service went down (malware).
    ServiceDown {
        /// The affected vehicle index.
        vehicle: usize,
    },
}

/// A timestamped event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// Simulation time in seconds.
    pub time: f64,
    /// The event.
    pub event: Event,
}

/// Bounded event log.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<LoggedEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new(100_000)
    }
}

impl EventLog {
    /// A log retaining at most `capacity` events (later events are counted
    /// but dropped).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event at `time`.
    pub fn push(&mut self, time: f64, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(LoggedEvent { time, event });
        } else {
            self.dropped += 1;
        }
    }

    /// All retained events in order.
    pub fn events(&self) -> &[LoggedEvent] {
        &self.events
    }

    /// Number of events dropped after the log filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Counts events matching a predicate.
    ///
    /// # Panics
    ///
    /// Panics when the log has saturated (`dropped > 0`): a count over a
    /// truncated log silently undercounts, which is exactly how saturated
    /// collision/detection tallies used to leak into run summaries
    /// unnoticed. Callers that can accept a lower bound must say so
    /// explicitly via [`count_retained`](Self::count_retained).
    pub fn count(&self, pred: impl FnMut(&Event) -> bool) -> usize {
        assert_eq!(
            self.dropped, 0,
            "EventLog::count on a saturated log ({} events dropped past a capacity of {}): \
             the tally would silently undercount; use count_retained() to accept the lower bound",
            self.dropped, self.capacity
        );
        self.count_retained(pred)
    }

    /// Counts retained events matching a predicate — an explicit *lower
    /// bound* once the log has saturated (check [`dropped`](Self::dropped)).
    pub fn count_retained(&self, mut pred: impl FnMut(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.event)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order() {
        let mut log = EventLog::new(10);
        log.push(1.0, Event::Collision { rear_index: 2 });
        log.push(
            2.0,
            Event::Detection {
                suspect: PrincipalId(5),
            },
        );
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].time, 1.0);
    }

    #[test]
    fn log_bounds_capacity() {
        let mut log = EventLog::new(2);
        for i in 0..5 {
            log.push(i as f64, Event::Collision { rear_index: i });
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn count_filters() {
        let mut log = EventLog::new(10);
        log.push(1.0, Event::Collision { rear_index: 1 });
        log.push(2.0, Event::Collision { rear_index: 2 });
        log.push(
            3.0,
            Event::Detection {
                suspect: PrincipalId(1),
            },
        );
        assert_eq!(log.count(|e| matches!(e, Event::Collision { .. })), 2);
    }

    #[test]
    fn saturated_count_fails_loudly_but_count_retained_saturates() {
        // Regression: `count` on a saturated log used to return the
        // retained-only tally as if it were exact, so summaries silently
        // undercounted once capacity was hit.
        let mut log = EventLog::new(3);
        for i in 0..5 {
            log.push(i as f64, Event::Collision { rear_index: i });
        }
        assert_eq!(log.dropped(), 2);
        let err = std::panic::catch_unwind(|| log.count(|e| matches!(e, Event::Collision { .. })))
            .expect_err("count on a saturated log must panic");
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or_default();
        assert!(
            msg.contains("saturated"),
            "diagnostic names the cause: {msg}"
        );
        assert!(
            msg.contains("count_retained"),
            "points at the escape hatch: {msg}"
        );
        // The explicit lower-bound accessor still works.
        assert_eq!(
            log.count_retained(|e| matches!(e, Event::Collision { .. })),
            3
        );
    }
}
