//! Benign traffic agents built on the [`Attack`] hook interface.
//!
//! The hook interface is really an "external participant" interface: it can
//! inject frames and observe deliveries. A [`JoinerAgent`] is an *honest*
//! vehicle approaching the platoon and requesting to join — the workload the
//! DoS experiment (F4) measures: under a join-flood, can a legitimate
//! vehicle still get in, and how long does it take?

use crate::attack::{Attack, SecurityAttribute};
use crate::world::World;
use platoon_crypto::cert::{Certificate, PrincipalId};
use platoon_crypto::signature::Signer;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::{Beacon, PlatoonId, PlatoonMessage, Role};
use platoon_v2x::medium::Receiver;
use platoon_v2x::message::{ChannelKind, Delivery, Frame, NodeId, Position};
use rand::rngs::StdRng;
use std::any::Any;

/// Credential material the joiner presents.
#[derive(Debug, Clone)]
pub enum JoinerCredentials {
    /// No credentials (plain envelopes).
    None,
    /// Certified signing key issued by the trusted authority.
    Pki {
        /// The joiner's signer.
        signer: Signer,
        /// Its certificate.
        certificate: Certificate,
    },
}

/// Outcome of the joiner's campaign.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct JoinerOutcome {
    /// Join requests sent.
    pub requests_sent: u64,
    /// Whether a `JoinAccept` was received.
    pub accepted: bool,
    /// Whether a `JoinDeny` was received.
    pub denied: bool,
    /// Time from the first request to acceptance, if accepted.
    pub accept_latency: Option<f64>,
}

/// An honest vehicle trailing the platoon and asking to join.
#[derive(Debug)]
pub struct JoinerAgent {
    /// The joiner's identity.
    pub principal: PrincipalId,
    /// Its radio node.
    pub node: NodeId,
    credentials: JoinerCredentials,
    platoon: PlatoonId,
    /// Gap behind the current tail, metres.
    trail_gap: f64,
    /// Resend period in seconds.
    retry_period: f64,
    /// Time before which the agent stays silent.
    start_at: f64,
    first_request_at: Option<f64>,
    last_request_at: f64,
    outcome: JoinerOutcome,
    /// Slot granted on acceptance (drives arrival beaconing).
    granted_slot: Option<u32>,
    seq: u64,
}

impl JoinerAgent {
    /// Creates a joiner that trails the platoon and retries every
    /// `retry_period` seconds.
    pub fn new(
        principal: PrincipalId,
        node: NodeId,
        credentials: JoinerCredentials,
        platoon: PlatoonId,
        retry_period: f64,
    ) -> Self {
        JoinerAgent {
            principal,
            node,
            credentials,
            platoon,
            trail_gap: 40.0,
            retry_period,
            start_at: 0.0,
            first_request_at: None,
            last_request_at: f64::NEG_INFINITY,
            outcome: JoinerOutcome::default(),
            granted_slot: None,
            seq: 0,
        }
    }

    /// Delays the first request until `start_at` seconds.
    pub fn with_start(mut self, start_at: f64) -> Self {
        self.start_at = start_at;
        self
    }

    /// Overrides the gap behind the world's tail vehicle the joiner drives
    /// at (default 40 m). Corridor worlds pass a *negative* gap to place
    /// the joiner up the road, alongside the platoon it wants to join —
    /// the world tail there belongs to the rearmost platoon, kilometres
    /// behind the lead platoon's leader.
    pub fn with_trail_gap(mut self, gap: f64) -> Self {
        self.trail_gap = gap;
        self
    }

    /// The campaign outcome so far.
    pub fn outcome(&self) -> JoinerOutcome {
        self.outcome
    }

    fn position(&self, world: &World) -> Position {
        let tail = world
            .vehicles
            .last()
            .map(|v| v.vehicle.state.position - v.vehicle.params.length)
            .unwrap_or(0.0);
        (tail - self.trail_gap, 0.0)
    }

    fn seal(&self, msg: &PlatoonMessage) -> Envelope {
        match &self.credentials {
            JoinerCredentials::None => Envelope::plain(self.principal, msg),
            JoinerCredentials::Pki {
                signer,
                certificate,
            } => Envelope::sign(self.principal, msg, signer, *certificate),
        }
    }
}

impl Attack for JoinerAgent {
    fn name(&self) -> &'static str {
        "joiner"
    }

    fn attribute(&self) -> SecurityAttribute {
        // Benign agent; availability is what it measures.
        SecurityAttribute::Availability
    }

    fn on_air(&mut self, world: &mut World, _rng: &mut StdRng, frames: &mut Vec<Frame>) {
        let now = world.time;
        let origin = self.position(world);
        if self.outcome.accepted {
            // Beacon the arrival position so the leader completes the join.
            if let Some(slot) = self.granted_slot {
                self.seq += 1;
                let spacing =
                    world.vehicles[0].vehicle.params.length + 10.0 /* nominal gap */;
                let slot_pos = world.vehicles[0].vehicle.state.position - slot as f64 * spacing;
                let beacon = PlatoonMessage::Beacon(Beacon {
                    sender: self.principal,
                    platoon: self.platoon,
                    role: Role::JoinLeave,
                    seq: self.seq,
                    timestamp: now,
                    position: slot_pos,
                    speed: world.vehicles[0].vehicle.state.speed,
                    accel: 0.0,
                    length: world.vehicles[0].vehicle.params.length,
                });
                frames.push(Frame {
                    sender: self.node,
                    origin,
                    power_dbm: world.medium.dsrc.default_tx_power_dbm,
                    channel: ChannelKind::Dsrc,
                    payload: self.seal(&beacon).encode().into(),
                });
            }
            return;
        }
        if self.outcome.denied || now < self.start_at {
            return;
        }
        if now - self.last_request_at < self.retry_period - 1e-9 {
            return;
        }
        self.last_request_at = now;
        self.first_request_at.get_or_insert(now);
        self.outcome.requests_sent += 1;
        let msg = PlatoonMessage::JoinRequest {
            requester: self.principal,
            platoon: self.platoon,
            position: origin.0,
            timestamp: now,
        };
        frames.push(Frame {
            sender: self.node,
            origin,
            power_dbm: world.medium.dsrc.default_tx_power_dbm,
            channel: ChannelKind::Dsrc,
            payload: self.seal(&msg).encode().into(),
        });
    }

    fn observe(&mut self, world: &mut World, _rng: &mut StdRng, deliveries: &[Delivery]) {
        let now = world.time;
        for d in deliveries {
            if d.receiver != self.node {
                continue;
            }
            let Ok(env) = Envelope::decode(&d.payload) else {
                continue;
            };
            let Ok(msg) = env.open_unverified() else {
                continue;
            };
            match msg {
                PlatoonMessage::JoinAccept {
                    requester, slot, ..
                } if requester == self.principal && !self.outcome.accepted => {
                    self.outcome.accepted = true;
                    self.granted_slot = Some(slot);
                    self.outcome.accept_latency = self.first_request_at.map(|t| (now - t).max(0.0));
                }
                PlatoonMessage::JoinDeny { requester, .. } if requester == self.principal => {
                    self.outcome.denied = true;
                }
                _ => {}
            }
        }
    }

    fn receiver(&self, world: &World) -> Option<Receiver> {
        Some(Receiver {
            id: self.node,
            position: self.position(world),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
