//! Deterministic parallel experiment harness with golden-summary snapshots.
//!
//! The experiment drivers (the scenario matrix, the Table II/III
//! reproductions, the bench report) all share the same shape: a batch of
//! independent scenario runs whose [`RunSummary`]s are tabulated afterwards.
//! This module gives that shape one engine:
//!
//! * [`Batch`] — a queue of labelled jobs executed across a `std::thread`
//!   worker pool. Each job receives a seed derived *only* from its label and
//!   the batch base seed ([`derive_seed`]), so results are identical
//!   regardless of worker count or scheduling order. Jobs are crash-isolated:
//!   a panicking (or, with [`Batch::set_job_budget`], hung) job becomes a
//!   [`JobOutcome::Failed`] entry instead of taking down the batch.
//! * [`BatchReport`] — the collected summaries in submission order, with a
//!   canonical JSON rendering ([`BatchReport::to_canonical_json`]) that is
//!   byte-for-byte reproducible and records failed jobs explicitly.
//! * [`golden`] — snapshot regression: compare a canonical JSON document
//!   against a committed golden file with explicit per-value float
//!   tolerances, refresh with `UPDATE_GOLDEN=1`, and fail with a readable
//!   per-path diff otherwise.
//! * [`json`] — the tiny canonical JSON writer and parser the above are
//!   built on (the workspace's serde is an offline no-op stand-in, so
//!   serialization is explicit and therefore stable by construction).

use crate::exec::{self, JobTiming};
use crate::metrics::RunSummary;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, PoisonError};
use std::time::{Duration, Instant};

pub use crate::exec::JobOutcome;

/// Derives the per-job seed from the job label and the batch base seed.
///
/// FNV-1a over the label bytes, then mixed with the base seed through two
/// SplitMix64-style avalanche rounds. Pure function of `(label, base_seed)`:
/// neither worker count nor submission order can influence it, which is what
/// makes batch results scheduling-independent.
pub fn derive_seed(label: &str, base_seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    let mut z = h ^ base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// The default worker-pool width: the machine's available parallelism,
/// falling back to 4 when it cannot be queried. Results never depend on
/// this — only wall-clock time does.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// One labelled unit of work: a closure from the derived seed to its result.
///
/// The closure owns everything it needs (scenario, attack/defense setup) and
/// builds the `Engine` *inside* the worker, so no shared mutable state exists
/// between jobs.
pub struct BatchJob<T> {
    /// Stable label; the seed is derived from it unless pinned.
    pub label: String,
    /// Pinned seed, bypassing label derivation (experiment drivers pin the
    /// canonical scenario seed so measured tables stay comparable across
    /// refactors; `None` = derive from the label).
    pub seed: Option<u64>,
    /// The work. Receives the job's seed.
    pub run: Box<dyn FnOnce(u64) -> T + Send>,
}

/// The result of one job, tagged with its label and derived seed.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchEntry<T> {
    /// The job's label.
    pub label: String,
    /// The seed the job ran with.
    pub seed: u64,
    /// What the job returned.
    pub value: T,
}

/// A batch of labelled jobs executed on a worker pool.
///
/// Generic over the job output so experiment drivers can return enriched
/// results (e.g. a summary plus a scalar impact extracted while the engine
/// is still alive); [`Batch<RunSummary>::run_report`] is the common case.
///
/// # Examples
///
/// ```
/// use platoon_sim::harness::Batch;
/// use platoon_sim::prelude::*;
///
/// let mut batch = Batch::new(2021);
/// for n in [3usize, 4] {
///     batch.push(format!("grid/{n}"), move |seed| {
///         let s = Scenario::builder()
///             .label(format!("grid/{n}"))
///             .vehicles(n)
///             .duration(5.0)
///             .seed(seed)
///             .build();
///         Engine::new(s).run()
///     });
/// }
/// let report = batch.run_report(2);
/// assert_eq!(report.entries.len(), 2);
/// assert_eq!(report.entries[0].label, "grid/3");
/// ```
pub struct Batch<T> {
    base_seed: u64,
    jobs: Vec<BatchJob<T>>,
    job_budget: Option<Duration>,
}

impl<T: Send + 'static> Batch<T> {
    /// Creates an empty batch with the given base seed.
    pub fn new(base_seed: u64) -> Self {
        Batch {
            base_seed,
            jobs: Vec::new(),
            job_budget: None,
        }
    }

    /// Caps each job's wall-clock time.
    ///
    /// An over-budget job is reported as [`JobOutcome::Failed`] and the rest
    /// of the grid keeps running, so one hung cell cannot stall a batch.
    /// Budgeted jobs run on a watchdog thread that is joined as soon as the
    /// job finishes under budget; only a job that never returns detaches and
    /// leaks its thread until process exit — the budget bounds grid latency,
    /// not resource reclamation for genuinely hung jobs. Off by default (no
    /// behavior change): results of *completing* jobs are identical either
    /// way.
    pub fn set_job_budget(&mut self, budget: Duration) {
        self.job_budget = Some(budget);
    }

    /// The batch base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Queues one job; its seed will be `derive_seed(label, base_seed)`.
    pub fn push(&mut self, label: impl Into<String>, run: impl FnOnce(u64) -> T + Send + 'static) {
        self.jobs.push(BatchJob {
            label: label.into(),
            seed: None,
            run: Box::new(run),
        });
    }

    /// Queues one job with a pinned seed instead of label derivation. The
    /// pinned seed is recorded in the entry (and any golden built from it),
    /// so reports stay honest about what actually ran.
    pub fn push_with_seed(
        &mut self,
        label: impl Into<String>,
        seed: u64,
        run: impl FnOnce(u64) -> T + Send + 'static,
    ) {
        self.jobs.push(BatchJob {
            label: label.into(),
            seed: Some(seed),
            run: Box::new(run),
        });
    }

    /// Executes every job across `workers` threads and returns the entries
    /// in *submission order* (never completion order).
    ///
    /// Strict façade over [`run_outcomes`](Self::run_outcomes): panics with
    /// the offending label and reason if any job failed, which is what the
    /// experiment drivers want (a measured table with silently missing cells
    /// would be worse than an abort). Batches that must degrade gracefully —
    /// the robustness grid, anything accepting injected crashes — call
    /// `run_outcomes` instead.
    pub fn run(self, workers: usize) -> Vec<BatchEntry<T>> {
        self.run_outcomes(workers)
            .into_iter()
            .map(|e| match e.value {
                JobOutcome::Ok(value) => BatchEntry {
                    label: e.label,
                    seed: e.seed,
                    value,
                },
                JobOutcome::Failed { reason } => {
                    panic!("batch job {:?} failed: {reason}", e.label)
                }
            })
            .collect()
    }

    /// Executes every job across `workers` threads with per-job crash
    /// isolation, returning one [`JobOutcome`] entry per job in *submission
    /// order* (never completion order).
    ///
    /// Work is handed out through an atomic cursor; each worker pops the
    /// next unclaimed job, runs it (inside `catch_unwind`, plus a watchdog
    /// when a [budget](Self::set_job_budget) is set) with its derived seed,
    /// and sends the outcome back tagged with its slot index. Because the
    /// seed depends only on `(label, base_seed)` and results are re-slotted
    /// by index, the returned vector is identical for any `workers >= 1`.
    ///
    /// A panicking job yields `Failed { reason }` carrying the panic message;
    /// every other job still runs and reports. Job-queue locks are taken
    /// poison-tolerantly, and a slot whose result never arrives is
    /// synthesized as `Failed` rather than aborting the collection — the
    /// harness itself has no panic path left on the job's account.
    pub fn run_outcomes(self, workers: usize) -> Vec<BatchEntry<JobOutcome<T>>> {
        self.run_outcomes_timed(workers)
            .into_iter()
            .map(|(entry, _timing)| entry)
            .collect()
    }

    /// [`run_outcomes`](Self::run_outcomes), additionally reporting each
    /// job's [`JobTiming`] — queue wait (time between batch start and a
    /// worker claiming the job) split from execution time. Timing is
    /// measurement only: it varies run to run and never appears in the
    /// canonical documents, but a service scheduling many batches needs it
    /// to tell scheduler delay apart from slow jobs (the per-job
    /// [budget](Self::set_job_budget) is charged against execution time
    /// only).
    pub fn run_outcomes_timed(self, workers: usize) -> Vec<(BatchEntry<JobOutcome<T>>, JobTiming)> {
        let base_seed = self.base_seed;
        let budget = self.job_budget;
        let n = self.jobs.len();
        // Every job is effectively enqueued the moment the batch starts.
        let enqueued_at = Instant::now();
        // Label + seed survive outside the job slots so a job whose result
        // never arrives still yields a labelled Failed entry.
        let meta: Vec<(String, u64)> = self
            .jobs
            .iter()
            .map(|j| {
                let seed = j.seed.unwrap_or_else(|| derive_seed(&j.label, base_seed));
                (j.label.clone(), seed)
            })
            .collect();
        let jobs: Vec<Mutex<Option<BatchJob<T>>>> =
            self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, JobOutcome<T>, JobTiming)>();

        std::thread::scope(|scope| {
            for _ in 0..workers.max(1).min(n.max(1)) {
                let tx = tx.clone();
                let jobs = &jobs;
                let cursor = &cursor;
                let meta = &meta;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let claimed = jobs[i]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take();
                    let Some(job) = claimed else { continue };
                    let queue_wait = enqueued_at.elapsed();
                    let executed = exec::execute_job(job.run, meta[i].1, budget, queue_wait);
                    if tx.send((i, executed.outcome, executed.timing)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<(JobOutcome<T>, JobTiming)>> = (0..n).map(|_| None).collect();
        for (i, outcome, timing) in rx {
            slots[i] = Some((outcome, timing));
        }
        slots
            .into_iter()
            .zip(meta)
            .map(|(slot, (label, seed))| {
                let (value, timing) = slot.unwrap_or((
                    JobOutcome::Failed {
                        reason: "job never reported a result".into(),
                    },
                    JobTiming::default(),
                ));
                (BatchEntry { label, seed, value }, timing)
            })
            .collect()
    }
}

impl Batch<RunSummary> {
    /// Convenience: queues a plain scenario run. The scenario's own seed is
    /// *replaced* by the derived seed, and its label becomes the job label.
    pub fn push_scenario(&mut self, scenario: crate::scenario::Scenario) {
        let label = scenario.label.clone();
        self.push(label, move |seed| {
            let mut scenario = scenario;
            scenario.seed = seed;
            crate::engine::Engine::new(scenario).run()
        });
    }

    /// Runs the batch and wraps the outcomes in a [`BatchReport`].
    ///
    /// Failed jobs (panic / blown budget) do **not** abort the report — they
    /// appear as failed entries and render as `"error"` objects in the
    /// canonical JSON.
    pub fn run_report(self, workers: usize) -> BatchReport {
        let base_seed = self.base_seed;
        BatchReport {
            base_seed,
            entries: self.run_outcomes(workers),
        }
    }
}

/// A completed batch of [`RunSummary`]s (or per-job failures) in submission
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// The batch base seed the per-job seeds were derived from.
    pub base_seed: u64,
    /// One entry per job, in submission order.
    pub entries: Vec<BatchEntry<JobOutcome<RunSummary>>>,
}

impl BatchReport {
    /// Looks an entry up by label.
    pub fn entry(&self, label: &str) -> Option<&BatchEntry<JobOutcome<RunSummary>>> {
        self.entries.iter().find(|e| e.label == label)
    }

    /// The summary for a label, panicking with the label when the entry is
    /// missing or the job failed.
    pub fn summary(&self, label: &str) -> &RunSummary {
        self.entry(label)
            .unwrap_or_else(|| panic!("no batch entry labelled {label:?}"))
            .value
            .as_ok()
            .unwrap_or_else(|| panic!("batch entry {label:?} failed"))
    }

    /// Successful entries as `(entry, summary)` pairs, in submission order.
    pub fn summaries(
        &self,
    ) -> impl Iterator<Item = (&BatchEntry<JobOutcome<RunSummary>>, &RunSummary)> {
        self.entries
            .iter()
            .filter_map(|e| e.value.as_ok().map(|s| (e, s)))
    }

    /// Failed entries as `(label, reason)` pairs, in submission order.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .filter_map(|e| e.value.failure().map(|r| (e.label.as_str(), r)))
    }

    /// Renders the report as canonical JSON: fixed field order, `{:?}`
    /// (shortest round-trip) float formatting, non-finite floats as the
    /// strings `"inf"` / `"-inf"` / `"nan"`, two-space indentation. Byte
    /// stable for identical inputs, which is what the golden suite and the
    /// worker-count determinism guarantee rest on.
    ///
    /// Successful entries render exactly as they always have (`label`,
    /// `seed`, `summary`), so goldens recorded before crash isolation remain
    /// valid; a failed entry renders its reason under `"error"` instead of a
    /// `"summary"` object.
    pub fn to_canonical_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj(|w| {
            w.field_u64("base_seed", self.base_seed);
            w.field_arr("entries", |w| {
                for e in &self.entries {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("label", &e.label);
                            w.field_u64("seed", e.seed);
                            match &e.value {
                                JobOutcome::Ok(s) => {
                                    w.field_obj("summary", |w| write_run_summary(w, s));
                                }
                                JobOutcome::Failed { reason } => {
                                    w.field_str("error", reason);
                                }
                            }
                        })
                    });
                }
            });
        });
        w.finish()
    }
}

/// Canonical field-by-field rendering of a [`RunSummary`] — the shared
/// document shape of the golden snapshots, the batch reports, and the job
/// service's cached results (which must stay byte-identical to a fresh
/// run's rendering).
pub fn write_run_summary(w: &mut json::Writer, s: &RunSummary) {
    w.field_str("label", &s.label);
    w.field_f64("duration", s.duration);
    w.field_u64("vehicles", s.vehicles as u64);
    w.field_f64("max_spacing_error", s.max_spacing_error);
    w.field_f64("mean_abs_spacing_error", s.mean_abs_spacing_error);
    w.field_f64("oscillation_energy", s.oscillation_energy);
    w.field_f64("worst_amplification", s.worst_amplification);
    w.field_bool("string_stable", s.string_stable);
    w.field_u64("collisions", s.collisions as u64);
    w.field_f64("min_gap", s.min_gap);
    w.field_f64("min_ttc", s.min_ttc);
    w.field_f64("fuel_l_per_100km", s.fuel_l_per_100km);
    w.field_f64("leader_tail_pdr", s.leader_tail_pdr);
    w.field_f64("tail_leader_age_mean", s.tail_leader_age_mean);
    w.field_f64("fragmented_fraction", s.fragmented_fraction);
    w.field_f64("service_down_fraction", s.service_down_fraction);
    w.field_obj("maneuvers", |w| {
        let m = &s.maneuvers;
        w.field_u64("join_requests", m.join_requests);
        w.field_u64("joins_accepted", m.joins_accepted);
        w.field_u64("joins_denied", m.joins_denied);
        w.field_u64("joins_dropped", m.joins_dropped);
        w.field_u64("joins_completed", m.joins_completed);
        w.field_u64("joins_timed_out", m.joins_timed_out);
        w.field_u64("leaves", m.leaves);
        w.field_u64("splits", m.splits);
        w.field_f64("wasted_gap_seconds", m.wasted_gap_seconds);
    });
    w.field_u64("rejected_messages", s.rejected_messages as u64);
    w.field_u64("detections", s.detections as u64);
    w.field_u64("events_dropped", s.events_dropped);
    w.field_obj("perf", |w| s.perf.write_canonical(w));
    // Rendered only when a tracer was attached, so untraced goldens keep
    // their exact historical shape.
    if let Some(trace) = &s.trace {
        w.field_obj("trace", |w| trace.write_canonical(w));
    }
}

pub mod json {
    //! A canonical JSON writer and a minimal parser.
    //!
    //! The writer produces deterministic output (explicit field order,
    //! shortest-round-trip floats, non-finite floats as strings). The parser
    //! accepts exactly the documents the writer emits plus ordinary
    //! hand-edited JSON — enough to load goldens back for a tolerance-aware
    //! diff without an external dependency.

    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as `f64`; also covers `"inf"`-style strings on
        /// the comparison path, see [`Value::as_f64`]).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, preserving insertion order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Numeric view: numbers verbatim, plus the writer's non-finite
        /// encodings (`"inf"`, `"-inf"`, `"nan"`).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                Value::Str(s) => match s.as_str() {
                    "inf" => Some(f64::INFINITY),
                    "-inf" => Some(f64::NEG_INFINITY),
                    "nan" => Some(f64::NAN),
                    _ => None,
                },
                _ => None,
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match parse_value(b, pos)? {
                        Value::Str(s) => s,
                        other => return Err(format!("object key must be a string, got {other:?}")),
                    };
                    skip_ws(b, pos);
                    expect(b, pos, b':')?;
                    let value = parse_value(b, pos)?;
                    fields.push((key, value));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => {
                *pos += 1;
                let mut s = String::new();
                loop {
                    match b.get(*pos) {
                        None => return Err("unterminated string".into()),
                        Some(b'"') => {
                            *pos += 1;
                            return Ok(Value::Str(s));
                        }
                        Some(b'\\') => {
                            *pos += 1;
                            match b.get(*pos) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'/') => s.push('/'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'r') => s.push('\r'),
                                Some(b'u') => {
                                    let hex =
                                        b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                        16,
                                    )
                                    .map_err(|e| e.to_string())?;
                                    s.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                                    *pos += 4;
                                }
                                other => return Err(format!("bad escape {other:?}")),
                            }
                            *pos += 1;
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar (multi-byte safe).
                            let rest =
                                std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                            let c = rest.chars().next().expect("non-empty");
                            s.push(c);
                            *pos += c.len_utf8();
                        }
                    }
                }
            }
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                text.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| format!("bad number {text:?} at byte {start}"))
            }
        }
    }

    /// Canonical JSON writer: fixed field order, `{:?}` floats, non-finite
    /// floats as strings. [`Writer::new`] pretty-prints with a two-space
    /// indent (the golden-document shape); [`Writer::compact`] emits the
    /// same document on a single line (the JSONL trace-record shape).
    /// Both shapes parse back through [`parse`] identically.
    pub struct Writer {
        out: String,
        indent: usize,
        /// Whether the current container already has a member (comma logic).
        needs_comma: Vec<bool>,
        /// Pretty (indented, one member per line) vs compact (single line).
        pretty: bool,
    }

    impl Default for Writer {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Writer {
        /// Creates an empty pretty-printing writer.
        pub fn new() -> Self {
            Writer {
                out: String::new(),
                indent: 0,
                needs_comma: Vec::new(),
                pretty: true,
            }
        }

        /// Creates an empty single-line writer (for JSONL records).
        pub fn compact() -> Self {
            Writer {
                out: String::new(),
                indent: 0,
                needs_comma: Vec::new(),
                pretty: false,
            }
        }

        /// Finishes, returning the document — with a trailing newline when
        /// pretty, without one when compact (JSONL callers join lines
        /// themselves).
        pub fn finish(mut self) -> String {
            if self.pretty {
                self.out.push('\n');
            }
            self.out
        }

        fn newline_item(&mut self) {
            if let Some(last) = self.needs_comma.last_mut() {
                if *last {
                    self.out.push(',');
                    if !self.pretty {
                        self.out.push(' ');
                    }
                }
                *last = true;
            }
            if self.pretty && !self.needs_comma.is_empty() {
                self.out.push('\n');
                for _ in 0..self.indent {
                    self.out.push_str("  ");
                }
            }
        }

        fn open(&mut self, c: char) {
            self.out.push(c);
            self.indent += 1;
            self.needs_comma.push(false);
        }

        fn close(&mut self, c: char) {
            let had_items = self.needs_comma.pop().unwrap_or(false);
            self.indent -= 1;
            if self.pretty && had_items {
                self.out.push('\n');
                for _ in 0..self.indent {
                    self.out.push_str("  ");
                }
            }
            self.out.push(c);
        }

        /// Writes an object via the callback.
        pub fn obj(&mut self, f: impl FnOnce(&mut Writer)) {
            self.open('{');
            f(self);
            self.close('}');
        }

        fn key(&mut self, name: &str) {
            self.newline_item();
            self.push_string(name);
            self.out.push_str(": ");
        }

        /// Writes a string field.
        pub fn field_str(&mut self, name: &str, value: &str) {
            self.key(name);
            self.push_string(value);
        }

        /// Writes an unsigned integer field.
        pub fn field_u64(&mut self, name: &str, value: u64) {
            self.key(name);
            self.out.push_str(&value.to_string());
        }

        /// Writes a boolean field.
        pub fn field_bool(&mut self, name: &str, value: bool) {
            self.key(name);
            self.out.push_str(if value { "true" } else { "false" });
        }

        /// Writes a float field: `{:?}` for finite values (shortest string
        /// that round-trips), `"inf"` / `"-inf"` / `"nan"` otherwise.
        pub fn field_f64(&mut self, name: &str, value: f64) {
            self.key(name);
            self.push_f64(value);
        }

        /// Writes a float array element.
        pub fn push_f64(&mut self, value: f64) {
            if value.is_finite() {
                self.out.push_str(&format!("{value:?}"));
            } else if value.is_nan() {
                self.out.push_str("\"nan\"");
            } else if value > 0.0 {
                self.out.push_str("\"inf\"");
            } else {
                self.out.push_str("\"-inf\"");
            }
        }

        /// Writes a string array element.
        pub fn push_str(&mut self, value: &str) {
            self.push_string(value);
        }

        /// Writes a nested object field.
        pub fn field_obj(&mut self, name: &str, f: impl FnOnce(&mut Writer)) {
            self.key(name);
            self.obj(f);
        }

        /// Writes a field whose value is an *already-rendered* JSON
        /// document, verbatim.
        ///
        /// The caller owns the invariants: `raw` must be one complete JSON
        /// value with no trailing newline (compact-writer output qualifies).
        /// This is how the job service embeds cached result documents into
        /// batch reports without re-parsing them — byte preservation is the
        /// whole point of the cache.
        pub fn field_raw(&mut self, name: &str, raw: &str) {
            self.key(name);
            self.out.push_str(raw);
        }

        /// Writes an array field; use [`Writer::elem`] inside the callback.
        pub fn field_arr(&mut self, name: &str, f: impl FnOnce(&mut Writer)) {
            self.key(name);
            self.open('[');
            f(self);
            self.close(']');
        }

        /// Writes one array element via the callback.
        pub fn elem(&mut self, f: impl FnOnce(&mut Writer)) {
            self.newline_item();
            // The callback writes the value itself (object, field, …) —
            // suppress its own comma/newline logic for the first token.
            let depth = self.needs_comma.len();
            f(self);
            debug_assert_eq!(depth, self.needs_comma.len(), "unbalanced elem callback");
        }

        fn push_string(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\t' => self.out.push_str("\\t"),
                    '\r' => self.out.push_str("\\r"),
                    c if (c as u32) < 0x20 => self.out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
    }
}

pub mod golden {
    //! Golden-snapshot comparison with explicit tolerances.
    //!
    //! `check` compares a canonical JSON document against a committed golden
    //! file. On mismatch it fails with one line per differing path; setting
    //! `UPDATE_GOLDEN=1` rewrites the golden instead and passes.

    use super::json::{self, Value};
    use std::path::Path;

    /// Float comparison policy. A numeric pair passes when
    /// `|a - g| <= abs_tol + rel_tol * |g|`; non-finite values must match
    /// exactly (by bit class).
    #[derive(Clone, Copy, Debug)]
    pub struct Tolerance {
        /// Absolute tolerance.
        pub abs_tol: f64,
        /// Relative tolerance (scaled by the golden value's magnitude).
        pub rel_tol: f64,
    }

    impl Tolerance {
        /// Exact comparison (still accepts `-0.0 == 0.0`).
        pub fn exact() -> Self {
            Tolerance {
                abs_tol: 0.0,
                rel_tol: 0.0,
            }
        }

        /// The default snapshot policy: tight enough that any behavioural
        /// change trips it, loose enough to absorb last-digit formatting
        /// churn across toolchains.
        pub fn snapshot() -> Self {
            Tolerance {
                abs_tol: 1e-9,
                rel_tol: 1e-9,
            }
        }

        fn accepts(&self, golden: f64, actual: f64) -> bool {
            if golden.is_nan() {
                return actual.is_nan();
            }
            if golden.is_infinite() || actual.is_infinite() {
                return golden == actual;
            }
            (actual - golden).abs() <= self.abs_tol + self.rel_tol * golden.abs()
        }
    }

    /// The outcome of a golden comparison.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Outcome {
        /// The document matches the golden within tolerance.
        Match,
        /// `UPDATE_GOLDEN=1`: the golden file was (re)written.
        Updated,
    }

    /// Whether the environment requests a golden refresh.
    pub fn update_requested() -> bool {
        std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
    }

    /// Compares `actual_json` against the golden at `path`.
    ///
    /// * Golden missing or `UPDATE_GOLDEN=1` → writes the file, returns
    ///   [`Outcome::Updated`].
    /// * Match within `tol` → [`Outcome::Match`].
    /// * Mismatch → `Err` with a readable per-path diff, plus the refresh
    ///   instructions.
    pub fn check(path: &Path, actual_json: &str, tol: Tolerance) -> Result<Outcome, String> {
        if update_requested() || !path.exists() {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
            std::fs::write(path, actual_json)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            return Ok(Outcome::Updated);
        }
        let golden_text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let golden = json::parse(&golden_text)
            .map_err(|e| format!("golden {} is not valid JSON: {e}", path.display()))?;
        let actual = json::parse(actual_json)
            .map_err(|e| format!("actual document is not valid JSON: {e}"))?;

        let mut diffs = Vec::new();
        diff_values("$", &golden, &actual, tol, &mut diffs);
        if diffs.is_empty() {
            return Ok(Outcome::Match);
        }
        let shown = diffs
            .iter()
            .take(25)
            .cloned()
            .collect::<Vec<_>>()
            .join("\n  ");
        let more = if diffs.len() > 25 {
            format!("\n  … and {} more differences", diffs.len() - 25)
        } else {
            String::new()
        };
        Err(format!(
            "golden mismatch against {} ({} difference{}):\n  {shown}{more}\n\
             If the behaviour change is intended, refresh with:\n  \
             UPDATE_GOLDEN=1 cargo test",
            path.display(),
            diffs.len(),
            if diffs.len() == 1 { "" } else { "s" },
        ))
    }

    /// Convenience for tests: panics with the diff on mismatch.
    pub fn assert_matches(path: &Path, actual_json: &str, tol: Tolerance) {
        match check(path, actual_json, tol) {
            Ok(_) => {}
            Err(diff) => panic!("{diff}"),
        }
    }

    fn diff_values(
        path: &str,
        golden: &Value,
        actual: &Value,
        tol: Tolerance,
        out: &mut Vec<String>,
    ) {
        // Numbers (including the non-finite string encodings) compare with
        // tolerance; everything else structurally.
        if let (Some(g), Some(a)) = (golden.as_f64(), actual.as_f64()) {
            if !tol.accepts(g, a) {
                out.push(format!("{path}: golden {g:?} vs actual {a:?}"));
            }
            return;
        }
        match (golden, actual) {
            (Value::Obj(g), Value::Obj(a)) => {
                for (k, gv) in g {
                    match actual.get(k) {
                        Some(av) => diff_values(&format!("{path}.{k}"), gv, av, tol, out),
                        None => out.push(format!("{path}.{k}: missing from actual")),
                    }
                }
                for (k, _) in a {
                    if golden.get(k).is_none() {
                        out.push(format!("{path}.{k}: not in golden"));
                    }
                }
            }
            (Value::Arr(g), Value::Arr(a)) => {
                if g.len() != a.len() {
                    out.push(format!(
                        "{path}: array length golden {} vs actual {}",
                        g.len(),
                        a.len()
                    ));
                }
                for (i, (gv, av)) in g.iter().zip(a.iter()).enumerate() {
                    diff_values(&format!("{path}[{i}]"), gv, av, tol, out);
                }
            }
            (g, a) if g == a => {}
            (g, a) => out.push(format!("{path}: golden {g:?} vs actual {a:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::golden::Tolerance;
    use super::json::Value;
    use super::*;
    use crate::exec::panic_message;
    use crate::scenario::Scenario;
    use std::panic::AssertUnwindSafe;

    #[test]
    fn derived_seeds_are_stable_and_label_sensitive() {
        let a = derive_seed("grid/cacc/none", 2021);
        assert_eq!(a, derive_seed("grid/cacc/none", 2021), "pure function");
        assert_ne!(a, derive_seed("grid/cacc/keys", 2021), "label matters");
        assert_ne!(a, derive_seed("grid/cacc/none", 2022), "base seed matters");
    }

    #[test]
    fn batch_preserves_submission_order_under_contention() {
        let mut batch: Batch<usize> = Batch::new(0);
        for i in 0..32usize {
            // Reverse sleep: late submissions finish first.
            batch.push(format!("job/{i}"), move |_seed| {
                std::thread::sleep(std::time::Duration::from_micros((32 - i) as u64 * 50));
                i
            });
        }
        let entries = batch.run(8);
        let order: Vec<usize> = entries.iter().map(|e| e.value).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_fails_alone_and_the_rest_survive() {
        // Regression: a panicking job used to poison the shared slot mutex,
        // turning the next worker's `.expect("job slot poisoned")` into a
        // batch-wide abort. It must now degrade to one Failed entry.
        let mut batch: Batch<usize> = Batch::new(5);
        for i in 0..6usize {
            batch.push(format!("iso/{i}"), move |_seed| {
                if i == 3 {
                    panic!("deliberate test panic");
                }
                i
            });
        }
        let entries = batch.run_outcomes(4);
        assert_eq!(entries.len(), 6, "every job reports, crashed or not");
        let ok: Vec<usize> = entries
            .iter()
            .filter_map(|e| e.value.as_ok().copied())
            .collect();
        assert_eq!(ok, vec![0, 1, 2, 4, 5], "N-1 results survive");
        let failed = &entries[3];
        assert_eq!(failed.label, "iso/3");
        assert_eq!(failed.seed, derive_seed("iso/3", 5), "seed still recorded");
        let reason = failed.value.failure().expect("job 3 failed");
        assert!(
            reason.contains("deliberate test panic"),
            "panic message surfaces: {reason}"
        );
    }

    #[test]
    fn strict_run_panics_with_the_failing_label() {
        let mut batch: Batch<usize> = Batch::new(1);
        batch.push("fine", |_| 1);
        batch.push("doomed", |_| panic!("strict-mode probe"));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| batch.run(2)))
            .expect_err("strict run re-raises job failures");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("doomed"), "label named: {msg}");
        assert!(msg.contains("strict-mode probe"), "reason named: {msg}");
    }

    #[test]
    fn over_budget_job_times_out_without_stalling_the_batch() {
        let mut batch: Batch<usize> = Batch::new(9);
        batch.set_job_budget(Duration::from_millis(100));
        batch.push("quick/a", |_| 1);
        batch.push("hung", |_| {
            std::thread::sleep(Duration::from_secs(600));
            2
        });
        batch.push("quick/b", |_| 3);
        let start = std::time::Instant::now();
        let entries = batch.run_outcomes(2);
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "the hung job must not stall the grid"
        );
        assert_eq!(entries[0].value, JobOutcome::Ok(1));
        assert_eq!(entries[2].value, JobOutcome::Ok(3));
        let reason = entries[1].value.failure().expect("hung job timed out");
        assert!(
            reason.contains("wall-time budget"),
            "budget diagnostics: {reason}"
        );
    }

    #[test]
    fn timed_outcomes_split_queue_wait_from_execution() {
        // One worker, two jobs that each sleep: the second job's queue wait
        // must cover (at least) the first job's execution, while its own
        // execution stays short — the split a service-side timeout needs to
        // avoid blaming scheduler delay on the job.
        let mut batch: Batch<usize> = Batch::new(3);
        for i in 0..2usize {
            batch.push(format!("timed/{i}"), move |_seed| {
                std::thread::sleep(Duration::from_millis(60));
                i
            });
        }
        let timed = batch.run_outcomes_timed(1);
        assert_eq!(timed.len(), 2);
        let (first, second) = (&timed[0], &timed[1]);
        assert!(!first.0.value.is_failed() && !second.0.value.is_failed());
        assert!(
            second.1.queue_wait >= first.1.execution,
            "serial second job queued behind the first: waited {:?}, first ran {:?}",
            second.1.queue_wait,
            first.1.execution
        );
        assert!(
            second.1.execution < second.1.queue_wait + Duration::from_millis(40),
            "queue wait must not be folded into execution time: {:?}",
            second.1
        );
    }

    #[test]
    fn budget_does_not_count_queue_wait() {
        // With one worker and an 80 ms budget, three 50 ms jobs queue up to
        // ~100 ms of scheduler delay for the tail job — which must still
        // complete, because the budget clock starts at claim time.
        let mut batch: Batch<usize> = Batch::new(4);
        batch.set_job_budget(Duration::from_millis(80));
        for i in 0..3usize {
            batch.push(format!("q/{i}"), move |_seed| {
                std::thread::sleep(Duration::from_millis(50));
                i
            });
        }
        let entries = batch.run_outcomes(1);
        for e in &entries {
            assert!(
                !e.value.is_failed(),
                "{}: queue wait was charged against the budget: {:?}",
                e.label,
                e.value.failure()
            );
        }
    }

    #[test]
    fn raw_fields_embed_rendered_documents_verbatim() {
        let inner = {
            let mut w = json::Writer::compact();
            w.obj(|w| {
                w.field_u64("x", 1);
                w.field_f64("y", f64::INFINITY);
            });
            w.finish()
        };
        let mut w = json::Writer::new();
        w.obj(|w| {
            w.field_str("label", "cell");
            w.field_raw("document", &inner);
            w.field_u64("after", 2);
        });
        let text = w.finish();
        assert!(text.contains(&inner), "raw document embedded verbatim");
        let v = json::parse(&text).expect("document with raw field parses");
        assert_eq!(
            v.get("document").and_then(|d| d.get("x")),
            Some(&Value::Num(1.0))
        );
        assert_eq!(v.get("after"), Some(&Value::Num(2.0)));
    }

    /// Live threads of this process (Linux: one /proc/self/task entry per
    /// thread).
    #[cfg(target_os = "linux")]
    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .expect("procfs available on linux")
            .count()
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn completed_budgeted_jobs_reap_their_watchdog_threads() {
        // Regression: watchdog threads of jobs that finished *under* budget
        // were dropped without joining, leaking one sleeping thread per
        // completed job for the life of the process. They must now be
        // joined before the batch returns.
        let baseline = thread_count();
        let mut batch: Batch<usize> = Batch::new(21);
        batch.set_job_budget(Duration::from_secs(120));
        for i in 0..24usize {
            batch.push(format!("wd/{i}"), move |_seed| i);
        }
        let entries = batch.run_outcomes(4);
        assert_eq!(entries.len(), 24);
        assert!(entries.iter().all(|e| !e.value.is_failed()));
        let after = thread_count();
        assert!(
            after <= baseline + 1,
            "watchdog threads leaked: {baseline} before, {after} after 24 budgeted jobs"
        );
    }

    #[test]
    fn compact_writer_is_single_line_and_parses_identically() {
        let build = |mut w: json::Writer| {
            w.obj(|w| {
                w.field_u64("tick", 7);
                w.field_f64("nan", f64::NAN);
                w.field_obj("detail", |w| {
                    w.field_str("kind", "medium_step");
                    w.field_arr("xs", |w| {
                        for x in [1.5, -0.25] {
                            w.elem(|w| w.push_f64(x));
                        }
                    });
                });
            });
            w.finish()
        };
        let pretty = build(json::Writer::new());
        let compact = build(json::Writer::compact());
        assert!(pretty.ends_with('\n'));
        assert!(!compact.contains('\n'), "compact output is one line");
        assert_eq!(
            compact,
            "{\"tick\": 7, \"nan\": \"nan\", \"detail\": \
             {\"kind\": \"medium_step\", \"xs\": [1.5, -0.25]}}"
        );
        // Both shapes parse to the same value.
        assert_eq!(
            json::parse(&pretty).unwrap(),
            json::parse(&compact).unwrap()
        );
    }

    #[test]
    fn failed_jobs_render_as_error_entries_in_canonical_json() {
        let mut batch = Batch::new(17);
        batch.push_scenario(
            Scenario::builder()
                .label("ok-cell")
                .vehicles(3)
                .duration(2.0)
                .build(),
        );
        batch.push("crash-cell", |_seed| -> RunSummary {
            panic!("injected grid crash")
        });
        let report = batch.run_report(2);
        assert_eq!(report.summaries().count(), 1, "N-1 summaries survive");
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "crash-cell");
        let text = report.to_canonical_json();
        let value = json::parse(&text).expect("report with failures still parses");
        let Some(Value::Arr(items)) = value.get("entries") else {
            panic!("entries is an array")
        };
        assert!(
            items[0].get("summary").is_some(),
            "ok entry keeps its shape"
        );
        assert!(items[0].get("error").is_none());
        let Some(Value::Str(reason)) = items[1].get("error") else {
            panic!("failed entry renders an error string")
        };
        assert!(reason.contains("injected grid crash"), "{reason}");
        assert!(items[1].get("summary").is_none());
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let build = || {
            let mut batch = Batch::new(7);
            for n in [2usize, 3, 4] {
                batch.push_scenario(
                    Scenario::builder()
                        .label(format!("det/{n}"))
                        .vehicles(n)
                        .duration(3.0)
                        .build(),
                );
            }
            batch
        };
        let one = build().run_report(1).to_canonical_json();
        let many = build().run_report(4).to_canonical_json();
        assert_eq!(one, many, "harness output must be scheduling-independent");
    }

    #[test]
    fn default_workers_is_always_usable() {
        // `available_parallelism` may fail on exotic platforms; the fallback
        // (4) and every successful probe are both valid pool widths. What
        // callers rely on is only that the value can be handed straight to
        // `Batch::run`.
        let w = default_workers();
        assert!(w >= 1, "worker count must be positive, got {w}");
        let mut batch: Batch<u64> = Batch::new(3);
        batch.push("probe", |seed| seed);
        assert_eq!(batch.run(w).len(), 1);
    }

    #[test]
    fn extreme_worker_counts_produce_identical_reports() {
        let build = || {
            let mut batch = Batch::new(13);
            for n in [2usize, 3] {
                batch.push_scenario(
                    Scenario::builder()
                        .label(format!("clamp/{n}"))
                        .vehicles(n)
                        .duration(2.0)
                        .build(),
                );
            }
            batch
        };
        let reference = build().run_report(2).to_canonical_json();
        // workers = 0 is clamped to one thread rather than deadlocking.
        assert_eq!(build().run_report(0).to_canonical_json(), reference);
        // More workers than jobs: the surplus threads find nothing to do.
        assert_eq!(build().run_report(64).to_canonical_json(), reference);
    }

    #[test]
    fn canonical_json_round_trips_through_the_parser() {
        let mut batch = Batch::new(11);
        batch.push_scenario(
            Scenario::builder()
                .label("rt")
                .vehicles(3)
                .duration(2.0)
                .build(),
        );
        let report = batch.run_report(2);
        let text = report.to_canonical_json();
        let value = json::parse(&text).expect("writer output parses");
        let entries = value.get("entries").expect("entries field");
        let Value::Arr(items) = entries else {
            panic!("entries is an array")
        };
        let summary = items[0].get("summary").expect("summary");
        assert_eq!(
            summary.get("vehicles"),
            Some(&Value::Num(3.0)),
            "field survives the round trip"
        );
        // min_ttc can legitimately be ∞ — ensure the encoding round-trips.
        let ttc = summary.get("min_ttc").expect("min_ttc").as_f64().unwrap();
        assert!(ttc > 0.0);
    }

    #[test]
    fn non_finite_floats_encode_as_strings() {
        let mut w = json::Writer::new();
        w.obj(|w| {
            w.field_f64("inf", f64::INFINITY);
            w.field_f64("ninf", f64::NEG_INFINITY);
            w.field_f64("nan", f64::NAN);
        });
        let text = w.finish();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("inf").unwrap().as_f64(), Some(f64::INFINITY));
        assert_eq!(v.get("ninf").unwrap().as_f64(), Some(f64::NEG_INFINITY));
        assert!(v.get("nan").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn golden_check_updates_then_matches_then_diffs() {
        let dir = std::env::temp_dir().join(format!(
            "platoon-golden-test-{}-{:x}",
            std::process::id(),
            derive_seed("golden-test", 1)
        ));
        let path = dir.join("sample.json");
        let doc_a = "{\n  \"x\": 1.5,\n  \"y\": \"inf\"\n}\n";
        let doc_b = "{\n  \"x\": 1.75,\n  \"y\": \"inf\"\n}\n";

        // First contact writes the golden.
        assert_eq!(
            golden::check(&path, doc_a, Tolerance::snapshot()).unwrap(),
            golden::Outcome::Updated
        );
        // Same document matches.
        assert_eq!(
            golden::check(&path, doc_a, Tolerance::snapshot()).unwrap(),
            golden::Outcome::Match
        );
        // A drifted value fails with the path in the message.
        let err = golden::check(&path, doc_b, Tolerance::snapshot()).unwrap_err();
        assert!(err.contains("$.x"), "diff names the path: {err}");
        assert!(err.contains("UPDATE_GOLDEN=1"), "refresh hint: {err}");
        // A loose tolerance accepts the same drift.
        assert_eq!(
            golden::check(
                &path,
                doc_b,
                Tolerance {
                    abs_tol: 0.5,
                    rel_tol: 0.0
                }
            )
            .unwrap(),
            golden::Outcome::Match
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"open", "{\"a\":1}x"] {
            assert!(json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nested_arrays_of_structs_serialize_and_parse() {
        // The Table-IV document shape: rows of structs, each carrying its
        // own score array (with non-finite members) — deeper nesting than
        // any RunSummary field exercises.
        let rows: [(&str, &[f64]); 2] = [
            ("alpha", &[1.5, f64::INFINITY]),
            ("beta", &[f64::NAN, -0.25, f64::NEG_INFINITY]),
        ];
        let mut w = json::Writer::new();
        w.obj(|w| {
            w.field_arr("rows", |w| {
                for (name, scores) in rows {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("name", name);
                            w.field_arr("scores", |w| {
                                for s in scores {
                                    w.elem(|w| w.push_f64(*s));
                                }
                            });
                            w.field_arr("empty", |_| {});
                        })
                    });
                }
            });
        });
        let text = w.finish();
        let v = json::parse(&text).expect("nested document parses");
        let Some(Value::Arr(parsed)) = v.get("rows") else {
            panic!("rows is an array")
        };
        assert_eq!(parsed.len(), 2);
        for (row, (name, scores)) in parsed.iter().zip(rows) {
            assert_eq!(row.get("name"), Some(&Value::Str(name.to_string())));
            let Some(Value::Arr(got)) = row.get("scores") else {
                panic!("scores is an array")
            };
            assert_eq!(got.len(), scores.len());
            for (g, want) in got.iter().zip(scores) {
                let g = g.as_f64().expect("score is numeric");
                assert!(
                    (g.is_nan() && want.is_nan()) || g == *want,
                    "score {want} came back as {g}"
                );
            }
            assert_eq!(row.get("empty"), Some(&Value::Arr(Vec::new())));
        }
    }
}

#[cfg(test)]
mod serializer_proptests {
    use super::json::{self, Value};
    use proptest::prelude::*;

    /// Every f64 bit pattern: finite values of any magnitude, ±inf, NaNs
    /// with arbitrary payloads, signed zeros, denormals.
    fn arb_score() -> impl Strategy<Value = f64> {
        any::<u64>().prop_map(f64::from_bits)
    }

    fn same(a: f64, b: f64) -> bool {
        (a.is_nan() && b.is_nan()) || a == b
    }

    proptest! {
        /// Any rows-of-score-arrays document — nested structs with
        /// arbitrary (possibly non-finite) floats — survives the
        /// writer→parser round trip value-exactly.
        #[test]
        fn nested_score_arrays_roundtrip(
            rows in proptest::collection::vec(
                (0u64..1_000_000, proptest::collection::vec(arb_score(), 0..6)),
                0..5,
            )
        ) {
            let mut w = json::Writer::new();
            w.obj(|w| {
                w.field_arr("rows", |w| {
                    for (id, scores) in &rows {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_u64("id", *id);
                                w.field_arr("scores", |w| {
                                    for s in scores {
                                        w.elem(|w| w.push_f64(*s));
                                    }
                                });
                            })
                        });
                    }
                });
            });
            let v = json::parse(&w.finish()).expect("writer output parses");
            let Some(Value::Arr(parsed)) = v.get("rows") else {
                panic!("rows is an array")
            };
            prop_assert_eq!(parsed.len(), rows.len());
            for (row, (id, scores)) in parsed.iter().zip(&rows) {
                prop_assert_eq!(row.get("id").unwrap().as_f64(), Some(*id as f64));
                let Some(Value::Arr(got)) = row.get("scores") else {
                    panic!("scores is an array")
                };
                prop_assert_eq!(got.len(), scores.len());
                for (g, want) in got.iter().zip(scores) {
                    let g = g.as_f64().expect("score is numeric");
                    prop_assert!(same(g, *want), "score {} came back as {}", want, g);
                }
            }
        }
    }
}
