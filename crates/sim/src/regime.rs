//! Piecewise driving-regime plans: highway cruise → congestion →
//! stop-and-go → tunnel, each phase retargeting the leader's speed
//! profile, the platoon gap, the channel noise environment, and the beacon
//! cadence at seed-deterministic tick boundaries.
//!
//! A [`RegimePlan`] layers *under* the fault schedule: regimes describe
//! the benign environment (traffic density, weather, road geometry) while
//! faults and attacks perturb it. Channel degradation is applied
//! delta-style each tick, exactly like `NoiseFloorRamp`, so the two
//! compose without clobbering each other.
//!
//! Phase boundaries are integer ticks derived by [`steps_for`], the same
//! epsilon-robust conversion `Engine::run` uses for the run length — so a
//! plan whose per-phase durations were summed in `f64` (and therefore
//! drifted by one ulp) still lands every boundary on the intended tick.

use platoon_dynamics::profiles::SpeedProfile;
use serde::{Deserialize, Serialize};

/// Converts a duration in seconds into a whole number of simulation steps,
/// robust to `f64` representation error in either direction.
///
/// `(duration / step).round()` overshoots by a full tick when the duration
/// lands on a half-step (30.25 s at 0.1 s rounds to 303 ticks, simulating
/// 30.3 s); a bare `floor()` undershoots when an exact multiple divides to
/// just below an integer (`30.0 / 0.1 == 299.999…94`). Nudging the
/// quotient up by an epsilon far below one tick before flooring gives the
/// exact count for multiples and truncates partial ticks, which is the
/// intended semantics: never simulate past `duration`.
pub fn steps_for(duration: f64, step: f64) -> u64 {
    ((duration / step) + 1e-6).floor() as u64
}

/// One phase of a [`RegimePlan`]: a labelled stretch of driving regime.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegimePhase {
    /// Phase label, e.g. `"cruise"`, `"stop-and-go"`, `"tunnel"`. Announced
    /// to regime-aware detectors and recorded in the trace.
    pub label: String,
    /// Phase length in simulated seconds.
    pub duration: f64,
    /// Leader speed profile for this phase, evaluated at *phase-local*
    /// time. `None` keeps the scenario's own profile (at run time).
    #[serde(default)]
    pub profile: Option<SpeedProfile>,
    /// Commanded intra-platoon gap override in metres, e.g. tightened in
    /// congestion. Affects control only; spacing-error metrics stay
    /// relative to the scenario's nominal gap.
    #[serde(default)]
    pub desired_gap: Option<f64>,
    /// Extra channel noise in dB for this phase (tunnel walls, weather).
    /// Raises the DSRC noise floor by this amount and the VLC
    /// ambient-outage rate by `VLC_OUTAGE_PER_DB` per dB, so every active
    /// medium degrades.
    #[serde(default)]
    pub noise_extra_db: f64,
    /// Beacon cadence divisor: members beacon every this many comm steps
    /// (1 = every step). Models congestion-control backoff in dense
    /// traffic or constrained channels.
    #[serde(default = "default_beacon_every")]
    pub beacon_every: u64,
}

fn default_beacon_every() -> u64 {
    1
}

impl RegimePhase {
    /// A phase with the given label and duration that changes nothing —
    /// compose the regime with the `with_*` builders.
    pub fn new(label: &str, duration: f64) -> Self {
        RegimePhase {
            label: label.to_string(),
            duration,
            profile: None,
            desired_gap: None,
            noise_extra_db: 0.0,
            beacon_every: default_beacon_every(),
        }
    }

    /// Sets the leader speed profile (phase-local time).
    pub fn with_profile(mut self, profile: SpeedProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Overrides the commanded intra-platoon gap.
    pub fn with_desired_gap(mut self, gap: f64) -> Self {
        self.desired_gap = Some(gap);
        self
    }

    /// Adds channel noise (dB over the baseline) for the phase.
    pub fn with_noise(mut self, extra_db: f64) -> Self {
        self.noise_extra_db = extra_db;
        self
    }

    /// Sets the beacon cadence divisor.
    pub fn with_beacon_every(mut self, every: u64) -> Self {
        self.beacon_every = every;
        self
    }
}

/// A piecewise regime schedule attached to a scenario. Phases run in
/// order; once the plan is exhausted the final phase persists to the end
/// of the run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegimePlan {
    /// The phases, in chronological order.
    pub phases: Vec<RegimePhase>,
}

impl RegimePlan {
    /// Wraps a phase list into a plan.
    pub fn new(phases: Vec<RegimePhase>) -> Self {
        RegimePlan { phases }
    }

    /// Structural validation, called from `Scenario::build`.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("regime plan has no phases".to_string());
        }
        for phase in &self.phases {
            if phase.label.is_empty() {
                return Err("regime phase has an empty label".to_string());
            }
            if phase.duration <= 0.0 || phase.duration.is_nan() {
                return Err(format!(
                    "regime phase `{}` has non-positive duration {}",
                    phase.label, phase.duration
                ));
            }
            if phase.beacon_every == 0 {
                return Err(format!(
                    "regime phase `{}` has beacon_every = 0",
                    phase.label
                ));
            }
        }
        Ok(())
    }

    /// Sum of the phase durations in seconds.
    pub fn total_duration(&self) -> f64 {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The start tick of each phase, derived from *cumulative* durations
    /// via [`steps_for`]. Converting each phase length separately and
    /// summing would lose the fractional ticks at every boundary; the
    /// cumulative form keeps the boundaries and the total run length
    /// consistent.
    pub fn boundaries(&self, comm_step: f64) -> Vec<u64> {
        let mut elapsed = 0.0;
        self.phases
            .iter()
            .map(|p| {
                let start = steps_for(elapsed, comm_step);
                elapsed += p.duration;
                start
            })
            .collect()
    }

    /// The phase active at `tick`: `(phase index, phase start tick)`.
    /// Ticks past the last boundary stay in the final phase.
    pub fn phase_at(&self, tick: u64, comm_step: f64) -> (usize, u64) {
        let starts = self.boundaries(comm_step);
        let mut active = 0;
        for (idx, &start) in starts.iter().enumerate() {
            if start <= tick {
                active = idx;
            } else {
                break;
            }
        }
        (active, starts[active])
    }
}

/// The engine's per-run regime bookkeeping: which phase is active and what
/// channel deltas are currently applied (so they can be removed exactly,
/// like fault deltas). Cloned wholesale by `Engine::snapshot`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegimeState {
    /// Index of the active phase, `None` before the first step.
    pub(crate) phase: Option<usize>,
    /// Tick at which the active phase began.
    pub(crate) phase_start_tick: u64,
    /// DSRC noise currently added by the regime layer, dB.
    pub(crate) applied_noise_db: f64,
    /// VLC ambient-outage probability currently added by the regime layer.
    pub(crate) applied_vlc_outage: f64,
    /// Whether members beacon on the tick being processed.
    pub(crate) beacon_this_tick: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_for_is_exact_on_multiples_and_truncates_partials() {
        // Exact multiple whose quotient sits just below the integer: a
        // bare floor() would drop a whole tick here.
        let (duration, step) = (0.3_f64, 0.1_f64);
        assert!(duration / step < 3.0);
        assert_eq!(steps_for(0.3, 0.1), 3);
        assert_eq!(steps_for(30.0, 0.1), 300);
        // Partial tick truncates instead of rounding up (the old round()
        // derivation simulated 303 ticks — a step past the duration).
        assert_eq!(steps_for(30.25, 0.1), 302);
        // A duration accumulated by summing 0.1-second slices in f64
        // drifts off the exact value (above it, here) but must still run
        // the intended tick count.
        let drifted: f64 = (0..3).map(|_| 0.1).sum();
        assert!(drifted != 0.3);
        assert_eq!(steps_for(drifted, 0.1), 3);
    }

    #[test]
    fn boundaries_use_cumulative_durations() {
        let plan = RegimePlan::new(vec![
            RegimePhase::new("a", 10.0),
            RegimePhase::new("b", 0.35),
            RegimePhase::new("c", 9.65),
        ]);
        // Per-phase conversion would give starts [0, 100, 103] but a total
        // of 100 + 3 + 96 = 199 steps; cumulative conversion keeps the
        // total at steps_for(20.0) = 200.
        assert_eq!(plan.boundaries(0.1), vec![0, 100, 103]);
        assert_eq!(steps_for(plan.total_duration(), 0.1), 200);
    }

    #[test]
    fn phase_lookup_clamps_to_the_final_phase() {
        let plan = RegimePlan::new(vec![RegimePhase::new("a", 1.0), RegimePhase::new("b", 1.0)]);
        assert_eq!(plan.phase_at(0, 0.1), (0, 0));
        assert_eq!(plan.phase_at(9, 0.1), (0, 0));
        assert_eq!(plan.phase_at(10, 0.1), (1, 10));
        assert_eq!(plan.phase_at(5000, 0.1), (1, 10));
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        assert!(RegimePlan::new(vec![]).validate().is_err());
        assert!(RegimePlan::new(vec![RegimePhase::new("", 1.0)])
            .validate()
            .is_err());
        assert!(RegimePlan::new(vec![RegimePhase::new("a", 0.0)])
            .validate()
            .is_err());
        let mut bad = RegimePhase::new("a", 1.0);
        bad.beacon_every = 0;
        assert!(RegimePlan::new(vec![bad]).validate().is_err());
        assert!(RegimePlan::new(vec![RegimePhase::new("a", 1.0)])
            .validate()
            .is_ok());
    }

    #[test]
    fn phase_builders_compose() {
        let phase = RegimePhase::new("tunnel", 4.5)
            .with_profile(SpeedProfile::Constant { speed: 20.0 })
            .with_desired_gap(7.0)
            .with_noise(15.0)
            .with_beacon_every(2);
        assert_eq!(phase.label, "tunnel");
        assert_eq!(phase.profile, Some(SpeedProfile::Constant { speed: 20.0 }));
        assert_eq!(phase.desired_gap, Some(7.0));
        assert_eq!(phase.noise_extra_db, 15.0);
        assert_eq!(phase.beacon_every, 2);
    }
}
