//! Deterministic intra-run parallelism helpers.
//!
//! The engine shards independent per-vehicle work (frame sealing, delivery
//! verification, dynamics substeps) across scoped threads. Determinism is
//! preserved structurally: items are split into **contiguous index chunks**,
//! each item's result is written to **its own slot**, and callers consume
//! results in **item order** — never completion order. The thread count can
//! therefore change the wall time but never the bytes produced.
//!
//! Helpers fall back to a plain sequential loop for one thread (or one
//! item), so the default configuration never pays thread-spawn overhead.

/// Applies `f` to every element, sharded across up to `threads` scoped
/// threads in contiguous chunks. `f` receives the element's index.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (k, item) in chunk_items.iter_mut().enumerate() {
                    f(ci * chunk + k, item);
                }
            });
        }
    });
}

/// Maps every element through `f`, sharded across up to `threads` scoped
/// threads in contiguous chunks. The returned `Vec` is in item order.
pub fn map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (ci, (in_chunk, out_chunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                for (k, (item, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(ci * chunk + k, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every chunk fills its slots"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_mut_visits_every_index_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut items: Vec<usize> = vec![0; 37];
            for_each_mut(&mut items, threads, |i, slot| *slot = i + 1);
            assert!(
                items.iter().enumerate().all(|(i, &v)| v == i + 1),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn map_indexed_is_in_item_order_for_any_thread_count() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 5, 16, 200] {
            let got = map_indexed(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(&empty, 4, |_, &x| x).is_empty());
        let mut one = [7u32];
        for_each_mut(&mut one, 9, |_, x| *x += 1);
        assert_eq!(one, [8]);
    }
}
