//! Run metrics: everything an experiment reports about a simulation,
//! including detection-quality scoring of the alert stream against
//! ground-truth attack labels.

use crate::perf::PerfCounters;
use crate::trace::TraceDigest;
use platoon_crypto::cert::PrincipalId;
use platoon_detect::fusion::{Alert, AlertTarget};
use platoon_dynamics::safety::SafetyMonitor;
use platoon_dynamics::stability::{StringStabilityReport, TimeSeries};
use platoon_proto::maneuver::ManeuverStats;
use platoon_v2x::stats::LinkStats;
use serde::{Deserialize, Serialize};

/// Collected continuously during a run.
#[derive(Clone, Debug)]
pub struct MetricsCollector {
    /// Per-follower spacing-error series (index 0 = first follower).
    pub spacing_errors: Vec<TimeSeries>,
    /// Per-vehicle speed series.
    pub speeds: Vec<TimeSeries>,
    /// Safety monitoring.
    pub safety: SafetyMonitor,
    /// Link-level delivery statistics.
    pub links: LinkStats,
    /// Fraction-of-time accumulator: platoon fragmented (more than one
    /// platoon id present).
    fragmented_time: f64,
    /// Total time accumulated.
    total_time: f64,
    /// Time with any vehicle's platooning service down.
    service_down_time: f64,
    /// Per-step age of the tail vehicle's leader information (capped).
    pub tail_leader_age: TimeSeries,
}

impl MetricsCollector {
    /// Collector for a platoon of `n` vehicles sampling at `dt`.
    pub fn new(n: usize, dt: f64) -> Self {
        MetricsCollector {
            spacing_errors: (0..n.saturating_sub(1))
                .map(|_| TimeSeries::new(dt))
                .collect(),
            speeds: (0..n).map(|_| TimeSeries::new(dt)).collect(),
            safety: SafetyMonitor::new(n.saturating_sub(1)),
            links: LinkStats::new(),
            fragmented_time: 0.0,
            total_time: 0.0,
            service_down_time: 0.0,
            tail_leader_age: TimeSeries::new(dt),
        }
    }

    /// Records a fragmentation/service observation for a step of length `dt`.
    pub fn record_step_state(&mut self, dt: f64, fragmented: bool, any_service_down: bool) {
        self.total_time += dt;
        if fragmented {
            self.fragmented_time += dt;
        }
        if any_service_down {
            self.service_down_time += dt;
        }
    }

    /// Fraction of the run the platoon spent fragmented.
    pub fn fragmented_fraction(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        self.fragmented_time / self.total_time
    }

    /// Fraction of the run with at least one platooning service down.
    pub fn service_down_fraction(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        self.service_down_time / self.total_time
    }

    /// Builds the string-stability report from the recorded errors.
    pub fn stability(&self) -> StringStabilityReport {
        StringStabilityReport::from_errors(&self.spacing_errors)
    }
}

/// Summary of a completed run — the unit the experiment harness tabulates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Scenario label.
    pub label: String,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Number of vehicles.
    pub vehicles: usize,
    /// Maximum absolute spacing error over all followers, metres.
    pub max_spacing_error: f64,
    /// Total oscillation energy (m²·s).
    pub oscillation_energy: f64,
    /// Worst follower-to-follower L∞ amplification ratio.
    pub worst_amplification: f64,
    /// Whether the platoon stayed L∞ string stable (5% tolerance).
    pub string_stable: bool,
    /// Collisions observed.
    pub collisions: usize,
    /// Minimum bumper gap observed, metres.
    pub min_gap: f64,
    /// Minimum time-to-collision observed, seconds (∞ if never closing).
    pub min_ttc: f64,
    /// Mean fleet fuel consumption, litres per 100 km.
    pub fuel_l_per_100km: f64,
    /// Beacon packet-delivery ratio from the leader to the last vehicle.
    pub leader_tail_pdr: f64,
    /// Mean age of the tail vehicle's leader information, seconds (capped
    /// at 10 s when no beacon has been heard) — the cooperative-data
    /// freshness metric the hybrid-relay experiments report.
    pub tail_leader_age_mean: f64,
    /// Fraction of the run spent fragmented into >1 platoon.
    pub fragmented_fraction: f64,
    /// Fraction of the run with a platooning service down.
    pub service_down_fraction: f64,
    /// Manoeuvre statistics snapshot.
    pub maneuvers: ManeuverStats,
    /// Messages rejected by defenses.
    pub rejected_messages: usize,
    /// Misbehaviour detections raised.
    pub detections: usize,
    /// Mean absolute spacing error, metres.
    pub mean_abs_spacing_error: f64,
    /// Deterministic engine work counters (see [`crate::perf`]).
    pub perf: PerfCounters,
    /// Events dropped by the bounded [`EventLog`](crate::events::EventLog)
    /// after it saturated. Non-zero means the `collisions`/`detections`
    /// tallies above are *lower bounds* — surfaced here (and in the golden
    /// snapshots) so saturation can never silently undercount again.
    pub events_dropped: u64,
    /// Digest of the attached per-tick trace, when a
    /// [`Tracer`](crate::trace::Tracer) was attached.
    pub trace: Option<TraceDigest>,
}

impl RunSummary {
    /// Renders a compact single-line summary for console tables.
    pub fn one_line(&self) -> String {
        format!(
            "{:<28} err(max/mean) {:>6.2}/{:>5.2} m  amp {:>5.2}  col {:>2}  gap {:>6.2} m  pdr {:>5.3}  frag {:>4.2}",
            self.label,
            self.max_spacing_error,
            self.mean_abs_spacing_error,
            self.worst_amplification,
            self.collisions,
            if self.min_gap.is_finite() { self.min_gap } else { f64::NAN },
            self.leader_tail_pdr,
            self.fragmented_fraction,
        )
    }
}

/// Ground-truth labelling of a run: which identities actually misbehaved
/// and from when. The engine scores the detection pipeline's alert stream
/// against this to produce a [`DetectionSummary`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TruthLabels {
    /// Human-readable attack name (golden-table row key).
    pub attack: String,
    /// When the attack became active, seconds (`f64::INFINITY` for a
    /// benign run: every alert is then a false positive).
    pub start: f64,
    /// Whether the attack manifests as a channel-level condition (jamming,
    /// flooding) so unattributed channel alarms count as true positives.
    pub channel_attack: bool,
    /// Specific guilty identities (insiders, impersonated victims, the
    /// malware-disabled vehicle).
    pub guilty: Vec<PrincipalId>,
    /// If set, every identity at or above this id is fabricated and
    /// guilty — covers Sybil ghost ranges and join-flood id blocks without
    /// enumerating hundreds of principals.
    pub guilty_from: Option<u64>,
}

impl TruthLabels {
    /// Labels for a run with no attack: any alert is a false positive.
    pub fn benign(label: &str) -> Self {
        TruthLabels {
            attack: label.to_string(),
            start: f64::INFINITY,
            channel_attack: false,
            guilty: Vec::new(),
            guilty_from: None,
        }
    }

    /// Whether an identity is labelled guilty.
    pub fn is_guilty(&self, principal: PrincipalId) -> bool {
        self.guilty.contains(&principal)
            || self.guilty_from.is_some_and(|floor| principal.0 >= floor)
    }
}

/// Detection-quality metrics for one run: the alert stream scored against
/// [`TruthLabels`]. This is what the Table-IV experiment tabulates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectionSummary {
    /// Total alerts raised.
    pub alerts: usize,
    /// Alerts at/after attack start implicating a guilty party (or the
    /// channel, for channel-level attacks).
    pub true_positives: usize,
    /// Everything else, including any alert before the attack started.
    pub false_positives: usize,
    /// Whether the attack was detected at all.
    pub detected: bool,
    /// Seconds from attack start to the first true positive
    /// (`f64::INFINITY` if never detected).
    pub first_detection_latency: f64,
    /// Fraction of sender-attributed alerts (at/after start) naming a
    /// guilty identity (`f64::NAN` when there are none to judge).
    pub attribution_accuracy: f64,
}

/// Canonical per-frame (or per-run) mean: `total / count`, clamped for the
/// zero-denominator case.
///
/// A fault window can drop *every* frame of a link, and a crash-isolated grid
/// arm can lose *every* run — both leave nothing to average. Raw IEEE
/// division would hand the serializer `0.0 / 0.0` (a NaN whose sign bit is
/// unspecified) or a spurious ±∞ from `x / 0`; this helper pins the empty
/// case, and any NaN result, to the canonical positive quiet `f64::NAN` so
/// golden documents stay byte-stable and encode as the `"nan"` / `"inf"` /
/// `"-inf"` strings the [`harness::json`](crate::harness::json) writer
/// already supports.
pub fn per_frame_ratio(total: f64, count: u64) -> f64 {
    if count == 0 {
        return f64::NAN;
    }
    let ratio = total / count as f64;
    if ratio.is_nan() {
        f64::NAN
    } else {
        ratio
    }
}

/// Scores an alert stream against ground truth.
pub fn score_alerts(alerts: &[Alert], truth: &TruthLabels) -> DetectionSummary {
    let mut true_positives = 0;
    let mut false_positives = 0;
    let mut first_latency = f64::INFINITY;
    let mut attributed = 0usize;
    let mut attributed_correct = 0usize;
    for alert in alerts {
        let in_window = alert.time >= truth.start;
        let hit = in_window
            && match alert.target {
                AlertTarget::Sender(p) => truth.is_guilty(p),
                AlertTarget::Channel => truth.channel_attack,
            };
        if hit {
            true_positives += 1;
            first_latency = first_latency.min(alert.time - truth.start);
        } else {
            false_positives += 1;
        }
        if in_window {
            if let AlertTarget::Sender(p) = alert.target {
                attributed += 1;
                if truth.is_guilty(p) {
                    attributed_correct += 1;
                }
            }
        }
    }
    DetectionSummary {
        alerts: alerts.len(),
        true_positives,
        false_positives,
        detected: true_positives > 0,
        first_detection_latency: first_latency,
        attribution_accuracy: per_frame_ratio(attributed_correct as f64, attributed as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_sizes_follow_platoon() {
        let c = MetricsCollector::new(5, 0.1);
        assert_eq!(c.spacing_errors.len(), 4);
        assert_eq!(c.speeds.len(), 5);
    }

    #[test]
    fn fragmentation_fraction_accumulates() {
        let mut c = MetricsCollector::new(3, 0.1);
        for i in 0..10 {
            c.record_step_state(0.1, i >= 5, false);
        }
        assert!((c.fragmented_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(c.service_down_fraction(), 0.0);
    }

    #[test]
    fn empty_collector_fractions_are_zero() {
        let c = MetricsCollector::new(2, 0.1);
        assert_eq!(c.fragmented_fraction(), 0.0);
        assert_eq!(c.service_down_fraction(), 0.0);
    }

    #[test]
    fn zero_duration_run_has_no_division_artifacts() {
        // A run that never advances time: every derived quantity must come
        // out finite (availability fractions, stability, safety), never NaN
        // from a 0/0.
        let mut c = MetricsCollector::new(4, 0.1);
        // Zero-length steps still count as observations of zero duration.
        c.record_step_state(0.0, true, true);
        c.record_step_state(0.0, false, true);
        assert_eq!(c.fragmented_fraction(), 0.0);
        assert_eq!(c.service_down_fraction(), 0.0);
        assert!(c.fragmented_fraction().is_finite());
        assert!(c.service_down_fraction().is_finite());

        let r = c.stability();
        assert!(r.total_energy.is_finite());
        assert!(r.worst_amplification().is_finite());
        assert!(
            r.is_string_stable(0.05),
            "empty errors are trivially stable"
        );
        assert_eq!(c.safety.collision_count(), 0);
        assert_eq!(c.links.mean_latency(), 0.0, "no samples, no 0/0");
    }

    #[test]
    fn single_vehicle_collector_degenerate() {
        // One vehicle: no follower, hence no spacing series, no gaps and a
        // trivially stable report — but speeds are still tracked.
        let c = MetricsCollector::new(1, 0.1);
        assert!(c.spacing_errors.is_empty());
        assert_eq!(c.speeds.len(), 1);
        let r = c.stability();
        assert!(r.is_string_stable(0.0));
        assert!(r.linf_errors.is_empty());
        assert!(r.linf_amplification.is_empty());
        assert_eq!(r.total_energy, 0.0);
        assert!(c.safety.is_collision_free());
    }

    #[test]
    fn zero_vehicle_collector_does_not_underflow() {
        // `n = 0` exercises the saturating_sub paths.
        let c = MetricsCollector::new(0, 0.1);
        assert!(c.spacing_errors.is_empty());
        assert!(c.speeds.is_empty());
        assert!(c.stability().is_string_stable(0.0));
    }

    #[test]
    fn one_line_render_tolerates_non_finite_gaps() {
        // A run with no closing pair leaves min_gap/min_ttc at +∞; the
        // console rendering must not panic or print garbage widths.
        let s = RunSummary {
            label: "degenerate".into(),
            duration: 0.0,
            vehicles: 1,
            max_spacing_error: 0.0,
            oscillation_energy: 0.0,
            worst_amplification: 0.0,
            string_stable: true,
            collisions: 0,
            min_gap: f64::INFINITY,
            min_ttc: f64::INFINITY,
            fuel_l_per_100km: 0.0,
            leader_tail_pdr: 0.0,
            tail_leader_age_mean: 0.0,
            fragmented_fraction: 0.0,
            service_down_fraction: 0.0,
            maneuvers: Default::default(),
            rejected_messages: 0,
            detections: 0,
            mean_abs_spacing_error: 0.0,
            perf: PerfCounters::default(),
            events_dropped: 0,
            trace: None,
        };
        let line = s.one_line();
        assert!(line.contains("degenerate"));
        assert!(line.contains("NaN"), "infinite gap renders as NaN marker");
    }

    fn alert(time: f64, target: AlertTarget) -> Alert {
        Alert {
            time,
            target,
            score: 1.0,
            contributors: vec![("kinematic", 1.0)],
        }
    }

    #[test]
    fn scoring_separates_tp_fp_and_latency() {
        let truth = TruthLabels {
            attack: "sybil".into(),
            start: 5.0,
            channel_attack: false,
            guilty: vec![],
            guilty_from: Some(7000),
        };
        let alerts = vec![
            alert(4.0, AlertTarget::Sender(PrincipalId(7000))), // pre-start: FP
            alert(6.5, AlertTarget::Sender(PrincipalId(7001))), // TP
            alert(7.0, AlertTarget::Sender(PrincipalId(2))),    // honest: FP
            alert(8.0, AlertTarget::Channel),                   // not a channel attack: FP
        ];
        let s = score_alerts(&alerts, &truth);
        assert_eq!(s.alerts, 4);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 3);
        assert!(s.detected);
        assert!((s.first_detection_latency - 1.5).abs() < 1e-12);
        assert!((s.attribution_accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn benign_truth_marks_every_alert_false() {
        let truth = TruthLabels::benign("benign");
        let s = score_alerts(&[alert(1.0, AlertTarget::Sender(PrincipalId(1)))], &truth);
        assert!(!s.detected);
        assert_eq!(s.false_positives, 1);
        assert!(s.first_detection_latency.is_infinite());
        assert!(s.attribution_accuracy.is_nan());
    }

    #[test]
    fn zero_frame_fault_window_clamps_to_canonical_nan() {
        // A fault window that drops every delivered frame leaves nothing to
        // average: the ratio must clamp to the canonical positive quiet NaN
        // (not a platform-dependent 0.0/0.0 bit pattern) and serialize as
        // the golden writer's "nan" string.
        let ratio = per_frame_ratio(0.0, 0);
        assert!(ratio.is_nan());
        assert!(ratio.is_sign_positive(), "canonical quiet NaN, not -NaN");
        let mut w = crate::harness::json::Writer::new();
        w.obj(|w| w.field_f64("mean_latency", ratio));
        let text = w.finish();
        assert!(text.contains("\"nan\""), "{text}");
        let v = crate::harness::json::parse(&text).unwrap();
        assert!(v.get("mean_latency").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn per_frame_ratio_divides_and_canonicalizes() {
        assert_eq!(per_frame_ratio(6.0, 3), 2.0);
        // An infinite total (e.g. a never-detected latency) stays the
        // canonical "inf" encoding rather than tripping the clamp.
        assert_eq!(per_frame_ratio(f64::INFINITY, 2), f64::INFINITY);
        // Any NaN result normalizes to the positive quiet NaN.
        assert!(per_frame_ratio(-f64::NAN, 4).is_sign_positive());
        assert!(per_frame_ratio(f64::NAN, 1).is_nan());
    }

    #[test]
    fn channel_attacks_accept_channel_alarms() {
        let truth = TruthLabels {
            attack: "jamming".into(),
            start: 3.0,
            channel_attack: true,
            guilty: vec![],
            guilty_from: None,
        };
        let s = score_alerts(&[alert(4.0, AlertTarget::Channel)], &truth);
        assert_eq!(s.true_positives, 1);
        assert!(
            s.attribution_accuracy.is_nan(),
            "no sender-attributed alerts"
        );
    }
}
