//! The simulated world: vehicles, roadside units, the radio medium and the
//! adversary-visible state attacks mutate.

use platoon_crypto::cert::{Certificate, PrincipalId};
use platoon_crypto::keys::SymmetricKey;
use platoon_crypto::signature::Signer;
use platoon_dynamics::controller::{CommPeer, LongitudinalController};
use platoon_dynamics::fuel::FuelMeter;
use platoon_dynamics::sensors::SensorSuite;
use platoon_dynamics::vehicle::Vehicle;
use platoon_proto::messages::{PlatoonId, Role};
use platoon_v2x::jamming::Jammer;
use platoon_v2x::medium::RadioMedium;
use platoon_v2x::message::{NodeId, Payload, Position};
use std::collections::HashMap;

/// Credential material a vehicle uses to seal outgoing messages.
#[derive(Clone, Debug)]
pub enum AuthMaterial {
    /// No authentication (the undefended baseline).
    None,
    /// Shared platoon group key (HMAC envelopes).
    GroupMac(SymmetricKey),
    /// Shared group key with payload encryption (encrypt-then-MAC).
    EncryptedGroupMac(SymmetricKey),
    /// Certified signing key (signature envelopes).
    Pki {
        /// The vehicle's signer.
        signer: Signer,
        /// Its certificate from the trusted authority.
        certificate: Certificate,
    },
}

/// The freshest kinematic information heard from a peer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeardPeer {
    /// Who the information claims to be from.
    pub principal: PrincipalId,
    /// The kinematic content.
    pub peer: CommPeer,
    /// Simulation time the beacon was received.
    pub heard_at: f64,
}

/// Per-vehicle communication state.
#[derive(Clone, Debug, Default)]
pub struct CommState {
    /// Last beacon accepted from the predecessor.
    pub predecessor: Option<HeardPeer>,
    /// Last beacon accepted from the platoon leader.
    pub leader: Option<HeardPeer>,
    /// Wire bytes of the last accepted leader beacon, kept for hop-by-hop
    /// VLC relaying (SP-VLC forwards the leader's message down the optical
    /// chain; the signature inside stays valid because the bytes are
    /// verbatim). Shared, so relay frames clone it for free.
    pub leader_envelope: Option<Payload>,
}

impl CommState {
    /// Converts stored beacons into controller inputs, computing ages.
    pub fn comm_peer_predecessor(&self, now: f64) -> Option<CommPeer> {
        self.predecessor.map(|h| CommPeer {
            age: (now - h.heard_at).max(0.0),
            ..h.peer
        })
    }

    /// Leader view with age, for the controller.
    pub fn comm_peer_leader(&self, now: f64) -> Option<CommPeer> {
        self.leader.map(|h| CommPeer {
            age: (now - h.heard_at).max(0.0),
            ..h.peer
        })
    }
}

/// Falsified content an inside attacker (or malware) injects into the
/// vehicle's own beacons — the "deliberately transmit false or misleading
/// information" FDI variant of §V-A.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BeaconLie {
    /// Added to the claimed position.
    pub position_offset: f64,
    /// Added to the claimed speed.
    pub speed_offset: f64,
    /// Added to the claimed acceleration.
    pub accel_offset: f64,
}

impl BeaconLie {
    /// Whether the lie actually changes anything.
    pub fn is_active(&self) -> bool {
        self.position_offset != 0.0 || self.speed_offset != 0.0 || self.accel_offset != 0.0
    }
}

/// A vehicle participating in the simulation.
#[derive(Debug)]
pub struct VehicleNode {
    /// Application-level identity (pseudonymous or long-term).
    pub principal: PrincipalId,
    /// Radio identity.
    pub node: NodeId,
    /// Longitudinal dynamics.
    pub vehicle: Vehicle,
    /// On-board sensors (attack surface for spoofing/jamming).
    pub sensors: SensorSuite,
    /// Longitudinal controller.
    pub controller: Box<dyn LongitudinalController>,
    /// Current role.
    pub role: Role,
    /// Which platoon this vehicle currently belongs to.
    pub platoon: PlatoonId,
    /// Beacon sequence counter.
    pub seq: u64,
    /// Encryption nonce counter (never reused within a run).
    pub nonce: u64,
    /// Communication state (freshest accepted beacons).
    pub comm: CommState,
    /// Credential material.
    pub auth: AuthMaterial,
    /// Fuel accounting.
    pub fuel: FuelMeter,
    /// Extra front gap currently commanded (join gaps, fake manoeuvres).
    pub extra_front_gap: f64,
    /// Time at which `extra_front_gap` expires (simulation seconds).
    pub extra_gap_until: f64,
    /// Falsification applied to this vehicle's own outgoing beacons.
    pub beacon_lie: Option<BeaconLie>,
    /// Whether on-board malware has compromised this vehicle.
    pub infected: bool,
    /// Whether on-board hardening (firewall + component isolation, Table III
    /// "Securing Onboard Systems") is deployed; malware spread respects it.
    pub hardened: bool,
    /// Whether the platooning service is operational (malware can disable).
    pub platooning_enabled: bool,
    /// Lateral lane offset in metres (0 = platoon lane).
    pub lane_offset: f64,
}

impl VehicleNode {
    /// Radio position of the vehicle.
    pub fn position(&self) -> Position {
        (self.vehicle.state.position, self.lane_offset)
    }

    /// Clones the node for engine snapshots. Fails (with the controller's
    /// name) when the boxed controller does not support
    /// [`LongitudinalController::clone_box`].
    pub fn try_clone(&self) -> Result<VehicleNode, String> {
        let controller = self
            .controller
            .clone_box()
            .ok_or_else(|| format!("controller `{}`", self.controller.name()))?;
        Ok(VehicleNode {
            principal: self.principal,
            node: self.node,
            vehicle: self.vehicle,
            sensors: self.sensors,
            controller,
            role: self.role,
            platoon: self.platoon,
            seq: self.seq,
            nonce: self.nonce,
            comm: self.comm.clone(),
            auth: self.auth.clone(),
            fuel: self.fuel,
            extra_front_gap: self.extra_front_gap,
            extra_gap_until: self.extra_gap_until,
            beacon_lie: self.beacon_lie,
            infected: self.infected,
            hardened: self.hardened,
            platooning_enabled: self.platooning_enabled,
            lane_offset: self.lane_offset,
        })
    }
}

/// A roadside unit: fixed infrastructure with a radio and a trusted link to
/// the authority.
#[derive(Clone, Debug)]
pub struct Rsu {
    /// Radio identity.
    pub node: NodeId,
    /// Fixed position.
    pub position: Position,
    /// Whether this RSU is compromised (the "rogue RSU" open challenge).
    pub compromised: bool,
}

/// Mutable world state threaded through the engine and the attack/defense
/// hooks.
#[derive(Debug)]
pub struct World {
    /// Simulation time in seconds.
    pub time: f64,
    /// Vehicles ordered front (index 0 = original leader) to back.
    pub vehicles: Vec<VehicleNode>,
    /// Roadside units.
    pub rsus: Vec<Rsu>,
    /// The shared radio medium.
    pub medium: RadioMedium,
    /// Active jammers (attacks add and remove these).
    pub jammers: Vec<Jammer>,
    /// Principal → vehicle index, rebuilt on membership mutation.
    principal_lookup: HashMap<PrincipalId, usize>,
    /// Radio node → vehicle index, rebuilt on membership mutation.
    node_lookup: HashMap<NodeId, usize>,
}

/// Per-tick platoon layout computed in one O(n) pass, replacing the
/// per-vehicle [`World::platoon_local_index`] / [`World::platoon_leader_index`]
/// scans (O(n²) per tick) in the engine's hot loops.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlatoonLayout {
    /// `local_index[i]`: how many vehicles ahead of `i` share its platoon.
    pub local_index: Vec<usize>,
    /// `leader_index[i]`: index of the vehicle leading `i`'s platoon.
    pub leader_index: Vec<usize>,
}

impl World {
    /// Builds a world and its identity lookup maps.
    pub fn new(
        vehicles: Vec<VehicleNode>,
        rsus: Vec<Rsu>,
        medium: RadioMedium,
        jammers: Vec<Jammer>,
    ) -> Self {
        let mut world = World {
            time: 0.0,
            vehicles,
            rsus,
            medium,
            jammers,
            principal_lookup: HashMap::new(),
            node_lookup: HashMap::new(),
        };
        world.rebuild_lookup();
        world
    }

    /// Rebuilds the identity lookup maps. Must be called after any mutation
    /// that adds, removes or re-identifies vehicles. (Plain state mutation —
    /// positions, flags, comm state — does not require a rebuild.) Staleness
    /// from added/removed vehicles is self-detected via a length check, in
    /// which case lookups fall back to a linear scan.
    pub fn rebuild_lookup(&mut self) {
        self.principal_lookup.clear();
        self.node_lookup.clear();
        for (i, v) in self.vehicles.iter().enumerate() {
            self.principal_lookup.insert(v.principal, i);
            self.node_lookup.insert(v.node, i);
        }
    }

    /// Whether the lookup maps cover the current vehicle roster.
    fn lookup_fresh(&self) -> bool {
        self.principal_lookup.len() == self.vehicles.len()
            && self.node_lookup.len() == self.vehicles.len()
    }

    /// Index of the vehicle with the given principal, if any.
    pub fn index_of(&self, principal: PrincipalId) -> Option<usize> {
        if self.lookup_fresh() {
            let found = self.principal_lookup.get(&principal).copied();
            if let Some(i) = found {
                debug_assert_eq!(
                    self.vehicles[i].principal, principal,
                    "stale principal lookup: call rebuild_lookup after membership changes"
                );
            }
            return found;
        }
        self.vehicles.iter().position(|v| v.principal == principal)
    }

    /// Index of the vehicle with the given radio node, if any.
    pub fn index_of_node(&self, node: NodeId) -> Option<usize> {
        if self.lookup_fresh() {
            let found = self.node_lookup.get(&node).copied();
            if let Some(i) = found {
                debug_assert_eq!(
                    self.vehicles[i].node, node,
                    "stale node lookup: call rebuild_lookup after membership changes"
                );
            }
            return found;
        }
        self.vehicles.iter().position(|v| v.node == node)
    }

    /// True bumper-to-bumper gap in front of vehicle `idx` **within the same
    /// platoon** (ground truth; sensors add noise and faults on top).
    pub fn true_gap(&self, idx: usize) -> Option<f64> {
        if idx == 0 {
            return None;
        }
        let ahead = &self.vehicles[idx - 1];
        if ahead.platoon != self.vehicles[idx].platoon {
            // Predecessor belongs to another platoon; still physically ahead.
        }
        Some(self.vehicles[idx].vehicle.gap_to(&ahead.vehicle))
    }

    /// True range rate (positive = opening) in front of vehicle `idx`.
    pub fn true_range_rate(&self, idx: usize) -> Option<f64> {
        if idx == 0 {
            return None;
        }
        Some(self.vehicles[idx - 1].vehicle.state.speed - self.vehicles[idx].vehicle.state.speed)
    }

    /// Platoon-local index of vehicle `idx`: how many vehicles ahead of it
    /// share its platoon id (0 = it leads its platoon).
    pub fn platoon_local_index(&self, idx: usize) -> usize {
        let pid = self.vehicles[idx].platoon;
        self.vehicles[..idx]
            .iter()
            .filter(|v| v.platoon == pid)
            .count()
    }

    /// Index of the vehicle currently leading `idx`'s platoon.
    pub fn platoon_leader_index(&self, idx: usize) -> usize {
        let pid = self.vehicles[idx].platoon;
        self.vehicles
            .iter()
            .position(|v| v.platoon == pid)
            .expect("vehicle idx itself matches")
    }

    /// Computes every vehicle's platoon-local index and leader index in one
    /// pass. Equals calling [`Self::platoon_local_index`] /
    /// [`Self::platoon_leader_index`] per vehicle, at O(n) instead of O(n²).
    pub fn platoon_layout(&self) -> PlatoonLayout {
        let n = self.vehicles.len();
        let mut layout = PlatoonLayout {
            local_index: Vec::with_capacity(n),
            leader_index: Vec::with_capacity(n),
        };
        // (members seen so far, index of first member) per platoon.
        let mut seen: HashMap<PlatoonId, (usize, usize)> = HashMap::new();
        for (i, v) in self.vehicles.iter().enumerate() {
            let entry = seen.entry(v.platoon).or_insert((0, i));
            layout.local_index.push(entry.0);
            layout.leader_index.push(entry.1);
            entry.0 += 1;
        }
        layout
    }

    /// Clones the whole world for engine snapshots; the lookup maps are
    /// rebuilt rather than copied. Fails when any vehicle's controller
    /// does not support cloning.
    pub fn try_clone(&self) -> Result<World, String> {
        let mut vehicles = Vec::with_capacity(self.vehicles.len());
        for v in &self.vehicles {
            vehicles.push(v.try_clone()?);
        }
        let mut world = World::new(
            vehicles,
            self.rsus.clone(),
            self.medium,
            self.jammers.clone(),
        );
        world.time = self.time;
        Ok(world)
    }

    /// Number of distinct platoon ids present (fragmentation metric).
    pub fn platoon_count(&self) -> usize {
        let mut ids: Vec<PlatoonId> = self.vehicles.iter().map(|v| v.platoon).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }
}
