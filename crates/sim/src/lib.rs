//! # platoon-sim
//!
//! The discrete-time platoon simulation engine with attack and defense hook
//! points — the heart of the reproduction of Taylor et al., *"Vehicular
//! Platoon Communication: Cybersecurity Threats and Open Challenges"*
//! (DSN-W 2021).
//!
//! * [`scenario`] — declarative run configuration (controller, key scheme,
//!   channels, workload) with a builder.
//! * [`world`] — vehicles, RSUs, jammers and the adversary-mutable state.
//! * [`engine`] — the sense → communicate → control → integrate loop.
//! * [`attack`] / [`defense`] — the pluggable adversary and mechanism hook
//!   traits implemented by `platoon-attacks` and `platoon-defense`.
//! * [`fault`] — the benign-fault hook trait implemented by `platoon-faults`
//!   (burst loss, sensor outages, RSU blackouts, ...).
//! * [`agents`] — benign traffic agents (e.g. a legitimate joiner).
//! * [`metrics`] / [`events`] — what a run reports.
//! * [`trace`] — the deterministic per-tick trace hook (recorder lives in
//!   `platoon-trace`).
//!
//! # Examples
//!
//! Run an undefended 8-truck CACC platoon for a minute and check it is
//! string stable:
//!
//! ```
//! use platoon_sim::prelude::*;
//!
//! let scenario = Scenario::builder()
//!     .label("quickstart")
//!     .vehicles(8)
//!     .duration(30.0)
//!     .build();
//! let mut engine = Engine::new(scenario);
//! let summary = engine.run();
//! assert_eq!(summary.collisions, 0);
//! assert!(summary.string_stable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod attack;
pub mod defense;
pub mod engine;
pub mod events;
pub mod exec;
pub mod fault;
pub mod harness;
pub mod metrics;
pub mod par;
pub mod perf;
pub mod regime;
pub mod scenario;
pub mod trace;
pub mod world;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::agents::{JoinerAgent, JoinerCredentials, JoinerOutcome};
    pub use crate::attack::{Attack, NoAttack, SecurityAttribute};
    pub use crate::defense::{Defense, DetectionEvent, NoDefense, RejectReason};
    pub use crate::engine::{Engine, EngineSnapshot, ObservationSink, SnapshotError};
    pub use crate::events::{Event, EventLog, LoggedEvent};
    pub use crate::fault::{Fault, NoFault};
    pub use crate::harness::{derive_seed, Batch, BatchEntry, BatchJob, BatchReport, JobOutcome};
    pub use crate::metrics::{
        per_frame_ratio, score_alerts, DetectionSummary, MetricsCollector, RunSummary, TruthLabels,
    };
    pub use crate::perf::PerfCounters;
    pub use crate::regime::{steps_for, RegimePhase, RegimePlan};
    pub use crate::scenario::{AuthMode, CommsMode, ControllerKind, Scenario, ScenarioBuilder};
    pub use crate::trace::{TraceDetail, TraceDigest, TracePhase, TraceRecord, Tracer};
    pub use crate::world::{
        AuthMaterial, BeaconLie, CommState, HeardPeer, Rsu, VehicleNode, World,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use platooon_sanity::*;

    /// Internal helpers shared by the engine-level tests.
    mod platooon_sanity {
        use super::*;

        pub fn quick(label: &str) -> Scenario {
            Scenario::builder()
                .label(label)
                .vehicles(5)
                .duration(20.0)
                .seed(1)
                .build()
        }
    }

    #[test]
    fn baseline_platoon_is_stable_and_safe() {
        let mut engine = Engine::new(quick("baseline"));
        let s = engine.run();
        assert_eq!(s.collisions, 0, "honest platoon must not crash");
        assert!(s.string_stable, "honest CACC platoon must be string stable");
        assert!(
            s.max_spacing_error < 3.0,
            "errors stay small: {}",
            s.max_spacing_error
        );
        assert!(
            s.leader_tail_pdr > 0.9,
            "clean channel PDR: {}",
            s.leader_tail_pdr
        );
        assert_eq!(s.fragmented_fraction, 0.0);
    }

    /// A passive listener counting the deliveries its registered receiver
    /// overhears (regression scaffolding for delivery-target dedup).
    #[derive(Debug)]
    struct CountingEar {
        id: platoon_v2x::message::NodeId,
        heard: usize,
    }

    impl Attack for CountingEar {
        fn name(&self) -> &'static str {
            "counting-ear"
        }
        fn attribute(&self) -> SecurityAttribute {
            SecurityAttribute::Confidentiality
        }
        fn receiver(&self, _world: &World) -> Option<platoon_v2x::medium::Receiver> {
            Some(platoon_v2x::medium::Receiver {
                id: self.id,
                position: (60.0, 3.0),
            })
        }
        fn observe(
            &mut self,
            _world: &mut World,
            _rng: &mut rand::rngs::StdRng,
            deliveries: &[platoon_v2x::message::Delivery],
        ) {
            self.heard += deliveries.iter().filter(|d| d.receiver == self.id).count();
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn duplicate_attack_receivers_are_deduplicated() {
        // Two attacks registering the same receiver id used to put the node
        // on the medium's delivery roster twice, so every frame in range was
        // delivered (and counted, and fed to observers) twice. The engine
        // now drops the duplicate registration.
        let ear_id = platoon_v2x::message::NodeId(4242);
        let run_with_ears = |ears: usize| {
            let mut engine = Engine::new(quick("dedup"));
            for _ in 0..ears {
                engine.add_attack(Box::new(CountingEar {
                    id: ear_id,
                    heard: 0,
                }));
            }
            engine.run();
            engine.attacks()[0]
                .as_any()
                .downcast_ref::<CountingEar>()
                .expect("first attack is the ear")
                .heard
        };
        let single = run_with_ears(1);
        let double = run_with_ears(2);
        assert!(single > 0, "the ear overhears platoon traffic");
        assert_eq!(
            single, double,
            "a colliding second registration must not duplicate deliveries"
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let run = || Engine::new(quick("det")).run();
        let a = run();
        let b = run();
        assert_eq!(a.max_spacing_error, b.max_spacing_error);
        assert_eq!(a.oscillation_energy, b.oscillation_energy);
        assert_eq!(a.leader_tail_pdr, b.leader_tail_pdr);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Engine::new(
            Scenario::builder()
                .vehicles(4)
                .duration(10.0)
                .seed(1)
                .build(),
        )
        .run();
        let b = Engine::new(
            Scenario::builder()
                .vehicles(4)
                .duration(10.0)
                .seed(2)
                .build(),
        )
        .run();
        // Channel noise differs, so PDR or errors differ at least slightly.
        assert!(
            a.max_spacing_error != b.max_spacing_error || a.leader_tail_pdr != b.leader_tail_pdr
        );
    }

    #[test]
    fn all_controllers_hold_the_platoon() {
        for kind in [
            ControllerKind::Acc,
            ControllerKind::Cacc,
            ControllerKind::Ploeg,
            ControllerKind::Consensus,
        ] {
            let scenario = Scenario::builder()
                .label("ctrl")
                .vehicles(4)
                .controller(kind)
                .duration(30.0)
                .build();
            let s = Engine::new(scenario).run();
            assert_eq!(s.collisions, 0, "{kind:?} crashed");
            assert!(
                s.min_gap > 0.5,
                "{kind:?} got dangerously close: {}",
                s.min_gap
            );
        }
    }

    #[test]
    fn auth_modes_all_function() {
        for auth in [AuthMode::None, AuthMode::GroupMac, AuthMode::Pki] {
            let scenario = Scenario::builder()
                .vehicles(4)
                .auth(auth)
                .duration(15.0)
                .build();
            let s = Engine::new(scenario).run();
            assert_eq!(s.collisions, 0, "{auth:?}");
            assert_eq!(s.rejected_messages, 0, "{auth:?} rejected honest traffic");
        }
    }

    #[test]
    fn hybrid_comms_modes_function() {
        for comms in [
            CommsMode::DsrcOnly,
            CommsMode::HybridVlc,
            CommsMode::HybridCv2x,
        ] {
            let scenario = Scenario::builder()
                .vehicles(4)
                .comms(comms)
                .duration(15.0)
                .build();
            let s = Engine::new(scenario).run();
            assert_eq!(s.collisions, 0, "{comms:?}");
            assert!(
                s.leader_tail_pdr > 0.8,
                "{comms:?} pdr {}",
                s.leader_tail_pdr
            );
        }
    }

    #[test]
    fn step_profile_settles_without_collision() {
        use platoon_dynamics::profiles::SpeedProfile;
        let scenario = Scenario::builder()
            .vehicles(6)
            .profile(SpeedProfile::Step {
                initial: 20.0,
                target: 26.0,
                at: 10.0,
            })
            .duration(40.0)
            .build();
        let s = Engine::new(scenario).run();
        assert_eq!(s.collisions, 0);
        assert!(s.max_spacing_error < 5.0);
    }

    #[test]
    fn brake_test_keeps_safe_gaps() {
        use platoon_dynamics::profiles::SpeedProfile;
        let scenario = Scenario::builder()
            .vehicles(5)
            .profile(SpeedProfile::BrakeTest {
                cruise: 25.0,
                low: 12.0,
                brake_at: 10.0,
                hold: 8.0,
            })
            .duration(40.0)
            .build();
        let s = Engine::new(scenario).run();
        assert_eq!(
            s.collisions, 0,
            "emergency braking must not crash a CACC platoon"
        );
        assert!(s.min_gap > 0.0);
    }

    #[test]
    fn legitimate_joiner_gets_in() {
        use platoon_crypto::cert::PrincipalId;
        use platoon_proto::messages::PlatoonId;
        use platoon_v2x::message::NodeId;

        let scenario = Scenario::builder().vehicles(4).duration(30.0).build();
        let mut engine = Engine::new(scenario);
        let joiner = JoinerAgent::new(
            PrincipalId(500),
            NodeId(500),
            JoinerCredentials::None,
            PlatoonId(1),
            2.0,
        );
        engine.add_attack(Box::new(joiner));
        let s = engine.run();
        let agent = engine.attacks()[0]
            .as_any()
            .downcast_ref::<JoinerAgent>()
            .unwrap();
        assert!(agent.outcome().accepted, "join should be accepted");
        assert!(agent.outcome().accept_latency.unwrap() < 10.0);
        assert!(s.maneuvers.joins_accepted >= 1);
        assert!(
            s.maneuvers.joins_completed >= 1,
            "arrival beacon completes the join"
        );
    }

    #[test]
    fn fuel_consumption_is_plausible() {
        let s = Engine::new(quick("fuel")).run();
        assert!(
            (10.0..60.0).contains(&s.fuel_l_per_100km),
            "fleet fuel {} L/100km",
            s.fuel_l_per_100km
        );
    }

    #[test]
    fn events_log_join_lifecycle() {
        use platoon_crypto::cert::PrincipalId;
        use platoon_proto::messages::PlatoonId;
        use platoon_v2x::message::NodeId;

        let scenario = Scenario::builder().vehicles(3).duration(20.0).build();
        let mut engine = Engine::new(scenario);
        engine.add_attack(Box::new(JoinerAgent::new(
            PrincipalId(501),
            NodeId(501),
            JoinerCredentials::None,
            PlatoonId(1),
            2.0,
        )));
        engine.run();
        assert!(
            engine
                .events()
                .count(|e| matches!(e, Event::JoinAccepted { .. }))
                >= 1
        );
    }
}
