//! Lightweight engine performance counters.
//!
//! The engine increments these on its hot path (frame building, delivery
//! processing, detector ingest, control computation); they cost a handful
//! of integer adds per step and are *deterministic*: for a fixed scenario
//! and seed every counter is reproduced exactly, regardless of worker
//! count, machine or wall-clock speed. That determinism is what lets the
//! perf pipeline (`platoon_core::perf`) commit counter totals to a golden
//! file and gate CI on them, while wall-times are reported separately and
//! compared only with generous tolerances.

use serde::{Deserialize, Serialize};

/// Deterministic per-run engine work counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Communication steps executed.
    pub ticks: u64,
    /// Frames handed to the medium (beacons, hybrid copies, relays and
    /// manoeuvre messages; attack-injected frames excluded).
    pub frames_built: u64,
    /// Payload bytes actually *encoded* (sealed envelopes). Hybrid copies
    /// and relays share the encoded bytes instead of re-encoding them.
    pub bytes_encoded: u64,
    /// Payload bytes summed over every frame built, counting shared
    /// payloads once per frame — what a clone-per-frame builder would have
    /// copied.
    pub frame_bytes: u64,
    /// Frames that *shared* an already-encoded payload instead of cloning
    /// it (hybrid channel copies, VLC relays): each one is an allocation
    /// plus a byte copy the arena avoided.
    pub payload_clones_avoided: u64,
    /// Deliveries the engine processed (after the medium's channel model).
    pub deliveries: u64,
    /// Observations fed to the misbehaviour-detection pipeline (beacon,
    /// control and sensor observations plus per-step ticks).
    pub detector_observations: u64,
    /// Controller commands computed.
    pub commands_computed: u64,
}

impl PerfCounters {
    /// Adds another run's counters (for batch totals).
    pub fn accumulate(&mut self, other: &PerfCounters) {
        self.ticks += other.ticks;
        self.frames_built += other.frames_built;
        self.bytes_encoded += other.bytes_encoded;
        self.frame_bytes += other.frame_bytes;
        self.payload_clones_avoided += other.payload_clones_avoided;
        self.deliveries += other.deliveries;
        self.detector_observations += other.detector_observations;
        self.commands_computed += other.commands_computed;
    }

    /// Writes the counters as a canonical-JSON object body (fixed field
    /// order, integers only — byte-stable by construction).
    pub fn write_canonical(&self, w: &mut crate::harness::json::Writer) {
        w.field_u64("ticks", self.ticks);
        w.field_u64("frames_built", self.frames_built);
        w.field_u64("bytes_encoded", self.bytes_encoded);
        w.field_u64("frame_bytes", self.frame_bytes);
        w.field_u64("payload_clones_avoided", self.payload_clones_avoided);
        w.field_u64("deliveries", self.deliveries);
        w.field_u64("detector_observations", self.detector_observations);
        w.field_u64("commands_computed", self.commands_computed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_every_field() {
        let a = PerfCounters {
            ticks: 1,
            frames_built: 2,
            bytes_encoded: 3,
            frame_bytes: 4,
            payload_clones_avoided: 5,
            deliveries: 6,
            detector_observations: 7,
            commands_computed: 8,
        };
        let mut total = a;
        total.accumulate(&a);
        assert_eq!(
            total,
            PerfCounters {
                ticks: 2,
                frames_built: 4,
                bytes_encoded: 6,
                frame_bytes: 8,
                payload_clones_avoided: 10,
                deliveries: 12,
                detector_observations: 14,
                commands_computed: 16,
            }
        );
    }

    #[test]
    fn canonical_rendering_is_stable() {
        let mut w = crate::harness::json::Writer::new();
        let c = PerfCounters::default();
        w.obj(|w| c.write_canonical(w));
        let text = w.finish();
        assert!(text.contains("\"ticks\": 0"));
        assert!(text.contains("\"payload_clones_avoided\": 0"));
        // Parses back through the canonical parser.
        crate::harness::json::parse(&text).expect("canonical counters parse");
    }
}
