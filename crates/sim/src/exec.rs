//! The per-job execution core shared by the batch harness and the job
//! service.
//!
//! [`Batch`](crate::harness::Batch) (launch-and-exit grids) and the
//! long-running `platoon-server` job service both need the same three
//! guarantees around one unit of work:
//!
//! * **crash isolation** — a panicking job becomes a
//!   [`JobOutcome::Failed`] entry instead of unwinding into the scheduler;
//! * **bounded wall time** — with a budget set, a hung job times out on a
//!   watchdog thread instead of stalling its worker;
//! * **honest timing** — queue wait and execution time are measured
//!   *separately* ([`JobTiming`]), so a service-side timeout can never
//!   misattribute scheduler delay to the job itself: the budget clock only
//!   starts once a worker actually picks the job up.
//!
//! This module is that single code path, factored out of the harness so the
//! two schedulers cannot diverge.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How one job ended.
///
/// Every executor in the workspace wraps job bodies in `catch_unwind`
/// (and, when a wall-time budget is set, a watchdog), so a single crashing
/// cell degrades to a `Failed` entry instead of poisoning the scheduler.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome<T> {
    /// The job returned normally.
    Ok(T),
    /// The job panicked or blew its wall-time budget.
    Failed {
        /// Human-readable cause (panic message or budget diagnostics).
        reason: String,
    },
}

impl<T> JobOutcome<T> {
    /// The value, if the job succeeded.
    pub fn as_ok(&self) -> Option<&T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// Consumes the outcome, yielding the value if the job succeeded.
    pub fn into_ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// The failure reason, if the job failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            JobOutcome::Ok(_) => None,
            JobOutcome::Failed { reason } => Some(reason),
        }
    }

    /// Whether the job failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

/// Where one job's wall-clock time went, split at the moment a worker
/// claimed it.
///
/// `queue_wait` is scheduler delay (the job sat behind other work);
/// `execution` is the job's own running time, and is the only component a
/// [wall-time budget](execute_job) is charged against. Timing is
/// measurement, never input: no simulation result depends on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobTiming {
    /// Time between enqueue and a worker claiming the job.
    pub queue_wait: Duration,
    /// Time the job spent actually executing (until it returned, panicked,
    /// or its budget expired).
    pub execution: Duration,
}

/// One executed job: its outcome plus where its wall-clock time went.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutedJob<T> {
    /// How the job ended.
    pub outcome: JobOutcome<T>,
    /// Queue-wait vs execution split.
    pub timing: JobTiming,
}

/// Runs one claimed job to an [`ExecutedJob`].
///
/// `catch_unwind` converts a panic into [`JobOutcome::Failed`]; when
/// `budget` is set the job runs on a watchdog thread so an over-budget cell
/// times out instead of stalling its worker. The budget is charged against
/// *execution* time only — `queue_wait` (how long the job sat enqueued
/// before this call, as measured by the caller) is recorded verbatim and
/// surfaced in the timeout diagnostics, never counted against the job.
///
/// The watchdog thread is joined as soon as the job finishes under budget;
/// only a job that never returns detaches and leaks its thread until
/// process exit (the budget bounds scheduler latency, not resource
/// reclamation for genuinely hung jobs).
pub fn execute_job<T: Send + 'static>(
    run: Box<dyn FnOnce(u64) -> T + Send>,
    seed: u64,
    budget: Option<Duration>,
    queue_wait: Duration,
) -> ExecutedJob<T> {
    let started = Instant::now();
    let done = |outcome| ExecutedJob {
        outcome,
        timing: JobTiming {
            queue_wait,
            execution: started.elapsed(),
        },
    };
    let Some(limit) = budget else {
        return done(match catch_unwind(AssertUnwindSafe(|| run(seed))) {
            Ok(value) => JobOutcome::Ok(value),
            Err(payload) => JobOutcome::Failed {
                reason: format!("job panicked: {}", panic_message(payload.as_ref())),
            },
        });
    };
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("batch-job-watchdog".into())
        .spawn(move || {
            // A send into a receiver that already timed out is harmless.
            let _ = tx.send(catch_unwind(AssertUnwindSafe(|| run(seed))));
        });
    let handle = match spawned {
        Ok(handle) => handle,
        Err(_) => {
            return done(JobOutcome::Failed {
                reason: "could not spawn the job watchdog thread".into(),
            })
        }
    };
    match rx.recv_timeout(limit) {
        Ok(result) => {
            // The job finished under budget: the watchdog thread has sent
            // its result and is exiting — reap it here so large budgeted
            // batches do not accumulate one lingering thread per
            // completed job. (Its own panics were already caught and
            // shipped through the channel, so join cannot re-raise.)
            let _ = handle.join();
            done(match result {
                Ok(value) => JobOutcome::Ok(value),
                Err(payload) => JobOutcome::Failed {
                    reason: format!("job panicked: {}", panic_message(payload.as_ref())),
                },
            })
        }
        Err(_) => {
            // Over budget: the job is still running and cannot be
            // cancelled cooperatively — detach the watchdog (it leaks
            // until process exit; the budget bounds grid latency, not
            // resource reclamation for genuinely hung jobs).
            drop(handle);
            done(JobOutcome::Failed {
                reason: format!(
                    "job exceeded its wall-time budget of {limit:?} \
                     (execution time only; {queue_wait:?} of queue wait excluded)"
                ),
            })
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_excludes_queue_wait() {
        let queued = Duration::from_millis(250);
        let job = execute_job(
            Box::new(|seed| {
                std::thread::sleep(Duration::from_millis(20));
                seed + 1
            }),
            41,
            None,
            queued,
        );
        assert_eq!(job.outcome, JobOutcome::Ok(42));
        assert_eq!(
            job.timing.queue_wait, queued,
            "queue wait recorded verbatim"
        );
        assert!(
            job.timing.execution >= Duration::from_millis(20),
            "execution covers the job body: {:?}",
            job.timing.execution
        );
        assert!(
            job.timing.execution < Duration::from_millis(200),
            "execution must not absorb the queue wait: {:?}",
            job.timing.execution
        );
    }

    #[test]
    fn budget_is_charged_against_execution_not_queue_wait() {
        // A job that sat in the queue for longer than the whole budget must
        // still complete: only its own running time counts.
        let job = execute_job(
            Box::new(|_| {
                std::thread::sleep(Duration::from_millis(10));
                7u64
            }),
            0,
            Some(Duration::from_millis(500)),
            Duration::from_secs(3600),
        );
        assert_eq!(job.outcome, JobOutcome::Ok(7));
    }

    #[test]
    fn timeout_diagnostics_name_the_excluded_queue_wait() {
        let queued = Duration::from_millis(125);
        let job = execute_job(
            Box::new(|_| -> u64 {
                std::thread::sleep(Duration::from_secs(600));
                0
            }),
            0,
            Some(Duration::from_millis(50)),
            queued,
        );
        let reason = job.outcome.failure().expect("job timed out");
        assert!(reason.contains("wall-time budget"), "{reason}");
        assert!(
            reason.contains("queue wait excluded"),
            "timeout must disclaim scheduler delay: {reason}"
        );
        assert_eq!(job.timing.queue_wait, queued);
    }

    #[test]
    fn panics_carry_their_message() {
        let job = execute_job(
            Box::new(|_| -> u64 { panic!("exec-core probe") }),
            0,
            None,
            Duration::ZERO,
        );
        let reason = job.outcome.failure().expect("job panicked");
        assert!(reason.contains("exec-core probe"), "{reason}");
    }
}
