//! The attack hook interface.
//!
//! An [`Attack`] is a pluggable adversary with three hook points per
//! communication step, mirroring the three things the paper's attackers can
//! do to a platoon (§V): act on the world (plant jammers, spoof sensors,
//! infect ECUs), act on the air (record, replay and inject frames), and
//! observe the air (eavesdrop deliveries). Attacks live in the
//! `platoon-attacks` crate; the trait lives here so the engine can drive
//! them without a dependency cycle.

use crate::world::World;
use platoon_v2x::medium::Receiver;
use platoon_v2x::message::{Delivery, Frame};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;

/// The security attribute an attack compromises (the paper's §IV taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecurityAttribute {
    /// Authenticity of identities and messages.
    Authenticity,
    /// Integrity of transmitted information.
    Integrity,
    /// Availability of the platooning service.
    Availability,
    /// Confidentiality of platoon data.
    Confidentiality,
}

impl fmt::Display for SecurityAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityAttribute::Authenticity => f.write_str("authenticity"),
            SecurityAttribute::Integrity => f.write_str("integrity"),
            SecurityAttribute::Availability => f.write_str("availability"),
            SecurityAttribute::Confidentiality => f.write_str("confidentiality"),
        }
    }
}

/// A pluggable adversary.
pub trait Attack: fmt::Debug {
    /// Short identifier, e.g. `"replay"`.
    fn name(&self) -> &'static str;

    /// The primary security attribute this attack compromises.
    fn attribute(&self) -> SecurityAttribute;

    /// Called at the start of each communication step. The attack may mutate
    /// the world: plant or move jammers, set sensor faults, flip infection
    /// flags, reposition itself.
    fn before_comm(&mut self, _world: &mut World, _rng: &mut StdRng) {}

    /// Called with the frames about to be transmitted this step. The attack
    /// may record them (for later replay), tamper nothing (frames of honest
    /// nodes are not modifiable in-flight on a broadcast medium), and push
    /// its own injected frames.
    fn on_air(&mut self, _world: &mut World, _rng: &mut StdRng, _frames: &mut Vec<Frame>) {}

    /// Called with every successful delivery of the step — what a passive
    /// listener at the attack's receiver position overhears.
    fn observe(&mut self, _world: &mut World, _rng: &mut StdRng, _deliveries: &[Delivery]) {}

    /// If the attack owns a radio receiver, the engine registers it on the
    /// medium each step so it overhears traffic like any other node. The
    /// world is provided so mobile attackers can track the platoon.
    fn receiver(&self, _world: &World) -> Option<Receiver> {
        None
    }

    /// Downcasting support so experiments can read attack-specific state
    /// (e.g. bytes captured by the eavesdropper) after a run.
    fn as_any(&self) -> &dyn Any;

    /// Clones the attack (including all adversary state) into a fresh
    /// box, for engine snapshots. `None` means the attack does not
    /// support snapshotting; engines carrying it cannot be checkpointed.
    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        None
    }
}

/// A no-op attack, useful as the baseline arm of every experiment.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAttack;

impl Attack for NoAttack {
    fn name(&self) -> &'static str {
        "none"
    }

    fn attribute(&self) -> SecurityAttribute {
        // The baseline compromises nothing; availability is the least
        // misleading placeholder.
        SecurityAttribute::Availability
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_attack_is_inert() {
        let a = NoAttack;
        assert_eq!(a.name(), "none");
        assert!(a.as_any().downcast_ref::<NoAttack>().is_some());
    }

    #[test]
    fn attribute_display() {
        assert_eq!(SecurityAttribute::Integrity.to_string(), "integrity");
        assert_eq!(
            SecurityAttribute::Confidentiality.to_string(),
            "confidentiality"
        );
    }
}
