//! Deterministic per-tick tracing: the hook trait and record types.
//!
//! The paper's §V attack-effect claims (oscillation, disband, blocked
//! joins) are *temporal* stories, but a [`RunSummary`](crate::metrics::RunSummary)
//! only exposes end-of-run aggregates — when a golden diverges or a
//! detector misfires there is no way to see which tick and which phase
//! (fault → attack → medium → defense → detector → dynamics) went wrong.
//! A [`Tracer`] attached via [`Engine::attach_tracer`](crate::engine::Engine::attach_tracer)
//! receives one [`TraceRecord`] per phase event, each stamped with the
//! tick index and the tick-derived simulation time only (never wall
//! clock), so two runs of the same scenario and seed produce *identical*
//! record streams regardless of worker count, machine or load.
//!
//! This module follows the same split as [`fault`](crate::fault) and
//! [`attack`](crate::attack): the trait and record types live in
//! `platoon-sim` (so the engine can emit without a dependency cycle),
//! while the bounded JSONL recorder and the trace-diff helper live in the
//! `platoon-trace` crate.

use crate::harness::json::Writer;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// The engine phase a trace record was emitted from, in step order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracePhase {
    /// Pre-phase: driving-regime phase transitions (emitted only when the
    /// scenario carries a [`RegimePlan`](crate::regime::RegimePlan)).
    Regime,
    /// Phase 0: benign fault application.
    Fault,
    /// Phase 1–2: adversary world mutation and on-air frame tampering.
    Attack,
    /// Phase 2: the radio medium's delivery decision.
    Medium,
    /// Phase 3: defense verdicts on received messages.
    Defense,
    /// Phase 4: misbehaviour detections and pipeline alerts.
    Detector,
    /// Phase 5: dynamics-level safety events.
    Dynamics,
}

impl TracePhase {
    /// Stable lowercase name used in the canonical JSONL encoding.
    pub fn name(&self) -> &'static str {
        match self {
            TracePhase::Regime => "regime",
            TracePhase::Fault => "fault",
            TracePhase::Attack => "attack",
            TracePhase::Medium => "medium",
            TracePhase::Defense => "defense",
            TracePhase::Detector => "detector",
            TracePhase::Dynamics => "dynamics",
        }
    }
}

/// What happened — the phase-specific payload of a [`TraceRecord`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceDetail {
    /// A driving-regime phase became active this tick.
    RegimeEnter {
        /// The phase's label from the plan.
        label: String,
    },
    /// A plugged-in fault's `apply` hook ran this tick.
    FaultApplied {
        /// The fault's stable name.
        fault: &'static str,
    },
    /// The tick's outgoing frame tally after `Attack::on_air`.
    AttackFrames {
        /// Frames built by honest nodes before attacks touched the air.
        honest: u64,
        /// Frames handed to the medium after every `on_air` hook
        /// (injected frames raise it above `honest`; a dropping attack
        /// can lower it).
        total: u64,
    },
    /// The medium's per-tick delivery decision.
    MediumStep {
        /// Frames offered to the medium.
        offered: u64,
        /// (frame, receiver) pairs that decoded successfully.
        delivered: u64,
        /// (frame, receiver) pairs lost to SINR failure.
        lost: u64,
        /// Maximum delivery latency this tick, seconds (canonical NaN
        /// when nothing was delivered — the same convention as
        /// [`per_frame_ratio`](crate::metrics::per_frame_ratio)).
        max_latency: f64,
    },
    /// A received message was rejected (engine auth or a defense filter).
    DefenseVerdict {
        /// Receiving vehicle index.
        receiver: u64,
        /// Claimed sender principal id.
        sender: u64,
        /// The reject reason's `Debug` rendering.
        reason: String,
    },
    /// A misbehaviour detection fired.
    DetectorAlert {
        /// The accused principal id; `None` for an unattributed
        /// channel-level alarm.
        suspect: Option<u64>,
    },
    /// A dynamics-level safety event.
    SafetyEvent {
        /// Stable event kind (`"collision"`, `"service-down"`).
        kind: &'static str,
        /// The vehicle index involved.
        vehicle: u64,
    },
}

impl TraceDetail {
    /// Stable kind tag used in the canonical JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceDetail::RegimeEnter { .. } => "regime_enter",
            TraceDetail::FaultApplied { .. } => "fault_applied",
            TraceDetail::AttackFrames { .. } => "attack_frames",
            TraceDetail::MediumStep { .. } => "medium_step",
            TraceDetail::DefenseVerdict { .. } => "defense_verdict",
            TraceDetail::DetectorAlert { .. } => "detector_alert",
            TraceDetail::SafetyEvent { .. } => "safety_event",
        }
    }
}

/// One phase-scoped trace record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Communication-step index (0-based).
    pub tick: u64,
    /// Simulation time at the start of the tick, seconds. Derived from
    /// the tick index and the scenario's step length — never wall clock.
    pub time: f64,
    /// The emitting phase.
    pub phase: TracePhase,
    /// The phase-specific payload.
    pub detail: TraceDetail,
}

impl TraceRecord {
    /// Renders the record as one compact canonical-JSON line (no trailing
    /// newline): fixed field order, `{:?}` floats, non-finite floats as
    /// `"nan"`/`"inf"`/`"-inf"` strings. Byte-stable for identical
    /// records, which is what trace files' worker-count invariance and
    /// the digest hash rest on.
    pub fn to_canonical_line(&self) -> String {
        let mut w = Writer::compact();
        w.obj(|w| {
            w.field_u64("tick", self.tick);
            w.field_f64("time", self.time);
            w.field_str("phase", self.phase.name());
            w.field_obj("detail", |w| {
                w.field_str("kind", self.detail.kind());
                match &self.detail {
                    TraceDetail::RegimeEnter { label } => {
                        w.field_str("label", label);
                    }
                    TraceDetail::FaultApplied { fault } => {
                        w.field_str("fault", fault);
                    }
                    TraceDetail::AttackFrames { honest, total } => {
                        w.field_u64("honest", *honest);
                        w.field_u64("total", *total);
                    }
                    TraceDetail::MediumStep {
                        offered,
                        delivered,
                        lost,
                        max_latency,
                    } => {
                        w.field_u64("offered", *offered);
                        w.field_u64("delivered", *delivered);
                        w.field_u64("lost", *lost);
                        w.field_f64("max_latency", *max_latency);
                    }
                    TraceDetail::DefenseVerdict {
                        receiver,
                        sender,
                        reason,
                    } => {
                        w.field_u64("receiver", *receiver);
                        w.field_u64("sender", *sender);
                        w.field_str("reason", reason);
                    }
                    TraceDetail::DetectorAlert { suspect } => match suspect {
                        Some(p) => w.field_u64("suspect", *p),
                        None => w.field_str("suspect", "channel"),
                    },
                    TraceDetail::SafetyEvent { kind, vehicle } => {
                        w.field_str("event", kind);
                        w.field_u64("vehicle", *vehicle);
                    }
                }
            });
        });
        w.finish()
    }
}

/// Summary of a recorded trace, folded into the run's
/// [`RunSummary`](crate::metrics::RunSummary) (and therefore the golden
/// snapshots) when a tracer is attached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceDigest {
    /// Total records emitted (including any dropped past capacity).
    pub records: u64,
    /// Records dropped after the recorder's bound was hit.
    pub dropped: u64,
    /// FNV-1a hash over every emitted record's canonical line (dropped
    /// records included), so the digest pins the *full* stream even when
    /// the retained file is truncated.
    pub hash: u64,
}

impl TraceDigest {
    /// Canonical field-by-field rendering. The hash encodes as a 16-digit
    /// hex string: golden comparison parses bare numbers as `f64`, which
    /// cannot represent every u64 exactly, so a string keeps the gate
    /// exact.
    pub fn write_canonical(&self, w: &mut Writer) {
        w.field_u64("records", self.records);
        w.field_u64("dropped", self.dropped);
        w.field_str("hash", &format!("{:016x}", self.hash));
    }
}

/// A per-tick trace sink, attached to the engine alongside attacks,
/// defenses and faults via
/// [`Engine::attach_tracer`](crate::engine::Engine::attach_tracer).
///
/// Implementations must be deterministic functions of the record stream:
/// no wall clock, no thread ids, no randomness — the whole point is that
/// traces are byte-identical across worker counts and machines.
pub trait Tracer: std::fmt::Debug + Send {
    /// Receives one record. Called in emission order within a tick and in
    /// tick order across the run.
    fn record(&mut self, record: &TraceRecord);

    /// The digest of everything recorded so far.
    fn digest(&self) -> TraceDigest;

    /// Downcasting support (extract a concrete recorder after a run).
    fn as_any(&self) -> &dyn Any;

    /// Clones the tracer (including every record buffered so far) into a
    /// fresh box, for engine snapshots. `None` means the tracer does not
    /// support snapshotting; engines carrying it cannot be checkpointed.
    fn clone_box(&self) -> Option<Box<dyn Tracer>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::json;

    #[test]
    fn canonical_lines_are_single_line_and_parse() {
        let records = [
            TraceRecord {
                tick: 0,
                time: 0.0,
                phase: TracePhase::Fault,
                detail: TraceDetail::FaultApplied {
                    fault: "sensor-outage",
                },
            },
            TraceRecord {
                tick: 3,
                time: 0.3,
                phase: TracePhase::Medium,
                detail: TraceDetail::MediumStep {
                    offered: 6,
                    delivered: 0,
                    lost: 30,
                    max_latency: f64::NAN,
                },
            },
            TraceRecord {
                tick: 9,
                time: 0.9,
                phase: TracePhase::Detector,
                detail: TraceDetail::DetectorAlert { suspect: None },
            },
        ];
        for r in &records {
            let line = r.to_canonical_line();
            assert!(!line.contains('\n'), "JSONL line must be single-line");
            let v = json::parse(&line).expect("line parses");
            assert_eq!(v.get("tick").unwrap().as_f64(), Some(r.tick as f64));
            assert_eq!(
                v.get("phase"),
                Some(&json::Value::Str(r.phase.name().into()))
            );
            let detail = v.get("detail").expect("detail object");
            assert_eq!(
                detail.get("kind"),
                Some(&json::Value::Str(r.detail.kind().into()))
            );
        }
        // The empty-delivery tick carries the canonical "nan" encoding.
        let line = records[1].to_canonical_line();
        assert!(line.contains("\"max_latency\": \"nan\""), "{line}");
    }

    #[test]
    fn phase_names_are_stable_and_distinct() {
        let phases = [
            TracePhase::Regime,
            TracePhase::Fault,
            TracePhase::Attack,
            TracePhase::Medium,
            TracePhase::Defense,
            TracePhase::Detector,
            TracePhase::Dynamics,
        ];
        let names: Vec<&str> = phases.iter().map(TracePhase::name).collect();
        assert_eq!(
            names,
            ["regime", "fault", "attack", "medium", "defense", "detector", "dynamics"]
        );
    }

    #[test]
    fn digest_hash_encodes_as_exact_hex_string() {
        let d = TraceDigest {
            records: 12,
            dropped: 2,
            hash: 0x00ab_cdef_1234_5678,
        };
        let mut w = Writer::new();
        w.obj(|w| d.write_canonical(w));
        let text = w.finish();
        assert!(text.contains("\"hash\": \"00abcdef12345678\""), "{text}");
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("records").unwrap().as_f64(), Some(12.0));
    }
}
