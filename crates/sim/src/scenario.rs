//! Scenario configuration and builder.
//!
//! A scenario describes everything about a run *except* the attacks and
//! defenses, which are plugged into the engine separately so every
//! experiment can ablate them independently.

use crate::regime::RegimePlan;
use platoon_dynamics::profiles::SpeedProfile;
use platoon_dynamics::vehicle::VehicleParams;
use platoon_proto::maneuver::ManeuverConfig;
use platoon_v2x::medium::RadioMedium;
use serde::{Deserialize, Serialize};

/// Which longitudinal controller the followers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Radar-only adaptive cruise control.
    Acc,
    /// PATH/Rajamani CACC (leader + predecessor feed-forward).
    Cacc,
    /// Ploeg time-gap CACC (predecessor feed-forward only).
    Ploeg,
    /// Consensus controller over {predecessor, leader}.
    Consensus,
}

/// How outgoing messages are sealed and, symmetrically, what receivers
/// expect (the deployed key infrastructure).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthMode {
    /// Plain envelopes — the undefended baseline.
    None,
    /// Shared platoon group key (HMAC).
    GroupMac,
    /// Shared platoon group key with payload encryption (encrypt-then-MAC):
    /// adds confidentiality against eavesdroppers.
    EncryptedGroupMac,
    /// Per-vehicle certified signatures.
    Pki,
}

/// Which channels vehicles transmit their beacons on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommsMode {
    /// 802.11p only (the paper's baseline).
    DsrcOnly,
    /// 802.11p plus VLC to the adjacent vehicle (SP-VLC hybrid, §VI-A.4).
    HybridVlc,
    /// 802.11p plus C-V2X sidelink redundancy \[36\].
    HybridCv2x,
}

/// Full description of a simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label for reports.
    pub label: String,
    /// Number of vehicles including the leader.
    pub vehicles: usize,
    /// Vehicle parameters (same for the whole platoon).
    pub params: VehicleParams,
    /// Follower controller.
    pub controller: ControllerKind,
    /// Desired bumper-to-bumper gap in metres (CACC constant spacing).
    pub desired_gap: f64,
    /// Leader speed profile.
    pub profile: SpeedProfile,
    /// Authentication deployment.
    pub auth: AuthMode,
    /// Channel deployment.
    pub comms: CommsMode,
    /// Communication/control step in seconds (beacon interval).
    pub comm_step: f64,
    /// Dynamics integration substep in seconds.
    pub dyn_step: f64,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Positions (x, y) of roadside units.
    pub rsu_positions: Vec<(f64, f64)>,
    /// Manoeuvre engine limits.
    pub maneuvers: ManeuverConfig,
    /// Radio medium parameters.
    pub medium: RadioMedium,
    /// Maximum platoon size (roster capacity).
    pub max_platoon_size: usize,
    /// Number of independent platoons on the corridor (each of
    /// [`Self::vehicles`] trucks). `1` is the classic single-platoon world;
    /// larger values build highway-scale worlds where platoon 1 leads and
    /// owns the manoeuvre engine.
    pub platoons: usize,
    /// Bumper-to-bumper distance between consecutive platoons in metres
    /// (only meaningful when [`Self::platoons`] > 1).
    pub platoon_spacing: f64,
    /// Piecewise driving-regime schedule (cruise → congestion →
    /// stop-and-go → tunnel, …). `None` keeps the single static regime.
    #[serde(default)]
    pub regimes: Option<RegimePlan>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::builder().build()
    }
}

impl Scenario {
    /// Starts a builder with sensible defaults: 8 trucks, CACC at a 10 m
    /// gap, 25 m/s cruise with a sinusoidal perturbation, 10 Hz beacons,
    /// no authentication, DSRC only, 60 s run.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                label: "default".to_string(),
                vehicles: 8,
                params: VehicleParams::truck(),
                controller: ControllerKind::Cacc,
                desired_gap: 10.0,
                profile: SpeedProfile::Sinusoid {
                    mean: 25.0,
                    amplitude: 1.5,
                    period: 20.0,
                },
                auth: AuthMode::None,
                comms: CommsMode::DsrcOnly,
                comm_step: 0.1,
                dyn_step: 0.01,
                duration: 60.0,
                seed: 42,
                rsu_positions: Vec::new(),
                maneuvers: ManeuverConfig::default(),
                medium: RadioMedium::default(),
                max_platoon_size: 16,
                platoons: 1,
                platoon_spacing: 150.0,
                regimes: None,
            },
        }
    }
}

/// Fluent builder for [`Scenario`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the report label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.scenario.label = label.into();
        self
    }

    /// Sets the platoon size (including the leader).
    pub fn vehicles(mut self, n: usize) -> Self {
        self.scenario.vehicles = n;
        self
    }

    /// Sets the vehicle parameters.
    pub fn params(mut self, params: VehicleParams) -> Self {
        self.scenario.params = params;
        self
    }

    /// Sets the follower controller.
    pub fn controller(mut self, kind: ControllerKind) -> Self {
        self.scenario.controller = kind;
        self
    }

    /// Sets the desired inter-vehicle gap in metres.
    pub fn desired_gap(mut self, gap: f64) -> Self {
        self.scenario.desired_gap = gap;
        self
    }

    /// Sets the leader speed profile.
    pub fn profile(mut self, profile: SpeedProfile) -> Self {
        self.scenario.profile = profile;
        self
    }

    /// Sets the authentication deployment.
    pub fn auth(mut self, auth: AuthMode) -> Self {
        self.scenario.auth = auth;
        self
    }

    /// Sets the channel deployment.
    pub fn comms(mut self, comms: CommsMode) -> Self {
        self.scenario.comms = comms;
        self
    }

    /// Sets the simulated duration in seconds.
    pub fn duration(mut self, secs: f64) -> Self {
        self.scenario.duration = secs;
        self
    }

    /// Sets the communication step (beacon interval), seconds. The beacon
    /// rate is its reciprocal: 0.05 → 20 Hz beaconing.
    pub fn comm_step(mut self, secs: f64) -> Self {
        self.scenario.comm_step = secs;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Adds a roadside unit at the given position.
    pub fn rsu(mut self, position: (f64, f64)) -> Self {
        self.scenario.rsu_positions.push(position);
        self
    }

    /// Sets the manoeuvre limits.
    pub fn maneuvers(mut self, cfg: ManeuverConfig) -> Self {
        self.scenario.maneuvers = cfg;
        self
    }

    /// Sets the medium parameters.
    pub fn medium(mut self, medium: RadioMedium) -> Self {
        self.scenario.medium = medium;
        self
    }

    /// Sets the maximum platoon size.
    pub fn max_platoon_size(mut self, n: usize) -> Self {
        self.scenario.max_platoon_size = n;
        self
    }

    /// Sets the number of independent platoons on the corridor (each of
    /// `vehicles` trucks; platoon 1 leads and owns the manoeuvre engine).
    pub fn platoons(mut self, n: usize) -> Self {
        self.scenario.platoons = n;
        self
    }

    /// Sets the bumper-to-bumper distance between consecutive platoons.
    pub fn platoon_spacing(mut self, metres: f64) -> Self {
        self.scenario.platoon_spacing = metres;
        self
    }

    /// Attaches a piecewise driving-regime plan; phases retarget the
    /// leader profile, gap, channel noise and beacon cadence at
    /// deterministic tick boundaries.
    pub fn regimes(mut self, plan: RegimePlan) -> Self {
        self.scenario.regimes = Some(plan);
        self
    }

    /// Sets the medium's radio horizon in metres: beyond this distance
    /// frames are treated as undetectable and the medium switches from the
    /// all-pairs scan to a spatial-grid index. `f64::INFINITY` (the
    /// default) keeps the exact legacy full-scan behaviour.
    pub fn radio_horizon(mut self, metres: f64) -> Self {
        self.scenario.medium.radio_horizon_m = metres;
        self
    }

    /// Finalises the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (fewer than 2
    /// vehicles, non-positive steps, or a duration shorter than one step).
    pub fn build(self) -> Scenario {
        let mut s = self.scenario;
        // The medium's step length is definitionally the communication step;
        // attack rate-accumulators and MAC scheduling both read it from the
        // medium, so keep the two coupled.
        s.medium.step_len = s.comm_step;
        assert!(s.vehicles >= 2, "a platoon needs at least 2 vehicles");
        assert!(
            s.comm_step > 0.0 && s.dyn_step > 0.0,
            "steps must be positive"
        );
        assert!(
            s.comm_step >= s.dyn_step,
            "comm step must not be shorter than the dynamics step"
        );
        assert!(s.duration >= s.comm_step, "duration shorter than one step");
        assert!(s.max_platoon_size >= s.vehicles, "platoon exceeds max size");
        assert!(s.platoons >= 1, "at least one platoon");
        assert!(
            s.platoon_spacing.is_finite() && s.platoon_spacing >= 0.0,
            "platoon spacing must be finite and non-negative"
        );
        if let Some(plan) = &s.regimes {
            if let Err(msg) = plan.validate() {
                panic!("invalid regime plan: {msg}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds() {
        let s = Scenario::default();
        assert_eq!(s.vehicles, 8);
        assert_eq!(s.controller, ControllerKind::Cacc);
    }

    #[test]
    fn builder_sets_fields() {
        let s = Scenario::builder()
            .label("test")
            .vehicles(4)
            .controller(ControllerKind::Ploeg)
            .desired_gap(8.0)
            .auth(AuthMode::Pki)
            .comms(CommsMode::HybridVlc)
            .duration(30.0)
            .seed(7)
            .rsu((100.0, 5.0))
            .build();
        assert_eq!(s.label, "test");
        assert_eq!(s.vehicles, 4);
        assert_eq!(s.auth, AuthMode::Pki);
        assert_eq!(s.rsu_positions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_vehicle_rejected() {
        Scenario::builder().vehicles(1).build();
    }

    #[test]
    #[should_panic(expected = "max size")]
    fn oversize_platoon_rejected() {
        Scenario::builder()
            .vehicles(20)
            .max_platoon_size(10)
            .build();
    }
}
