//! Table I of the paper as data: the related surveys addressing
//! cybersecurity aspects of CAV, VANETs and platoons, with the attacks each
//! one discusses.
//!
//! This registry is what lets the repository *regenerate* Table I (and the
//! attack-coverage matrix implied by it) instead of merely citing it.

use crate::tables::TextTable;
use serde::Serialize;

/// One row of Table I: a prior survey and its coverage.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SurveyEntry {
    /// Citation key, e.g. `"Isaac et al., 2010 \[18\]"`.
    pub citation: &'static str,
    /// Publication year.
    pub year: u32,
    /// The paper's summary of the survey's key points and ideas.
    pub key_points: &'static str,
    /// Attacks discussed, normalised to short labels.
    pub attacks_discussed: &'static [&'static str],
    /// Whether the survey addresses platoons specifically (the gap the
    /// reproduced paper fills: most do not).
    pub covers_platoons: bool,
}

/// The Table I survey registry, in the paper's row order.
pub fn catalog() -> Vec<SurveyEntry> {
    vec![
        SurveyEntry {
            citation: "Isaac et al., 2010 [18]",
            year: 2010,
            key_points: "Detailed discussion of attacks; structures attacks and mechanisms \
                         using a cryptography-related classification: anonymity, key \
                         management, privacy, reputation and location.",
            attacks_discussed: &[
                "brute force",
                "misbehaving & malicious vehicles",
                "traffic analysis",
                "illusion",
                "position forging",
                "sybil",
            ],
            covers_platoons: false,
        },
        SurveyEntry {
            citation: "Checkoway et al., 2011 [21]",
            year: 2011,
            key_points: "Investigation of vehicle attack surfaces, classified by the range \
                         the attacker needs: indirect physical access, short-range wireless, \
                         long-range wireless.",
            attacks_discussed: &[
                "CD-based malware",
                "bluetooth",
                "remote keyless entry",
                "infrared ID",
                "cellular",
                "TPMS",
            ],
            covers_platoons: false,
        },
        SurveyEntry {
            citation: "AL-Kahtani et al., 2012 [12]",
            year: 2012,
            key_points: "Describes a variety of attacks with detailed explanations of how \
                         they compromise networks; attacks mapped to the security \
                         requirement broken (integrity, authentication, availability, \
                         confidentiality).",
            attacks_discussed: &[
                "bogus information",
                "dos",
                "masquerading",
                "blackhole",
                "malware",
                "spamming",
                "timing",
                "gps spoofing",
                "man-in-the-middle",
                "sybil",
                "wormhole",
                "illusion",
                "impersonation",
            ],
            covers_platoons: false,
        },
        SurveyEntry {
            citation: "Mejri et al., 2014 [22]",
            year: 2014,
            key_points: "Outline of privacy and security challenges facing VANETs; attacks \
                         grouped by broken attribute: availability, authenticity & \
                         identification, confidentiality, integrity & data trust, \
                         non-repudiation/accountability.",
            attacks_discussed: &[
                "dos",
                "jamming",
                "greedy behaviour",
                "malware",
                "broadcast tampering",
                "blackhole",
                "spamming",
                "eavesdrop",
                "sybil",
                "gps spoofing",
                "masquerade",
                "replay",
                "tunneling",
                "key/certificate replication",
                "position faking",
                "message alteration",
                "information gathering",
                "traffic analysis",
                "loss of event traceability",
            ],
            covers_platoons: false,
        },
        SurveyEntry {
            citation: "Parkinson et al., 2017 [13]",
            year: 2017,
            key_points: "Considers a wide range of threats to CAVs and platoons; structured \
                         around threats to vehicles, human aspects and infrastructure.",
            attacks_discussed: &[
                "sensor spoofing",
                "jamming",
                "dos",
                "malware",
                "FDI on CAN",
                "TPMS",
                "information theft",
                "location tracking",
                "bad driver",
                "communication jamming",
                "password & key attacks",
                "phishing",
                "rogue updates",
            ],
            covers_platoons: true,
        },
        SurveyEntry {
            citation: "Zhaojun et al., 2018 [11]",
            year: 2018,
            key_points: "In-depth discussion of VANET security and privacy including attacks \
                         and mechanisms, grouped by broken attribute: availability, \
                         authenticity, confidentiality, integrity, non-repudiation.",
            attacks_discussed: &[
                "dos",
                "jamming",
                "malware",
                "broadcast tampering",
                "blackhole/greyhole",
                "greedy behaviour",
                "spamming",
                "eavesdrop",
                "traffic analysis",
                "sybil",
                "tunneling",
                "gps spoofing",
                "freeriding",
                "message falsification",
                "masquerade",
                "replay",
                "repudiation",
            ],
            covers_platoons: false,
        },
        SurveyEntry {
            citation: "Harkness et al., 2020 [19]",
            year: 2020,
            key_points: "Investigation of ITS security with recommendations for securing \
                         test-beds based on in-depth risk analysis.",
            attacks_discussed: &[
                "sensor spoofing",
                "jamming",
                "information theft",
                "eavesdropping",
                "malware",
            ],
            covers_platoons: false,
        },
        SurveyEntry {
            citation: "Hussain et al., 2020 [20]",
            year: 2020,
            key_points: "VANET trust management: identifies up-to-date open research \
                         questions; discusses REPLACE [6], a trust-based platoon service \
                         recommendation scheme.",
            attacks_discussed: &[],
            covers_platoons: true,
        },
    ]
}

/// Renders Table I.
pub fn render_table1() -> TextTable {
    let mut t = TextTable::new(
        "Table I — Related surveys addressing cybersecurity of CAV, VANETs and platoons",
        &["Survey", "Year", "Platoons?", "# attacks", "Key points"],
    );
    for s in catalog() {
        let mut key = s.key_points.to_string();
        if key.len() > 70 {
            key.truncate(67);
            key.push_str("...");
        }
        t.row(vec![
            s.citation.to_string(),
            s.year.to_string(),
            if s.covers_platoons { "yes" } else { "no" }.to_string(),
            s.attacks_discussed.len().to_string(),
            key,
        ]);
    }
    t
}

/// The coverage matrix behind the paper's gap analysis: which of the nine
/// Table II platoon attacks each survey touches.
pub fn render_coverage_matrix() -> TextTable {
    let attack_labels = [
        ("sybil", "sybil"),
        ("replay", "replay"),
        ("jamming", "jamming"),
        ("eavesdrop", "eavesdrop"),
        ("dos", "dos"),
        ("impersonation", "impersonation"),
        ("sensor spoofing", "sensor-spoof"),
        ("malware", "malware"),
        ("gps spoofing", "gps-spoof"),
    ];
    let mut cols: Vec<&str> = vec!["Survey"];
    cols.extend(attack_labels.iter().map(|(l, _)| *l));
    let mut t = TextTable::new("Table I coverage matrix (survey × platoon attack)", &cols);
    for s in catalog() {
        let mut row = vec![s.citation.to_string()];
        for (label, _) in &attack_labels {
            let hit = s.attacks_discussed.iter().any(|a| {
                a.contains(label)
                    || (label.contains("impersonation")
                        && (a.contains("masquerad") || a.contains("impersonation")))
                    || (label.contains("eavesdrop") && a.contains("eavesdrop"))
            });
            row.push(if hit { "x" } else { "" }.to_string());
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_eight_table_i_rows() {
        assert_eq!(catalog().len(), 8);
    }

    #[test]
    fn years_are_chronological() {
        let years: Vec<u32> = catalog().iter().map(|s| s.year).collect();
        let mut sorted = years.clone();
        sorted.sort();
        assert_eq!(years, sorted, "Table I is ordered chronologically");
    }

    #[test]
    fn only_two_surveys_touch_platoons() {
        // The paper's gap claim: "majority of these studies do not discuss
        // attacks specifically for platoons".
        let covering = catalog().iter().filter(|s| s.covers_platoons).count();
        assert_eq!(covering, 2);
    }

    #[test]
    fn render_produces_a_row_per_survey() {
        assert_eq!(render_table1().len(), 8);
        assert_eq!(render_coverage_matrix().len(), 8);
    }

    #[test]
    fn coverage_matrix_marks_known_hits() {
        let rendered = render_coverage_matrix().render();
        // Mejri 2014 covers replay, jamming, sybil, dos, eavesdrop.
        let mejri_line = rendered
            .lines()
            .find(|l| l.contains("Mejri"))
            .expect("row exists");
        assert!(mejri_line.matches('x').count() >= 5, "{mejri_line}");
    }
}
