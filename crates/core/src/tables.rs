//! Plain-text table rendering for experiment reports.

/// A rectangular text table with a title and column headers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TextTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (each row should have `columns.len()` entries).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision, mapping non-finite values to
/// readable placeholders.
pub fn num(v: f64, precision: usize) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        }
    } else {
        format!("{v:.precision$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn num_formats_special_values() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::NAN, 2), "n/a");
        assert_eq!(num(f64::INFINITY, 2), "inf");
        assert_eq!(num(f64::NEG_INFINITY, 2), "-inf");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new("empty", &["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains("empty"));
    }
}
