//! The machine-readable perf pipeline: a fixed scenario × seed grid run
//! through the experiment harness, emitting a canonical-JSON `BENCH_*.json`
//! document per invocation.
//!
//! Each cell reports its wall time and throughput (ticks/sec, frames/sec)
//! alongside the engine's deterministic [`PerfCounters`]. Cell seeds derive
//! from the cell labels ([`platoon_sim::harness::derive_seed`]), so every
//! counter value is byte-identical across worker counts and machines — only
//! the wall-clock numbers vary. That split is what the CI gate builds on:
//!
//! * the **counter projection** ([`PerfReport::counters_document`]) is
//!   compared exactly against `tests/golden/bench_counters.json` (any drift
//!   means the engine's work content changed — intended changes refresh the
//!   golden with `UPDATE_GOLDEN=1`);
//! * the **wall times** are compared only against a rolling baseline
//!   `BENCH_*.json` with a generous tolerance
//!   ([`PerfReport::compare_baseline`]), catching order-of-magnitude
//!   regressions without flaking on machine noise.
//!
//! Both the root binary (`cargo run --release -- perf --quick`) and the
//! report binary (`report perf --quick`) feed [`cli_main`].

use platoon_detect::pipeline::PipelineConfig;
use platoon_sim::engine::Engine;
use platoon_sim::harness::golden::{self, Tolerance};
use platoon_sim::harness::{json, Batch};
use platoon_sim::perf::PerfCounters;
use platoon_sim::prelude::{AuthMode, CommsMode, ControllerKind, Scenario};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Base seed of the perf grid; cell seeds derive from it and the labels.
pub const PERF_BASE_SEED: u64 = 0xBE2C;

/// One cell of the perf grid: a scenario plus whether the detection
/// pipeline rides along (it changes what the hot path does, so the grid
/// covers both).
struct CellSpec {
    label: &'static str,
    controller: ControllerKind,
    auth: AuthMode,
    comms: CommsMode,
    detect: bool,
}

/// The fixed grid: controller and auth variety on the plain DSRC path,
/// the two hybrid modes (payload sharing across channels, VLC relaying),
/// and one cell with the full detection pipeline attached.
const GRID: &[CellSpec] = &[
    CellSpec {
        label: "perf/acc/none/dsrc",
        controller: ControllerKind::Acc,
        auth: AuthMode::None,
        comms: CommsMode::DsrcOnly,
        detect: false,
    },
    CellSpec {
        label: "perf/cacc/none/dsrc",
        controller: ControllerKind::Cacc,
        auth: AuthMode::None,
        comms: CommsMode::DsrcOnly,
        detect: false,
    },
    CellSpec {
        label: "perf/ploeg/none/dsrc",
        controller: ControllerKind::Ploeg,
        auth: AuthMode::None,
        comms: CommsMode::DsrcOnly,
        detect: false,
    },
    CellSpec {
        label: "perf/cacc/pki/dsrc",
        controller: ControllerKind::Cacc,
        auth: AuthMode::Pki,
        comms: CommsMode::DsrcOnly,
        detect: false,
    },
    CellSpec {
        label: "perf/cacc/mac/vlc",
        controller: ControllerKind::Cacc,
        auth: AuthMode::GroupMac,
        comms: CommsMode::HybridVlc,
        detect: false,
    },
    CellSpec {
        label: "perf/cacc/mac/cv2x",
        controller: ControllerKind::Cacc,
        auth: AuthMode::GroupMac,
        comms: CommsMode::HybridCv2x,
        detect: false,
    },
    CellSpec {
        label: "perf/cacc/pki/dsrc+detect",
        controller: ControllerKind::Cacc,
        auth: AuthMode::Pki,
        comms: CommsMode::DsrcOnly,
        detect: true,
    },
];

/// One measured grid cell.
#[derive(Clone, Debug)]
pub struct PerfCell {
    /// The cell label (seed derivation input).
    pub label: String,
    /// The derived seed the cell ran with.
    pub seed: u64,
    /// Wall-clock milliseconds for the cell's engine run.
    pub wall_ms: f64,
    /// Communication steps per wall-clock second.
    pub ticks_per_sec: f64,
    /// Frames built per wall-clock second.
    pub frames_per_sec: f64,
    /// The engine's deterministic work counters.
    pub counters: PerfCounters,
}

/// A completed perf run: every grid cell plus aggregate totals.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Document label (`quick` / `full`, or operator-chosen).
    pub label: String,
    /// The grid base seed.
    pub base_seed: u64,
    /// Worker threads used (recorded for honesty; no result depends on it).
    pub workers: usize,
    /// The measured cells, in grid order.
    pub cells: Vec<PerfCell>,
    /// Counter totals across all cells.
    pub totals: PerfCounters,
    /// Total wall-clock milliseconds (sum over cells, not elapsed time —
    /// workers overlap cells).
    pub wall_ms_total: f64,
}

/// The grid's cell labels, in grid order. Public so the job service can
/// enumerate the perf grid without re-deriving it.
pub fn cell_labels() -> Vec<&'static str> {
    GRID.iter().map(|spec| spec.label).collect()
}

/// One cell's engine run: deterministic counters plus its wall time.
fn run_cell_spec(spec: &CellSpec, quick: bool, seed: u64) -> (PerfCounters, f64) {
    let (vehicles, duration) = if quick { (4, 20.0) } else { (8, 120.0) };
    let mut scenario = Scenario::builder()
        .label(spec.label)
        .vehicles(vehicles)
        .controller(spec.controller)
        .auth(spec.auth)
        .comms(spec.comms)
        .duration(duration)
        .build();
    scenario.seed = seed;
    let mut engine = Engine::new(scenario);
    if spec.detect {
        engine.attach_detector_config(PipelineConfig::default_profile());
    }
    let t0 = Instant::now();
    engine.run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (*engine.perf(), wall_ms)
}

/// Runs a single grid cell by label with the grid's canonical label-derived
/// seed, returning `(seed, counters)` — the deterministic projection only
/// (wall times are machine noise and deliberately excluded, so the result
/// is cacheable). `None` for an unknown label. Public for the job service.
pub fn run_cell(label: &str, quick: bool) -> Option<(u64, PerfCounters)> {
    let spec = GRID.iter().find(|spec| spec.label == label)?;
    let seed = platoon_sim::harness::derive_seed(label, PERF_BASE_SEED);
    let (counters, _wall_ms) = run_cell_spec(spec, quick, seed);
    Some((seed, counters))
}

/// Runs the perf grid. `quick` shrinks the per-cell duration so the whole
/// grid finishes in seconds (the CI smoke mode); full effort runs long
/// enough for stable throughput numbers.
pub fn run(label: &str, quick: bool, workers: usize) -> PerfReport {
    let mut batch: Batch<(PerfCounters, f64)> = Batch::new(PERF_BASE_SEED);
    for spec in GRID {
        batch.push(spec.label, move |seed| run_cell_spec(spec, quick, seed));
    }

    let mut totals = PerfCounters::default();
    let mut wall_ms_total = 0.0;
    let cells = batch
        .run(workers)
        .into_iter()
        .map(|entry| {
            let (counters, wall_ms) = entry.value;
            totals.accumulate(&counters);
            wall_ms_total += wall_ms;
            let per_sec = |n: u64| {
                if wall_ms > 0.0 {
                    n as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                }
            };
            PerfCell {
                label: entry.label,
                seed: entry.seed,
                wall_ms,
                ticks_per_sec: per_sec(counters.ticks),
                frames_per_sec: per_sec(counters.frames_built),
                counters,
            }
        })
        .collect();

    PerfReport {
        label: label.to_string(),
        base_seed: PERF_BASE_SEED,
        workers,
        cells,
        totals,
        wall_ms_total,
    }
}

impl PerfReport {
    /// The full document: timings plus counters, canonical JSON.
    pub fn to_canonical_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj(|w| {
            w.field_str("label", &self.label);
            w.field_u64("base_seed", self.base_seed);
            w.field_u64("workers", self.workers as u64);
            w.field_arr("cells", |w| {
                for c in &self.cells {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("label", &c.label);
                            w.field_u64("seed", c.seed);
                            w.field_f64("wall_ms", c.wall_ms);
                            w.field_f64("ticks_per_sec", c.ticks_per_sec);
                            w.field_f64("frames_per_sec", c.frames_per_sec);
                            w.field_obj("perf", |w| c.counters.write_canonical(w));
                        })
                    });
                }
            });
            w.field_obj("totals", |w| self.totals.write_canonical(w));
            w.field_f64("wall_ms_total", self.wall_ms_total);
        });
        w.finish()
    }

    /// The deterministic projection: labels, seeds and counters only — no
    /// timing fields. Byte-identical for every worker count and machine;
    /// this is what the checked-in counters golden pins.
    pub fn counters_document(&self) -> String {
        let mut w = json::Writer::new();
        w.obj(|w| {
            w.field_u64("base_seed", self.base_seed);
            w.field_arr("cells", |w| {
                for c in &self.cells {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("label", &c.label);
                            w.field_u64("seed", c.seed);
                            w.field_obj("perf", |w| c.counters.write_canonical(w));
                        })
                    });
                }
            });
            w.field_obj("totals", |w| self.totals.write_canonical(w));
        });
        w.finish()
    }

    /// Compares the deterministic projection exactly against the golden at
    /// `path` (honours `UPDATE_GOLDEN=1`, like every other golden in the
    /// repo).
    pub fn check_counters_golden(&self, path: &Path) -> Result<golden::Outcome, String> {
        golden::check(path, &self.counters_document(), Tolerance::exact())
    }

    /// Compares wall times against a previously recorded `BENCH_*.json`.
    ///
    /// A cell regresses when its wall time exceeds the baseline cell's by
    /// more than `tol_frac` (e.g. `0.3` = +30%) *and* by more than an
    /// absolute 5 ms floor (sub-millisecond cells are pure noise). The
    /// aggregate total is held to the same fractional bound. Returns the
    /// list of regression descriptions — empty means pass. Errors are
    /// reserved for unreadable/malformed baselines.
    pub fn compare_baseline(&self, path: &Path, tol_frac: f64) -> Result<Vec<String>, String> {
        const ABS_FLOOR_MS: f64 = 5.0;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading baseline {}: {e}", path.display()))?;
        let doc = json::parse(&text)
            .map_err(|e| format!("baseline {} is not valid JSON: {e}", path.display()))?;
        let cells = match doc.get("cells") {
            Some(json::Value::Arr(cells)) => cells,
            _ => return Err(format!("baseline {} has no cells array", path.display())),
        };
        let baseline_ms = |label: &str| -> Option<f64> {
            cells
                .iter()
                .find(|c| matches!(c.get("label"), Some(json::Value::Str(l)) if l == label))
                .and_then(|c| c.get("wall_ms"))
                .and_then(json::Value::as_f64)
        };
        let mut regressions = Vec::new();
        for c in &self.cells {
            let Some(base) = baseline_ms(&c.label) else {
                continue; // new cell: nothing to compare against yet
            };
            let bound = base * (1.0 + tol_frac) + ABS_FLOOR_MS;
            if c.wall_ms > bound {
                regressions.push(format!(
                    "{}: {:.1} ms vs baseline {:.1} ms (bound {:.1} ms)",
                    c.label, c.wall_ms, base, bound
                ));
            }
        }
        if let Some(base_total) = doc.get("wall_ms_total").and_then(json::Value::as_f64) {
            let bound = base_total * (1.0 + tol_frac) + ABS_FLOOR_MS;
            if self.wall_ms_total > bound {
                regressions.push(format!(
                    "total: {:.1} ms vs baseline {:.1} ms (bound {:.1} ms)",
                    self.wall_ms_total, base_total, bound
                ));
            }
        }
        Ok(regressions)
    }
}

/// Writes `BENCH_<label>.json` into `dir` and returns the path.
pub fn write_report_file(report: &PerfReport, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{}.json", report.label));
    std::fs::write(&path, report.to_canonical_json())?;
    Ok(path)
}

/// The shared `perf` subcommand entry. Parses `args` (everything after the
/// subcommand word), runs the grid, writes `BENCH_<label>.json`, and applies
/// the requested gates. Returns the process exit code.
///
/// ```text
/// perf [--quick] [--workers N] [--label L] [--out DIR]
///      [--check-golden PATH] [--baseline PATH] [--tolerance FRAC]
/// ```
pub fn cli_main(args: &[String]) -> i32 {
    let mut quick = false;
    let mut workers = platoon_sim::harness::default_workers();
    let mut label: Option<String> = None;
    let mut out_dir = PathBuf::from(".");
    let mut check_golden: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance = 0.30;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--quick" => quick = true,
                "--workers" => {
                    workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--label" => label = Some(value("--label")?),
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--check-golden" => check_golden = Some(PathBuf::from(value("--check-golden")?)),
                "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
                "--tolerance" => {
                    tolerance = value("--tolerance")?
                        .parse()
                        .map_err(|e| format!("--tolerance: {e}"))?
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: perf [--quick] [--workers N] [--label L] [--out DIR]\n\
                         \x20           [--check-golden PATH] [--baseline PATH] [--tolerance FRAC]\n\
                         \x20 --quick          short runs (the CI smoke grid)\n\
                         \x20 --workers N      worker threads (default: available parallelism)\n\
                         \x20 --label L        document label (default: quick/full)\n\
                         \x20 --out DIR        where BENCH_<label>.json is written (default: .)\n\
                         \x20 --check-golden P exact-match the counter projection against P\n\
                         \x20 --baseline P     fail on >FRAC wall-time regression vs P\n\
                         \x20 --tolerance F    baseline tolerance fraction (default: 0.30)"
                    );
                    return Err(String::new()); // handled: exit 0 below
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    let label = label.unwrap_or_else(|| if quick { "quick" } else { "full" }.to_string());
    eprintln!(
        "running perf grid ({} effort, {} workers)...",
        if quick { "quick" } else { "full" },
        workers
    );
    let report = run(&label, quick, workers);
    match write_report_file(&report, &out_dir) {
        Ok(path) => eprintln!(
            "wrote {} ({} cells, {:.1} ms total)",
            path.display(),
            report.cells.len(),
            report.wall_ms_total
        ),
        Err(e) => {
            eprintln!("error: writing report: {e}");
            return 1;
        }
    }

    let mut failed = false;
    if let Some(path) = check_golden {
        match report.check_counters_golden(&path) {
            Ok(golden::Outcome::Match) => eprintln!("counters match {}", path.display()),
            Ok(golden::Outcome::Updated) => {
                eprintln!("counters golden written: {}", path.display())
            }
            Err(diff) => {
                eprintln!("counter drift:\n{diff}");
                failed = true;
            }
        }
    }
    if let Some(path) = baseline {
        match report.compare_baseline(&path, tolerance) {
            Ok(regressions) if regressions.is_empty() => {
                eprintln!(
                    "wall times within {:.0}% of {}",
                    tolerance * 100.0,
                    path.display()
                )
            }
            Ok(regressions) => {
                eprintln!("wall-time regressions (> {:.0}%):", tolerance * 100.0);
                for r in &regressions {
                    eprintln!("  {r}");
                }
                failed = true;
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_counters_are_worker_count_invariant() {
        let one = run("t", true, 1);
        let eight = run("t", true, 8);
        assert_eq!(one.counters_document(), eight.counters_document());
        assert_eq!(one.totals, eight.totals);
        // The hot path really did avoid clones somewhere in the grid (the
        // hybrid cells share payloads across channels).
        assert!(one.totals.payload_clones_avoided > 0);
        assert!(one.totals.frames_built > 0);
        // The detect cell contributed pipeline observations.
        assert!(one.totals.detector_observations > 0);
    }

    #[test]
    fn baseline_comparison_flags_only_real_regressions() {
        let report = run("base", true, 2);
        let dir = std::env::temp_dir().join(format!("platoon-perf-test-{}", std::process::id()));
        let path = write_report_file(&report, &dir).expect("write baseline");

        // Same run vs itself: inside tolerance.
        let ok = report.compare_baseline(&path, 0.30).expect("comparable");
        assert!(ok.is_empty(), "self-comparison regressions: {ok:?}");

        // A slowed-down copy trips both per-cell and total checks.
        let mut slow = report.clone();
        for c in &mut slow.cells {
            c.wall_ms = c.wall_ms * 2.0 + 100.0;
        }
        slow.wall_ms_total = slow.wall_ms_total * 2.0 + 100.0 * slow.cells.len() as f64;
        let regressions = slow.compare_baseline(&path, 0.30).expect("comparable");
        assert!(!regressions.is_empty());
        assert!(regressions.iter().any(|r| r.starts_with("total:")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counters_document_has_no_timing_fields() {
        let report = run("proj", true, 2);
        let doc = report.counters_document();
        assert!(!doc.contains("wall_ms"));
        assert!(!doc.contains("per_sec"));
        json::parse(&doc).expect("projection parses");
    }
}
