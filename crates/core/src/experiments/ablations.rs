//! Ablation studies for the design choices DESIGN.md §4 calls out:
//! detector components, trust forgetting, hybrid validation policy and the
//! controller family's graceful degradation.

use super::common::{base_scenario, brake_profile, Effort};
use crate::tables::{num, TextTable};
use platoon_attacks::prelude::*;
use platoon_defense::prelude::*;
use platoon_sim::prelude::*;

/// A1 — VPD-ADA component ablation: which detector component catches which
/// attack (§VI-A.3 / F6).
pub fn ablation_vpd_components(quick: bool) -> TextTable {
    let effort = Effort::new(quick);
    let arms: [(&str, VpdAdaConfig); 4] = [
        ("full (strict)", VpdAdaConfig::strict()),
        (
            "no RSSI check",
            VpdAdaConfig {
                rssi_check: false,
                ..VpdAdaConfig::strict()
            },
        ),
        (
            "no co-location check",
            VpdAdaConfig {
                colocation_check: false,
                ..VpdAdaConfig::strict()
            },
        ),
        (
            "no sensor fusion",
            VpdAdaConfig {
                sensor_fusion_check: false,
                ..VpdAdaConfig::strict()
            },
        ),
    ];

    let mut t = TextTable::new(
        "A1 — VPD-ADA component ablation",
        &[
            "Detector variant",
            "Sybil phantoms",
            "GPS-spoof latency (s)",
            "Radar-spoof min gap (m)",
        ],
    );
    for (name, cfg) in arms {
        // Sybil: phantom members admitted.
        let mut sybil = Engine::new(base_scenario(&format!("A1/{name}/sybil"), effort).build());
        sybil.add_attack(Box::new(SybilAttack::new(SybilConfig {
            start: effort.duration * 0.15,
            ..Default::default()
        })));
        sybil.add_defense(Box::new(VpdAdaDefense::new(cfg)));
        sybil.run();
        let phantoms =
            sybil.maneuvers().roster().len() as f64 - sybil.world().vehicles.len() as f64;

        // GPS spoof: detection latency.
        let start = effort.duration * 0.2;
        let mut gps = Engine::new(base_scenario(&format!("A1/{name}/gps"), effort).build());
        gps.add_attack(Box::new(GpsSpoofAttack::new(GpsSpoofConfig {
            start,
            ..Default::default()
        })));
        gps.add_defense(Box::new(VpdAdaDefense::new(cfg)));
        gps.run();
        let latency = gps.defenses()[0]
            .as_any()
            .downcast_ref::<VpdAdaDefense>()
            .unwrap()
            .detection_latency(platoon_crypto::cert::PrincipalId(2), start)
            .unwrap_or(f64::INFINITY);

        // Radar spoof: surviving safety margin.
        let mut radar = Engine::new(base_scenario(&format!("A1/{name}/radar"), effort).build());
        radar.add_attack(Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
            mode: SensorAttackMode::Spoof { bias: 15.0 },
            start,
            ..Default::default()
        })));
        radar.add_defense(Box::new(VpdAdaDefense::new(cfg)));
        let s = radar.run();

        t.row(vec![
            name.to_string(),
            num(phantoms.max(0.0), 0),
            num(latency, 1),
            num(s.min_gap, 1),
        ]);
    }
    t
}

/// A2 — trust forgetting-factor ablation (§VI-B.3 / F8): faster forgetting
/// evicts faster but forgives attackers sooner; no forgetting builds trust
/// inertia.
pub fn ablation_trust_halflife(quick: bool) -> TextTable {
    let effort = Effort::new(quick);
    let factors = [1.0, 0.999, 0.995, 0.98];
    let mut t = TextTable::new(
        "A2 — trust forgetting-factor ablation (impersonation from 30% of the run)",
        &[
            "Forgetting/s",
            "Victim evicted",
            "Eviction latency (s)",
            "Honest detections",
        ],
    );
    for f in factors {
        let cfg = TrustConfig {
            forgetting_per_second: f,
            ..Default::default()
        };
        let start = effort.duration * 0.3;
        let mut engine = Engine::new(base_scenario(&format!("A2/{f}"), effort).build());
        engine.add_attack(Box::new(ImpersonationAttack::new(ImpersonationConfig {
            start,
            duration: effort.duration * 0.4,
            ..Default::default()
        })));
        engine.add_defense(Box::new(TrustDefense::new(cfg)));
        engine.run();
        let trust = engine.defenses()[0]
            .as_any()
            .downcast_ref::<TrustDefense>()
            .unwrap();
        let victim = platoon_crypto::cert::PrincipalId(1);
        let eviction = trust
            .evicted()
            .iter()
            .find(|(id, _)| *id == victim)
            .map(|(_, t)| t - start);

        let mut honest = Engine::new(base_scenario(&format!("A2/{f}/honest"), effort).build());
        honest.add_defense(Box::new(TrustDefense::new(cfg)));
        let hs = honest.run();

        t.row(vec![
            format!("{f}"),
            if eviction.is_some() { "yes" } else { "no" }.to_string(),
            eviction
                .map(|l| num(l, 1))
                .unwrap_or_else(|| "-".to_string()),
            hs.detections.to_string(),
        ]);
    }
    t
}

/// A3 — hybrid validation policy ablation (§VI-A.4 / F2, F5): AND-validation
/// blocks injection but costs single-channel availability; OR-fallback keeps
/// availability but provides no injection protection.
pub fn ablation_hybrid_policy(quick: bool) -> TextTable {
    let effort = Effort::new(quick);
    let arms: [(&str, Option<HybridPolicy>); 3] = [
        ("no cross-validation", None),
        ("AND (SP-VLC)", Some(HybridPolicy::RequireBoth)),
        ("OR fallback", Some(HybridPolicy::EitherChannel)),
    ];
    let mut t = TextTable::new(
        "A3 — hybrid validation policy ablation",
        &["Policy", "Forged-split fragmentation", "Jammed max err (m)"],
    );
    for (name, policy) in arms {
        // Forged split on the RF side.
        let mut forged = Engine::new(
            base_scenario(&format!("A3/{name}/forged"), effort)
                .comms(CommsMode::HybridVlc)
                .build(),
        );
        forged.add_attack(Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
            inject_at: effort.duration * 0.2,
            ..Default::default()
        })));
        if let Some(p) = policy {
            forged.add_defense(Box::new(HybridConfirmDefense::new(HybridConfig {
                policy: p,
                ..Default::default()
            })));
        }
        let fs = forged.run();

        // RF jamming.
        let mut jammed = Engine::new(
            base_scenario(&format!("A3/{name}/jammed"), effort)
                .comms(CommsMode::HybridVlc)
                .build(),
        );
        jammed.add_attack(Box::new(JammingAttack::new(JammingConfig {
            start: effort.duration * 0.2,
            ..Default::default()
        })));
        if let Some(p) = policy {
            jammed.add_defense(Box::new(HybridConfirmDefense::new(HybridConfig {
                policy: p,
                ..Default::default()
            })));
        }
        let js = jammed.run();

        t.row(vec![
            name.to_string(),
            num(fs.fragmented_fraction, 2),
            num(js.max_spacing_error, 1),
        ]);
    }
    t
}

/// A4 — controller-family degradation ablation (F2): how each controller
/// family weathers the same jamming attack, and what it costs in clean
/// spacing.
pub fn ablation_controllers(quick: bool) -> TextTable {
    let effort = Effort::new(quick);
    let kinds = [
        ControllerKind::Cacc,
        ControllerKind::Ploeg,
        ControllerKind::Consensus,
        ControllerKind::Acc,
    ];
    let mut t = TextTable::new(
        "A4 — controller degradation under jamming",
        &[
            "Controller",
            "Clean mean |err| (m)",
            "Jammed mean |err| (m)",
            "Jammed collisions",
        ],
    );
    for kind in kinds {
        let clean = Engine::new(
            base_scenario(&format!("A4/{kind:?}/clean"), effort)
                .controller(kind)
                .build(),
        )
        .run();
        let mut jammed = Engine::new(
            base_scenario(&format!("A4/{kind:?}/jam"), effort)
                .controller(kind)
                .build(),
        );
        jammed.add_attack(Box::new(JammingAttack::new(JammingConfig {
            start: effort.duration * 0.2,
            ..Default::default()
        })));
        let js = jammed.run();
        t.row(vec![
            format!("{kind:?}"),
            num(clean.mean_abs_spacing_error, 2),
            num(js.mean_abs_spacing_error, 2),
            js.collisions.to_string(),
        ]);
    }
    t
}

/// A5 — replay-workload ablation: the attack's leverage depends on what it
/// managed to record (cruise-only data is far less damaging than a recorded
/// braking manoeuvre — the §V-A.1 "close the gap"/"back off" conflict).
pub fn ablation_replay_workload(quick: bool) -> TextTable {
    let effort = Effort::new(quick);
    let mut t = TextTable::new(
        "A5 — replay leverage vs recorded workload",
        &[
            "Workload recorded",
            "Baseline energy",
            "Attacked energy",
            "Added energy",
        ],
    );
    let arms: [(&str, bool); 2] = [("steady cruise", false), ("braking manoeuvre", true)];
    for (name, brake) in arms {
        let build = |label: &str| {
            let mut b = base_scenario(label, effort);
            if brake {
                b = b.profile(brake_profile());
            }
            b.build()
        };
        let baseline = Engine::new(build(&format!("A5/{name}/base"))).run();
        let mut attacked = Engine::new(build(&format!("A5/{name}/attack")));
        attacked.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
            replay_from: effort.duration * 0.25,
            ..Default::default()
        })));
        let s = attacked.run();
        t.row(vec![
            name.to_string(),
            num(baseline.oscillation_energy, 0),
            num(s.oscillation_energy, 0),
            num(
                (s.oscillation_energy - baseline.oscillation_energy).max(0.0),
                0,
            ),
        ]);
    }
    t
}

/// All ablation tables in order.
pub fn all_ablations(quick: bool) -> Vec<TextTable> {
    vec![
        ablation_vpd_components(quick),
        ablation_trust_halflife(quick),
        ablation_hybrid_policy(quick),
        ablation_controllers(quick),
        ablation_replay_workload(quick),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpd_ablation_shows_component_roles() {
        let t = ablation_vpd_components(true);
        assert_eq!(t.len(), 4);
        let rendered = t.render();
        assert!(rendered.contains("full"));

        // The full variant admits no phantoms.
        let full_row = &t.rows[0];
        assert_eq!(
            full_row[1], "0",
            "full detector blocks all phantoms: {full_row:?}"
        );
        assert!(rendered.contains("strict"));
    }

    #[test]
    fn trust_ablation_shows_inertia_tradeoff() {
        let t = ablation_trust_halflife(true);
        assert_eq!(t.len(), 4);
        // Every variant must stay quiet on honest traffic.
        for row in &t.rows {
            assert_eq!(row[3], "0", "honest detections must be zero: {row:?}");
        }
        // At least one variant evicts the impersonated victim.
        assert!(
            t.rows.iter().any(|r| r[1] == "yes"),
            "some forgetting factor must evict: {:?}",
            t.rows
        );
    }

    #[test]
    fn hybrid_ablation_shows_policy_tradeoff() {
        let t = ablation_hybrid_policy(true);
        let frag = |i: usize| t.rows[i][1].parse::<f64>().unwrap();
        assert!(frag(0) > 0.5, "no validation → forged split works");
        assert!(frag(1) < 0.01, "AND policy blocks the forgery");
        assert!(frag(2) > 0.5, "OR policy does not");
    }

    #[test]
    fn controller_ablation_ranks_cacc_tightest() {
        let t = ablation_controllers(true);
        let clean = |i: usize| t.rows[i][1].parse::<f64>().unwrap();
        // CACC (row 0) tracks tighter than ACC (row 3) in the clean run.
        assert!(clean(0) < clean(3), "CACC {} !< ACC {}", clean(0), clean(3));
        // Nobody crashes under jamming.
        for row in &t.rows {
            assert_eq!(row[3], "0", "jamming must not crash {row:?}");
        }
    }

    #[test]
    fn replay_workload_ablation_shows_braking_leverage() {
        let t = ablation_replay_workload(true);
        let added = |i: usize| t.rows[i][3].parse::<f64>().unwrap();
        assert!(
            added(1) > 5.0 * added(0),
            "recorded braking must add far more disturbance: cruise {} vs brake {}",
            added(0),
            added(1)
        );
    }
}
