//! The experiment runner: one function per table and figure of the
//! reproduction (see DESIGN.md §3 for the index).
//!
//! Every experiment is deterministic given its seeds and comes in two
//! effort levels: `quick` (used by the test suite: shorter runs, fewer
//! sweep points) and full (used by `cargo bench` and the report binaries).

pub mod ablations;
pub mod campaign;
pub mod common;
pub mod corridor;
pub mod figures;
pub mod privacy;
pub mod regimes;
pub mod robustness;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod trace;

use serde::Serialize;

/// One plotted series of an experiment figure.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// (x, y) sample points.
    pub points: Vec<(f64, f64)>,
}

/// A reproduced "figure": a parameter sweep with one or more series.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Figure {
    /// Experiment id from DESIGN.md (e.g. "F2").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Expected qualitative shape, asserted by the harness and recorded in
    /// EXPERIMENTS.md.
    pub expected_shape: String,
}

impl Figure {
    /// Renders the figure as an aligned text table (x column + one column
    /// per series).
    pub fn render(&self) -> String {
        let mut cols: Vec<String> = vec![self.x_label.clone()];
        cols.extend(self.series.iter().map(|s| s.name.clone()));
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut t = crate::tables::TextTable::new(
            format!("{} — {} [y: {}]", self.id, self.title, self.y_label),
            &col_refs,
        );
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![crate::tables::num(*x, 2)];
            for s in &self.series {
                row.push(
                    s.points
                        .get(i)
                        .map(|p| crate::tables::num(p.1, 3))
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            t.row(row);
        }
        let mut out = t.render();
        out.push_str(&format!("expected shape: {}\n", self.expected_shape));
        out
    }

    /// The series with the given name, if present.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_all_series() {
        let fig = Figure {
            id: "F0".into(),
            title: "demo".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series {
                    name: "a".into(),
                    points: vec![(1.0, 2.0), (2.0, 4.0)],
                },
                Series {
                    name: "b".into(),
                    points: vec![(1.0, 3.0), (2.0, 6.0)],
                },
            ],
            expected_shape: "b above a".into(),
        };
        let s = fig.render();
        assert!(s.contains("F0"));
        assert!(s.contains("expected shape"));
        assert!(fig.series_named("b").is_some());
        assert!(fig.series_named("c").is_none());
    }
}
