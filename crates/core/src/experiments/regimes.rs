//! Experiment R: detection quality across driving regimes.
//!
//! The paper's open challenges (§VI-B) note that platoon security
//! mechanisms are tuned and evaluated on *one* traffic condition at a
//! time, while a real corridor drive crosses several in a single trip.
//! This experiment runs the canonical platoon through a piecewise
//! [`RegimePlan`] — highway cruise → congestion → stop-and-go → tunnel —
//! and scores two detector tunings against it:
//!
//! * `cruise` — thresholds tightened for steady highway driving (small
//!   plausible accelerations, tight claim consistency). Sensitive, but
//!   blind to context: honest hard braking in the stop-and-go phase looks
//!   exactly like a falsified claim.
//! * `regime-aware` — the same cruise base, plus per-phase threshold sets
//!   swapped in when the engine announces a phase change
//!   ([`Pipeline::on_regime`](platoon_detect::pipeline::Pipeline::on_regime)).
//!
//! Rows bucket alerts by regime phase, so the document shows *where* each
//! profile pays its false positives — the cruise profile must measurably
//! degrade in stop-and-go while the regime-aware profile stays quiet.
//!
//! The experiment doubles as the harness for the engine's
//! snapshot/fast-forward machinery: [`resume_check`] renders a straight
//! run and an interrupted-snapshot-restored-resumed run of the same arm to
//! canonical documents that must be byte-identical.

use super::common::{base_scenario, make_attack, Effort, EXPERIMENT_BASE_SEED};
use super::table4::{profile_for, truth_for};
use platoon_detect::checks::KinematicLimits;
use platoon_detect::fusion::{Alert, AlertTarget};
use platoon_detect::kinematic::KinematicConfig;
use platoon_detect::pipeline::PipelineConfig;
use platoon_dynamics::profiles::SpeedProfile;
use platoon_sim::harness::{golden, json, write_run_summary, Batch};
use platoon_sim::prelude::{
    score_alerts, steps_for, DetectionSummary, Engine, RegimePhase, RegimePlan, RunSummary,
    TruthLabels,
};
use platoon_trace::TraceRecorder;
use std::path::{Path, PathBuf};

/// Detector profiles compared by the experiment.
pub const PROFILES: [&str; 2] = ["cruise", "regime-aware"];

/// Attack arms: the benign floor (where regime-blind tuning pays) and the
/// insider falsifier (which both profiles must still catch).
pub const ATTACKS: [&str; 2] = ["benign", "insider-fdi"];

/// The kinematic limits a cruise-only tuning would pick: nothing on a
/// steady highway accelerates hard, so the acceleration bound and the
/// claimed-vs-implied mismatch tolerance come way down.
fn cruise_limits() -> KinematicLimits {
    KinematicLimits {
        max_accel: 3.0,
        position_tolerance: 8.0,
        max_speed: 40.0,
        accel_mismatch: Some(1.0),
    }
}

/// Mid-tightness limits for moderate-dynamics phases (congestion, tunnel).
fn congested_limits() -> KinematicLimits {
    KinematicLimits {
        max_accel: 6.0,
        position_tolerance: 8.0,
        max_speed: 50.0,
        accel_mismatch: Some(2.0),
    }
}

/// The cruise-tuned pipeline: `cruise_limits` with no per-phase
/// adjustment — the regime-blindness under test.
pub fn cruise_profile() -> PipelineConfig {
    PipelineConfig {
        kinematic: KinematicConfig {
            limits: cruise_limits(),
            phase_limits: Vec::new(),
        },
        ..Default::default()
    }
}

/// The regime-aware pipeline: the same cruise base, but phase changes swap
/// in limits sized for each regime's honest dynamics (stop-and-go braking
/// reaches the trucks' physical deceleration limit, so that phase falls
/// back to the stock physical-plausibility bounds).
pub fn regime_aware_profile() -> PipelineConfig {
    PipelineConfig {
        kinematic: KinematicConfig {
            limits: cruise_limits(),
            phase_limits: vec![
                ("congestion".to_string(), congested_limits()),
                ("stop-and-go".to_string(), KinematicLimits::default()),
                ("tunnel".to_string(), congested_limits()),
            ],
        },
        ..Default::default()
    }
}

/// The canonical corridor drive, scaled to the effort's run length:
/// cruise (35%), congestion (25%, tightened gap, mild noise), stop-and-go
/// (25%, urban drive cycle), tunnel (15%, heavy noise, halved beacon
/// cadence).
pub fn plan_for(effort: Effort) -> RegimePlan {
    let d = effort.duration;
    RegimePlan::new(vec![
        RegimePhase::new("cruise", 0.35 * d).with_profile(SpeedProfile::Constant { speed: 24.0 }),
        // Gentle slowdown (24 → 20 m/s): dense but flowing traffic. The
        // deceleration stays inside even the cruise profile's limits, so
        // the first honest limit violations happen in stop-and-go.
        RegimePhase::new("congestion", 0.25 * d)
            .with_profile(SpeedProfile::Constant { speed: 20.0 })
            .with_desired_gap(7.0)
            .with_noise(3.0),
        RegimePhase::new("stop-and-go", 0.25 * d)
            .with_profile(SpeedProfile::UrbanDrive {
                min: 2.0,
                max: 16.0,
                phase: 3.0,
                seed: 7,
            })
            .with_noise(1.0),
        RegimePhase::new("tunnel", 0.15 * d)
            .with_profile(SpeedProfile::Constant { speed: 20.0 })
            .with_noise(15.0)
            .with_beacon_every(2),
    ])
}

/// Per-phase alert bucket of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseScore {
    /// Regime phase label.
    pub label: String,
    /// Alerts raised while the phase was active.
    pub alerts: u64,
    /// Of those, true positives (guilty target at/after attack start).
    pub true_positives: u64,
    /// Everything else.
    pub false_positives: u64,
}

/// One (profile, attack) cell of the regime experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct RegimeRow {
    /// Detector profile name.
    pub profile: String,
    /// Attack arm name (`benign` for the false-positive floor).
    pub attack: String,
    /// Whole-run detection score.
    pub detection: DetectionSummary,
    /// Alerts bucketed by the regime phase active when they fired.
    pub phases: Vec<PhaseScore>,
}

impl RegimeRow {
    /// The phase bucket with the given label.
    pub fn phase(&self, label: &str) -> &PhaseScore {
        self.phases
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("no phase bucket {label:?}"))
    }
}

/// Buckets an alert stream by the regime phase active at each alert's
/// timestamp, classifying each alert with the same guilt rules as
/// [`score_alerts`].
fn phase_scores(
    alerts: &[Alert],
    truth: &TruthLabels,
    plan: &RegimePlan,
    comm_step: f64,
) -> Vec<PhaseScore> {
    let starts = plan.boundaries(comm_step);
    let mut scores: Vec<PhaseScore> = plan
        .phases
        .iter()
        .map(|p| PhaseScore {
            label: p.label.clone(),
            alerts: 0,
            true_positives: 0,
            false_positives: 0,
        })
        .collect();
    for alert in alerts {
        // Last phase whose start time is at or before the alert.
        let mut idx = 0;
        for (i, &start) in starts.iter().enumerate() {
            if start as f64 * comm_step <= alert.time {
                idx = i;
            }
        }
        let hit = alert.time >= truth.start
            && match alert.target {
                AlertTarget::Sender(p) => truth.is_guilty(p),
                AlertTarget::Channel => truth.channel_attack,
            };
        scores[idx].alerts += 1;
        if hit {
            scores[idx].true_positives += 1;
        } else {
            scores[idx].false_positives += 1;
        }
    }
    scores
}

/// Harness job body: one (profile, attack) run over the canonical regime
/// plan, scored whole-run and per-phase.
pub fn regime_arm(profile: &str, attack: &str, effort: Effort, seed: u64) -> RegimeRow {
    let plan = plan_for(effort);
    let label = format!("regime/{profile}/{attack}");
    let mut engine = Engine::new(
        base_scenario(&label, effort)
            .seed(seed)
            .regimes(plan.clone())
            .build(),
    );
    if attack != "benign" {
        engine.add_attack(make_attack(attack, effort));
    }
    engine.attach_detector_config(profile_for(profile));
    engine.run();
    let truth = truth_for(attack, effort, &engine);
    let detection = score_alerts(engine.alerts(), &truth);
    let phases = phase_scores(engine.alerts(), &truth, &plan, engine.scenario().comm_step);
    RegimeRow {
        profile: profile.to_string(),
        attack: attack.to_string(),
        detection,
        phases,
    }
}

/// A completed regime experiment: the plan it ran plus one row per
/// (profile, attack) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct RegimeReport {
    /// The regime plan every cell ran under.
    pub plan: RegimePlan,
    /// One row per (profile, attack), profiles outer.
    pub rows: Vec<RegimeRow>,
}

/// Runs the full profile × attack grid with an explicit worker count and
/// optional seed override.
pub fn run_with(quick: bool, workers: usize, seed: Option<u64>) -> RegimeReport {
    let effort = Effort::new(quick);
    let seed = seed.unwrap_or(EXPERIMENT_BASE_SEED);
    let mut batch: Batch<RegimeRow> = Batch::new(EXPERIMENT_BASE_SEED);
    for profile in PROFILES {
        for attack in ATTACKS {
            batch.push_with_seed(format!("regime/{profile}/{attack}"), seed, move |seed| {
                regime_arm(profile, attack, effort, seed)
            });
        }
    }
    let rows = batch.run(workers).into_iter().map(|e| e.value).collect();
    RegimeReport {
        plan: plan_for(effort),
        rows,
    }
}

/// Runs the grid at default width.
pub fn run(quick: bool) -> RegimeReport {
    run_with(quick, platoon_sim::harness::default_workers(), None)
}

/// Canonical rendering of one row's body (shared with the job service's
/// result documents, which must match a fresh run byte for byte).
pub fn write_row(w: &mut json::Writer, row: &RegimeRow) {
    w.field_str("profile", &row.profile);
    w.field_str("attack", &row.attack);
    w.field_obj("detection", |w| {
        let d = &row.detection;
        w.field_u64("alerts", d.alerts as u64);
        w.field_u64("true_positives", d.true_positives as u64);
        w.field_u64("false_positives", d.false_positives as u64);
        w.field_bool("detected", d.detected);
        w.field_f64("first_detection_latency", d.first_detection_latency);
        w.field_f64("attribution_accuracy", d.attribution_accuracy);
    });
    w.field_arr("phases", |w| {
        for p in &row.phases {
            w.elem(|w| {
                w.obj(|w| {
                    w.field_str("label", &p.label);
                    w.field_u64("alerts", p.alerts);
                    w.field_u64("true_positives", p.true_positives);
                    w.field_u64("false_positives", p.false_positives);
                })
            });
        }
    });
}

/// Canonical JSON rendering of the report — the golden-snapshot document.
pub fn to_canonical_json(report: &RegimeReport) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_u64("base_seed", EXPERIMENT_BASE_SEED);
        w.field_arr("plan", |w| {
            for p in &report.plan.phases {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("label", &p.label);
                        w.field_f64("duration", p.duration);
                        if let Some(gap) = p.desired_gap {
                            w.field_f64("desired_gap", gap);
                        }
                        w.field_f64("noise_extra_db", p.noise_extra_db);
                        w.field_u64("beacon_every", p.beacon_every);
                    })
                });
            }
        });
        w.field_arr("rows", |w| {
            for row in &report.rows {
                w.elem(|w| w.obj(|w| write_row(w, row)));
            }
        });
    });
    w.finish()
}

/// Renders one finished run (summary + end-state digest) to a canonical
/// document — the byte-comparison unit of [`resume_check`].
fn final_state_document(summary: &RunSummary, engine: &Engine) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_obj("summary", |w| write_run_summary(w, summary));
        w.field_str("state_digest", &format!("{:016x}", engine.state_digest()));
    });
    w.finish()
}

/// Runs the canonical regime arm straight through, then again interrupted
/// at one third of the run — snapshot, restore, resume — and returns both
/// final-state documents. The two must be byte-identical: the snapshot
/// carries the *entire* engine state (world, rng, detector tracks, trace
/// digest), so resuming can neither lose nor replay a single tick.
pub fn resume_check(quick: bool, seed: u64) -> (String, String) {
    let effort = Effort::new(quick);
    let build = || {
        let mut engine = Engine::new(
            base_scenario("regime/resume", effort)
                .seed(seed)
                .regimes(plan_for(effort))
                .build(),
        );
        engine.add_attack(make_attack("insider-fdi", effort));
        engine.attach_detector_config(profile_for("regime-aware"));
        engine.attach_tracer(Box::new(TraceRecorder::new()));
        engine
    };

    let mut straight = build();
    let straight_summary = straight.run();
    let straight_doc = final_state_document(&straight_summary, &straight);

    let mut interrupted = build();
    let scenario = interrupted.scenario().clone();
    let total = steps_for(scenario.duration, scenario.comm_step);
    interrupted.fast_forward(total / 3);
    let snapshot = interrupted.snapshot().expect("regime engine snapshots");
    drop(interrupted);
    let mut resumed = snapshot.restore().expect("snapshot restores");
    let resumed_summary = resumed.run();
    let resumed_doc = final_state_document(&resumed_summary, &resumed);

    (straight_doc, resumed_doc)
}

/// Writes `REGIME_<label>.json` into `out_dir`, returning the path.
fn write_report_file(
    report: &RegimeReport,
    label: &str,
    out_dir: &Path,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let doc = out_dir.join(format!("REGIME_{label}.json"));
    std::fs::write(&doc, to_canonical_json(report))?;
    Ok(doc)
}

/// Entry point for the `regimes` subcommand (root binary and the bench
/// report binary). Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut quick = false;
    let mut workers = platoon_sim::harness::default_workers();
    let mut seed: Option<u64> = None;
    let mut out_dir = PathBuf::from(".");
    let mut check_golden: Option<PathBuf> = None;
    let mut resume = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--quick" => quick = true,
                "--workers" => {
                    workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--seed" => {
                    seed = Some(
                        value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?,
                    )
                }
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--check-golden" => check_golden = Some(PathBuf::from(value("--check-golden")?)),
                "--resume-check" => resume = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: regimes [--quick] [--workers N] [--seed N] [--out DIR]\n\
                         \x20              [--check-golden PATH] [--resume-check]\n\
                         \x20 --quick          short run (the CI smoke scenario)\n\
                         \x20 --workers N      worker threads (default: available parallelism)\n\
                         \x20 --seed N         pin the run seed (default: the experiment base seed)\n\
                         \x20 --out DIR        where REGIME_<label>.json lands (default: .)\n\
                         \x20 --check-golden P snapshot-match the document against P\n\
                         \x20 --resume-check   also run the snapshot/restore/resume byte-identity\n\
                         \x20                  check, writing REGIME_resume_straight.json and\n\
                         \x20                  REGIME_resume_resumed.json"
                    );
                    return Err(String::new()); // handled: exit 0 below
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    let label = if quick { "quick" } else { "full" };
    eprintln!("running the regime grid ({label} effort, {workers} workers)...");
    let report = run_with(quick, workers, seed);
    for row in &report.rows {
        println!(
            "{:<14} {:<12} detected {}  fp {:>3}  per-phase fp {}",
            row.profile,
            row.attack,
            row.detection.detected,
            row.detection.false_positives,
            row.phases
                .iter()
                .map(|p| format!("{}:{}", p.label, p.false_positives))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    match write_report_file(&report, label, &out_dir) {
        Ok(doc) => eprintln!("wrote {}", doc.display()),
        Err(e) => {
            eprintln!("error: writing report: {e}");
            return 1;
        }
    }

    if let Some(path) = check_golden {
        match golden::check(
            &path,
            &to_canonical_json(&report),
            golden::Tolerance::snapshot(),
        ) {
            Ok(golden::Outcome::Match) => eprintln!("document matches {}", path.display()),
            Ok(golden::Outcome::Updated) => eprintln!("golden written: {}", path.display()),
            Err(diff) => {
                eprintln!("regime drift:\n{diff}");
                return 1;
            }
        }
    }

    if resume {
        let (straight, resumed) = resume_check(quick, seed.unwrap_or(EXPERIMENT_BASE_SEED));
        let write = |name: &str, doc: &str| -> std::io::Result<PathBuf> {
            let path = out_dir.join(name);
            std::fs::write(&path, doc)?;
            Ok(path)
        };
        match (
            write("REGIME_resume_straight.json", &straight),
            write("REGIME_resume_resumed.json", &resumed),
        ) {
            (Ok(a), Ok(b)) => eprintln!("wrote {} and {}", a.display(), b.display()),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: writing resume documents: {e}");
                return 1;
            }
        }
        if straight == resumed {
            eprintln!("resume check: straight and resumed runs are byte-identical");
        } else {
            eprintln!("resume check FAILED: straight and resumed documents differ");
            return 1;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::harness::golden::Tolerance;

    fn golden_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/regime_quick.json")
    }

    fn row<'a>(report: &'a RegimeReport, profile: &str, attack: &str) -> &'a RegimeRow {
        report
            .rows
            .iter()
            .find(|r| r.profile == profile && r.attack == attack)
            .unwrap()
    }

    #[test]
    fn cruise_tuning_degrades_in_stop_and_go_and_matches_golden() {
        let report = run(true);
        assert_eq!(report.rows.len(), PROFILES.len() * ATTACKS.len());

        // The core claim: regime-blind cruise tuning mistakes honest
        // stop-and-go braking for falsified claims; the regime-aware
        // profile, identical in the cruise phase, stays quiet there.
        let cruise = row(&report, "cruise", "benign");
        let aware = row(&report, "regime-aware", "benign");
        assert!(
            cruise.phase("stop-and-go").false_positives
                > aware.phase("stop-and-go").false_positives,
            "cruise tuning must pay false positives in stop-and-go: cruise {} vs aware {}",
            cruise.phase("stop-and-go").false_positives,
            aware.phase("stop-and-go").false_positives
        );
        // Both profiles share the cruise-phase tuning, so neither fires on
        // the honest cruise phase.
        assert_eq!(cruise.phase("cruise").false_positives, 0);
        assert_eq!(aware.phase("cruise").false_positives, 0);

        // Context-awareness must not cost the detection that matters: the
        // insider falsifier (starting mid-cruise) is still caught.
        for profile in PROFILES {
            let r = row(&report, profile, "insider-fdi");
            assert!(r.detection.detected, "{profile} must detect insider-fdi");
            assert!(
                r.detection.true_positives > 0,
                "{profile} insider-fdi true positives"
            );
        }

        golden::assert_matches(
            &golden_path(),
            &to_canonical_json(&report),
            Tolerance::snapshot(),
        );
    }

    #[test]
    fn document_is_identical_across_worker_counts() {
        let serial = run_with(true, 1, None);
        let parallel = run_with(true, 8, None);
        assert_eq!(to_canonical_json(&serial), to_canonical_json(&parallel));
    }

    #[test]
    fn interrupted_run_resumes_byte_identically() {
        let (straight, resumed) = resume_check(true, EXPERIMENT_BASE_SEED);
        assert_eq!(
            straight, resumed,
            "snapshot/restore/resume must reproduce the straight run byte for byte"
        );
        // The document pins the trace digest too (a tracer was attached).
        assert!(straight.contains("\"trace\""));
    }
}
