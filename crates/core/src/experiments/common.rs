//! Shared scaffolding for the experiment suite: canonical scenarios, arm
//! construction (attack × mechanism), and the per-attack impact metrics the
//! tables aggregate.

use platoon_attacks::prelude::*;
use platoon_crypto::cert::PrincipalId;
use platoon_defense::prelude::*;
use platoon_dynamics::profiles::SpeedProfile;
use platoon_proto::messages::PlatoonId;
use platoon_sim::prelude::*;
use platoon_v2x::message::NodeId;

/// Effort level of an experiment run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Effort {
    /// Simulated seconds per run.
    pub duration: f64,
    /// Sweep points per axis.
    pub sweep_points: usize,
}

impl Effort {
    /// Quick runs for the test suite.
    pub fn quick() -> Self {
        Effort {
            duration: 30.0,
            sweep_points: 3,
        }
    }

    /// Full runs for the benchmark harness.
    pub fn full() -> Self {
        Effort {
            duration: 60.0,
            sweep_points: 6,
        }
    }

    /// Selects by flag.
    pub fn new(quick: bool) -> Self {
        if quick {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// The canonical 6-truck evaluation platoon.
pub fn base_scenario(label: &str, effort: Effort) -> ScenarioBuilder {
    Scenario::builder()
        .label(label)
        .vehicles(6)
        .duration(effort.duration)
        .max_platoon_size(16)
        .seed(2021)
}

/// The brake-test workload used by the integrity experiments (replay/FDI
/// need conflicting recorded data to be interesting).
pub fn brake_profile() -> SpeedProfile {
    SpeedProfile::BrakeTest {
        cruise: 25.0,
        low: 15.0,
        brake_at: 8.0,
        hold: 5.0,
    }
}

/// The Table II / Table III attack arm: constructs the attack for a
/// machine name, with timings scaled into the run.
pub fn make_attack(name: &str, effort: Effort) -> Box<dyn Attack> {
    let start = effort.duration * 0.2;
    match name {
        "replay" => Box::new(ReplayAttack::new(ReplayConfig {
            record_from: 0.0,
            replay_from: start,
            ..Default::default()
        })),
        "sybil" => Box::new(SybilAttack::new(SybilConfig {
            start,
            ..Default::default()
        })),
        "fake-maneuver" => Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
            inject_at: start,
            ..Default::default()
        })),
        "jamming" => Box::new(JammingAttack::new(JammingConfig {
            start,
            ..Default::default()
        })),
        "eavesdrop" => Box::new(EavesdropAttack::new(EavesdropConfig::default())),
        "dos-join-flood" => Box::new(JoinFloodAttack::new(JoinFloodConfig {
            start: start * 0.5,
            ..Default::default()
        })),
        "impersonation" => Box::new(ImpersonationAttack::new(ImpersonationConfig {
            start,
            duration: effort.duration * 0.3,
            ..Default::default()
        })),
        "sensor-spoof" => Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
            start,
            ..Default::default()
        })),
        "gps-spoof" => Box::new(GpsSpoofAttack::new(GpsSpoofConfig {
            start,
            ..Default::default()
        })),
        "malware" => Box::new(MalwareAttack::new(MalwareConfig {
            infect_at: start * 0.5,
            ..Default::default()
        })),
        "insider-fdi" => Box::new(FalsificationAttack::new(FalsificationConfig {
            start,
            ..Default::default()
        })),
        other => panic!("unknown attack {other}"),
    }
}

/// Applies a Table III mechanism to a scenario builder + engine: returns the
/// adjusted builder, and a closure that plugs the defense modules in after
/// engine construction.
pub fn apply_mechanism(
    mechanism: &str,
    mut builder: ScenarioBuilder,
) -> (ScenarioBuilder, Vec<&'static str>) {
    // Returns the module names to instantiate post-construction.
    match mechanism {
        "keys" => {
            builder = builder.auth(AuthMode::Pki);
            (builder, vec!["anti-replay"])
        }
        "keys-encrypted" => {
            builder = builder.auth(AuthMode::EncryptedGroupMac);
            (builder, vec!["anti-replay"])
        }
        "rsu-gatekeeper" => {
            for i in 0..8 {
                builder = builder.rsu((i as f64 * 300.0, 8.0));
            }
            (builder, vec!["rsu"])
        }
        "control-algorithms" => (builder, vec!["vpd-ada", "mitigation"]),
        // Resilient control only (Petrillo et al. [7]) — used for the
        // replay/insider pairs, where eviction-style detection would push
        // the platoon into radar fallback and inflate the spacing metric.
        "control-mitigation" => (builder, vec!["mitigation"]),
        "hybrid-sp-vlc" => {
            builder = builder.comms(CommsMode::HybridVlc);
            (builder, vec!["hybrid"])
        }
        "onboard-hardening" => (builder, vec!["onboard"]),
        "trust" => (builder, vec!["trust"]),
        other => panic!("unknown mechanism {other}"),
    }
}

/// Instantiates the defense modules named by [`apply_mechanism`].
pub fn make_defenses(modules: &[&str]) -> Vec<Box<dyn Defense>> {
    modules
        .iter()
        .map(|m| -> Box<dyn Defense> {
            match *m {
                "anti-replay" => Box::new(AntiReplayDefense::timestamp()),
                "rsu" => Box::new(RsuDefense::new(RsuConfig {
                    preregistered: vec![600],
                    ..Default::default()
                })),
                "vpd-ada" => Box::new(VpdAdaDefense::new(VpdAdaConfig::strict())),
                "mitigation" => Box::new(MitigationDefense::new(MitigationConfig::default())),
                "hybrid" => Box::new(HybridConfirmDefense::new(HybridConfig::default())),
                "onboard" => Box::new(OnboardDefense::new(OnboardConfig::default())),
                "trust" => Box::new(TrustDefense::new(TrustConfig::default())),
                other => panic!("unknown defense module {other}"),
            }
        })
        .collect()
}

/// The legitimate joiner used by the availability experiments.
pub fn legit_joiner(start: f64) -> JoinerAgent {
    JoinerAgent::new(
        PrincipalId(600),
        NodeId(600),
        JoinerCredentials::None,
        PlatoonId(1),
        1.0,
    )
    .with_start(start)
}

/// The impact metric of one finished run, per attack (higher = worse).
///
/// Units differ per attack; [`impact_unit`] names them. Table III divides
/// defended by undefended impact, so units cancel.
pub fn impact_of(attack: &str, engine: &Engine, summary: &RunSummary) -> f64 {
    match attack {
        "replay" | "impersonation" | "insider-fdi" => summary.oscillation_energy,
        // The functional outcome of losing communication: the string opens
        // to radar-fallback gaps. (Raw link PDR would under-credit the
        // hybrid relay chain, whose deliveries carry the relaying node id.)
        "jamming" => summary.max_spacing_error,
        "sybil" => {
            let phantom =
                engine.maneuvers().roster().len() as f64 - engine.world().vehicles.len() as f64;
            // Phantoms plus the wasted held-open gap time.
            phantom.max(0.0) + summary.maneuvers.wasted_gap_seconds / 100.0
        }
        "fake-maneuver" => summary.fragmented_fraction,
        "dos-join-flood" => {
            // The legitimate joiner's outcome: latency in seconds, or the
            // full run duration if starved/denied.
            engine
                .attacks()
                .iter()
                .find_map(|a| a.as_any().downcast_ref::<JoinerAgent>())
                .map(|j| {
                    let o = j.outcome();
                    if o.accepted {
                        o.accept_latency.unwrap_or(summary.duration)
                    } else {
                        summary.duration
                    }
                })
                .unwrap_or(0.0)
        }
        "sensor-spoof" => (10.0 - summary.min_gap).max(0.0),
        "gps-spoof" => {
            // How far the victim's *accepted* claimed position leads its
            // true position at the follower, metres (0 if the followers
            // stopped accepting the poisoned beacons).
            let world = engine.world();
            let follower = &world.vehicles[3];
            match follower.comm.predecessor {
                Some(h) if world.time - h.heard_at < 5.0 => {
                    (h.peer.position - world.vehicles[2].vehicle.state.position).max(0.0)
                }
                _ => 0.0,
            }
        }
        "malware" => summary.service_down_fraction,
        "eavesdrop" => engine
            .attacks()
            .iter()
            .find_map(|a| a.as_any().downcast_ref::<EavesdropAttack>())
            .map(|e| e.beacons_read() as f64)
            .unwrap_or(0.0),
        other => panic!("unknown attack {other}"),
    }
}

/// The unit of [`impact_of`] for a given attack.
pub fn impact_unit(attack: &str) -> &'static str {
    match attack {
        "replay" | "impersonation" | "insider-fdi" => "oscillation energy (m²·s)",
        "jamming" => "max spacing error (m)",
        "sybil" => "phantom members + gap-seconds/100",
        "fake-maneuver" => "fraction of run fragmented",
        "dos-join-flood" => "legit join latency (s, run length if starved)",
        "sensor-spoof" => "safety-margin erosion (m)",
        "gps-spoof" => "accepted position poisoning (m)",
        "malware" => "service-down fraction",
        "eavesdrop" => "plaintext beacons read",
        _ => "?",
    }
}

/// The base seed the experiment batches derive per-arm seeds from (the
/// paper's publication year, kept from the original serial drivers).
pub const EXPERIMENT_BASE_SEED: u64 = 2021;

/// What one experiment arm reports back through the harness: the run summary
/// plus the per-attack impact scalar, which must be extracted while the
/// engine is still alive (several impacts downcast attack state).
#[derive(Clone, Debug, PartialEq)]
pub struct ArmOutcome {
    /// The run's metrics summary.
    pub summary: RunSummary,
    /// [`impact_of`] evaluated on the finished engine.
    pub impact: f64,
}

/// Harness job body: runs one (attack, mechanism) arm under the given seed
/// and reduces it to an [`ArmOutcome`].
pub fn arm_outcome(attack: &str, mechanism: Option<&str>, effort: Effort, seed: u64) -> ArmOutcome {
    let (engine, summary) = run_arm_seeded(attack, mechanism, effort, seed);
    let impact = impact_of(attack, &engine, &summary);
    ArmOutcome { summary, impact }
}

/// Runs one (attack, mechanism) arm; `mechanism: None` is the undefended
/// arm. Returns the engine (for downcasting) and the summary.
pub fn run_arm(attack: &str, mechanism: Option<&str>, effort: Effort) -> (Engine, RunSummary) {
    run_arm_seeded(attack, mechanism, effort, EXPERIMENT_BASE_SEED)
}

/// [`run_arm`] with an explicit scenario seed (the harness derives one per
/// arm label, so parallel batches stay scheduling-independent).
pub fn run_arm_seeded(
    attack: &str,
    mechanism: Option<&str>,
    effort: Effort,
    seed: u64,
) -> (Engine, RunSummary) {
    let label = format!("{attack}/{}", mechanism.unwrap_or("undefended"));
    let mut builder = base_scenario(&label, effort).seed(seed);
    // Integrity attacks use the brake-test workload (needs conflicting data
    // windows); others keep the sinusoid default.
    if matches!(attack, "replay" | "insider-fdi") {
        builder = builder.profile(brake_profile());
    }
    let modules = if let Some(m) = mechanism {
        let (b, modules) = apply_mechanism(m, builder);
        builder = b;
        modules
    } else {
        Vec::new()
    };
    let mut engine = Engine::new(builder.build());
    engine.add_attack(make_attack(attack, effort));
    if attack == "dos-join-flood" {
        // Under a PKI deployment the honest joiner carries real credentials
        // (the flood, of course, cannot).
        let joiner = if engine.scenario().auth == AuthMode::Pki {
            let kp = platoon_crypto::keys::KeyPair::from_seed(600);
            let cert = engine
                .ca_mut()
                .issue(PrincipalId(600), kp.public(), 0.0, 36_000.0);
            JoinerAgent::new(
                PrincipalId(600),
                NodeId(600),
                JoinerCredentials::Pki {
                    signer: platoon_crypto::signature::Signer::new(kp),
                    certificate: cert,
                },
                PlatoonId(1),
                1.0,
            )
            .with_start(effort.duration * 0.25)
        } else {
            legit_joiner(effort.duration * 0.25)
        };
        engine.add_attack(Box::new(joiner));
    }
    for d in make_defenses(&modules) {
        engine.add_defense(d);
    }
    let summary = engine.run();
    (engine, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalogued_attack_constructs() {
        let effort = Effort::quick();
        for a in platoon_attacks::registry::catalog() {
            if a.name == "sensor-spoof" {
                // registry row maps to two modules; both construct.
                let _ = make_attack("sensor-spoof", effort);
                let _ = make_attack("gps-spoof", effort);
            } else {
                let _ = make_attack(a.name, effort);
            }
        }
    }

    #[test]
    fn every_mechanism_applies() {
        for m in platoon_defense::registry::catalog() {
            let (b, modules) = apply_mechanism(m.name, base_scenario("t", Effort::quick()));
            let _ = b.build();
            let _ = make_defenses(&modules);
        }
    }

    #[test]
    #[should_panic(expected = "unknown attack")]
    fn unknown_attack_panics() {
        make_attack("wormhole", Effort::quick());
    }

    #[test]
    fn run_arm_produces_finite_impact() {
        let effort = Effort::quick();
        let (engine, summary) = run_arm("jamming", None, effort);
        let impact = impact_of("jamming", &engine, &summary);
        assert!(impact.is_finite());
        assert!(impact > 0.3, "jamming should cost beacons: {impact}");
    }
}
