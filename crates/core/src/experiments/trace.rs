//! Experiment T: deterministic per-tick tracing of one labeled scenario.
//!
//! The §V attack-effect claims are *temporal* — oscillation builds, joins
//! stay blocked, gaps open tick by tick — but every other experiment here
//! reports end-of-run aggregates. This experiment runs one canonical
//! attacked-and-faulted scenario with a [`TraceRecorder`] attached and
//! emits the full phase-scoped record stream (`TRACE_<label>.jsonl`)
//! alongside the canonical run document whose [`RunSummary`] carries the
//! trace digest. Because every record is stamped with tick-derived time
//! only, the JSONL is byte-identical across worker counts and machines —
//! and [`trace-diff`](diff_cli_main) turns any divergence (a golden
//! mismatch, a nondeterminism regression) into a one-command answer:
//! the first differing tick and phase.

use super::common::{base_scenario, make_attack, Effort, EXPERIMENT_BASE_SEED};
use super::robustness::make_fault;
use super::table4::profile_for;
use platoon_sim::harness::{golden, Batch, BatchReport, JobOutcome};
use platoon_sim::prelude::{Engine, RunSummary};
use platoon_trace::{diff_traces, TraceRecorder};
use std::path::{Path, PathBuf};

/// The attack arm traced by default: reliably detected, so the trace
/// exercises every phase (fault, attack, medium, defense, detector).
pub const DEFAULT_ATTACK: &str = "impersonation";

/// The benign fault riding along (windowed radar outage), so fault-phase
/// records appear in the canonical trace.
pub const FAULT: &str = "sensor-outage";

/// One traced run: the summary (digest folded in) plus the JSONL stream.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRun {
    /// The run summary; `summary.trace` holds the digest of `jsonl`.
    pub summary: RunSummary,
    /// The retained trace as canonical JSONL.
    pub jsonl: String,
}

/// Runs the canonical traced scenario: the base platoon under [`FAULT`]
/// plus `attack` (or none for `"benign"`), default detector pipeline and
/// a [`TraceRecorder`] attached.
pub fn traced_arm(attack: &str, effort: Effort, seed: u64) -> TraceRun {
    let label = format!("trace/{attack}");
    let mut engine = Engine::new(base_scenario(&label, effort).seed(seed).build());
    if let Some(fault) = make_fault(FAULT, effort) {
        engine.add_fault(fault);
    }
    if attack != "benign" {
        engine.add_attack(make_attack(attack, effort));
    }
    engine.attach_detector_config(profile_for("default"));
    engine.attach_tracer(Box::new(TraceRecorder::new()));
    let summary = engine.run();
    let recorder = engine
        .take_tracer()
        .expect("tracer attached above")
        .as_any()
        .downcast_ref::<TraceRecorder>()
        .expect("the attached tracer is a TraceRecorder")
        .clone();
    debug_assert_eq!(summary.trace, Some(recorder.digest()));
    TraceRun {
        summary,
        jsonl: recorder.to_jsonl(),
    }
}

/// A completed trace experiment: the canonical batch document plus the
/// JSONL stream of the traced arm.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Attack arm that was traced.
    pub attack: String,
    /// The batch document (one entry; its summary carries the digest).
    pub report: BatchReport,
    /// The traced arm's JSONL (empty when the job failed).
    pub jsonl: String,
}

/// Runs the trace experiment with an explicit worker count and seed.
///
/// The single job goes through the same crash-isolated [`Batch`] harness
/// as every other experiment, so the canonical document — and the JSONL
/// bytes — must come out identical at any worker count.
pub fn run_with(quick: bool, workers: usize, attack: &str, seed: Option<u64>) -> TraceReport {
    let effort = Effort::new(quick);
    let seed = seed.unwrap_or(EXPERIMENT_BASE_SEED);
    let mut batch: Batch<TraceRun> = Batch::new(EXPERIMENT_BASE_SEED);
    let attack_owned = attack.to_string();
    batch.push_with_seed(format!("trace/{attack}"), seed, move |seed| {
        traced_arm(&attack_owned, effort, seed)
    });
    let entries = batch.run_outcomes(workers);

    let mut jsonl = String::new();
    let report = BatchReport {
        base_seed: EXPERIMENT_BASE_SEED,
        entries: entries
            .into_iter()
            .map(|e| platoon_sim::harness::BatchEntry {
                label: e.label,
                seed: e.seed,
                value: match e.value {
                    JobOutcome::Ok(run) => {
                        jsonl = run.jsonl;
                        JobOutcome::Ok(run.summary)
                    }
                    JobOutcome::Failed { reason } => JobOutcome::Failed { reason },
                },
            })
            .collect(),
    };
    TraceReport {
        attack: attack.to_string(),
        report,
        jsonl,
    }
}

/// Runs the default traced arm at default width.
pub fn run(quick: bool) -> TraceReport {
    run_with(
        quick,
        platoon_sim::harness::default_workers(),
        DEFAULT_ATTACK,
        None,
    )
}

/// Canonical JSON rendering of the batch document (the golden-snapshot
/// unit; the digest rides in the entry's `trace` field).
pub fn to_canonical_json(report: &TraceReport) -> String {
    report.report.to_canonical_json()
}

/// Writes `TRACE_<label>.json` (document) and `TRACE_<label>.jsonl`
/// (record stream) into `out_dir`, returning both paths.
fn write_report_files(
    report: &TraceReport,
    label: &str,
    out_dir: &Path,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(out_dir)?;
    let doc = out_dir.join(format!("TRACE_{label}.json"));
    std::fs::write(&doc, to_canonical_json(report))?;
    let jsonl = out_dir.join(format!("TRACE_{label}.jsonl"));
    std::fs::write(&jsonl, &report.jsonl)?;
    Ok((doc, jsonl))
}

/// Entry point for the `trace` subcommand (root binary and the bench
/// report binary). Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut quick = false;
    let mut workers = platoon_sim::harness::default_workers();
    let mut attack = DEFAULT_ATTACK.to_string();
    let mut seed: Option<u64> = None;
    let mut out_dir = PathBuf::from(".");
    let mut check_golden: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--quick" => quick = true,
                "--workers" => {
                    workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--attack" => attack = value("--attack")?,
                "--seed" => {
                    seed = Some(
                        value("--seed")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?,
                    )
                }
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--check-golden" => check_golden = Some(PathBuf::from(value("--check-golden")?)),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: trace [--quick] [--workers N] [--attack NAME] [--seed N]\n\
                         \x20            [--out DIR] [--check-golden PATH]\n\
                         \x20 --quick          short run (the CI smoke scenario)\n\
                         \x20 --workers N      worker threads (default: available parallelism)\n\
                         \x20 --attack NAME    attack arm to trace (default: {DEFAULT_ATTACK};\n\
                         \x20                  `benign` for no attack)\n\
                         \x20 --seed N         pin the run seed (default: the experiment base seed)\n\
                         \x20 --out DIR        where TRACE_<label>.json/.jsonl land (default: .)\n\
                         \x20 --check-golden P snapshot-match the document against P"
                    );
                    return Err(String::new()); // handled: exit 0 below
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    let label = if quick { "quick" } else { "full" };
    eprintln!("tracing trace/{attack} ({label} effort, {workers} workers)...");
    let report = run_with(quick, workers, &attack, seed);
    for (job, reason) in report.report.failures() {
        eprintln!("failed job {job:?}: {reason}");
    }
    if let Some(entry) = report.report.entries.first() {
        if let Some(s) = entry.value.as_ok() {
            println!("{}", s.one_line());
            if let Some(d) = &s.trace {
                println!(
                    "trace: {} record(s), {} dropped, digest {:016x}",
                    d.records, d.dropped, d.hash
                );
            }
        }
    }
    match write_report_files(&report, label, &out_dir) {
        Ok((doc, jsonl)) => eprintln!(
            "wrote {} and {} ({} trace line(s))",
            doc.display(),
            jsonl.display(),
            report.jsonl.lines().count()
        ),
        Err(e) => {
            eprintln!("error: writing report: {e}");
            return 1;
        }
    }

    if let Some(path) = check_golden {
        match golden::check(
            &path,
            &to_canonical_json(&report),
            golden::Tolerance::snapshot(),
        ) {
            Ok(golden::Outcome::Match) => eprintln!("document matches {}", path.display()),
            Ok(golden::Outcome::Updated) => eprintln!("golden written: {}", path.display()),
            Err(diff) => {
                eprintln!("trace drift:\n{diff}");
                return 1;
            }
        }
    }
    0
}

/// Entry point for the `trace-diff` subcommand: byte-compares two JSONL
/// traces and reports the first diverging tick/phase. Exit codes: 0 when
/// identical, 1 on divergence, 2 on usage or I/O errors.
pub fn diff_cli_main(args: &[String]) -> i32 {
    match args {
        [a] if a == "--help" || a == "-h" => {
            eprintln!(
                "usage: trace-diff LEFT.jsonl RIGHT.jsonl\n\
                 byte-compares two canonical traces; on divergence prints the first\n\
                 differing line with its tick and phase and exits 1"
            );
            0
        }
        [left_path, right_path] => {
            let read =
                |p: &String| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
            let (left, right) = match (read(left_path), read(right_path)) {
                (Ok(l), Ok(r)) => (l, r),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            match diff_traces(&left, &right) {
                None => {
                    println!("traces identical ({} line(s))", left.lines().count());
                    0
                }
                Some(d) => {
                    println!("traces diverge at {}", d.describe());
                    1
                }
            }
        }
        _ => {
            eprintln!("error: trace-diff takes exactly two trace files (try --help)");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::harness::golden::Tolerance;
    use platoon_trace::diff::END_OF_TRACE;

    fn golden_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/trace_quick.json")
    }

    #[test]
    fn quick_trace_covers_every_phase_and_matches_golden() {
        let report = run(true);
        assert!(
            report.report.failures().next().is_none(),
            "traced arm must complete"
        );
        let summary = report.report.summary("trace/impersonation");
        let digest = summary.trace.expect("digest folded into the summary");
        assert!(digest.records > 0);
        assert_eq!(digest.dropped, 0, "quick run fits the recorder bound");
        assert_eq!(
            report.jsonl.lines().count() as u64,
            digest.records,
            "every record retained"
        );
        // The canonical scenario exercises the full phase vocabulary.
        for phase in ["fault", "medium", "detector"] {
            assert!(
                report.jsonl.contains(&format!("\"phase\": \"{phase}\"")),
                "no {phase}-phase records in the trace"
            );
        }
        golden::assert_matches(
            &golden_path(),
            &to_canonical_json(&report),
            Tolerance::snapshot(),
        );
    }

    #[test]
    fn trace_is_byte_identical_across_worker_counts() {
        let serial = run_with(true, 1, DEFAULT_ATTACK, None);
        let parallel = run_with(true, 8, DEFAULT_ATTACK, None);
        assert_eq!(
            serial.jsonl, parallel.jsonl,
            "trace JSONL must be byte-identical across worker counts"
        );
        assert_eq!(to_canonical_json(&serial), to_canonical_json(&parallel));
        assert_eq!(diff_traces(&serial.jsonl, &parallel.jsonl), None);
    }

    #[test]
    fn different_seeds_diverge_at_a_named_tick_and_phase() {
        let a = run_with(true, 2, DEFAULT_ATTACK, Some(EXPERIMENT_BASE_SEED));
        let b = run_with(true, 2, DEFAULT_ATTACK, Some(EXPERIMENT_BASE_SEED + 1));
        let d = diff_traces(&a.jsonl, &b.jsonl)
            .expect("different channel noise must diverge the traces");
        assert!(d.line >= 1);
        assert!(
            d.tick.is_some(),
            "divergence names its tick: {}",
            d.describe()
        );
        if d.left != END_OF_TRACE && d.right != END_OF_TRACE {
            assert!(
                d.phase.is_some(),
                "divergence names its phase: {}",
                d.describe()
            );
        }
    }
}
