//! Experiment F7c — location privacy and pseudonym changes (§III, §VI-B.2).
//!
//! > "The information can be used to track vehicles, goods, and vehicles'
//! > drivers ... Various mechanisms exist to address privacy attacks,
//! > including pseudonymous authentications \[25\] ... and random pseudonym
//! > updates \[27\]."
//!
//! The experiment quantifies what pseudonym changes actually buy against a
//! trajectory-linking tracker. Vehicles stream beacons (pseudonymous id +
//! GPS-noised position); the tracker links a disappearing pseudonym to the
//! appearing one whose position best continues the trajectory. Two change
//! disciplines are compared:
//!
//! * **staggered** — each vehicle changes on its own schedule (naive
//!   periodic changes);
//! * **synchronised** — all vehicles in radio range change in the same
//!   beacon interval (the cooperative / mix-zone discipline of Pan & Li
//!   \[27\], modelled by [`ChangePolicy::NeighborTriggered`]).
//!
//! Expected shape: staggered changes are linked almost perfectly at any
//! density (the lone changer is trivially re-identified); synchronised
//! changes degrade the tracker as density grows, because the mix zone
//! offers many equally-plausible continuations.

use super::{Figure, Series};
use platoon_crypto::pseudonym::ChangePolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// When pseudonym changes happen relative to each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ChangeDiscipline {
    /// Each vehicle changes on its own staggered schedule.
    Staggered,
    /// All vehicles change within the same beacon interval (mix zone).
    Synchronised,
}

/// Result of one tracking run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TrackingOutcome {
    /// Pseudonym-change events the tracker had to bridge.
    pub change_events: usize,
    /// Fraction of changes correctly linked to the right vehicle.
    pub linkage_accuracy: f64,
}

/// Simulates `n_vehicles` driving in loose traffic for `duration` seconds
/// with the given change discipline, and runs the linking tracker.
pub fn run_tracking(
    n_vehicles: usize,
    discipline: ChangeDiscipline,
    duration: f64,
    seed: u64,
) -> TrackingOutcome {
    assert!(n_vehicles >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let dt = 0.1;
    let gps_noise = 1.5;
    let change_period = 20.0;

    // Vehicles share a fixed radio-range road segment, so density compresses
    // the spacing — the geometric condition for a mix zone to work.
    let segment = 240.0;
    let spacing = segment / n_vehicles as f64;
    let mut positions: Vec<f64> = (0..n_vehicles)
        .map(|i| i as f64 * spacing + rng.gen_range(-2.0..2.0))
        .collect();
    let speeds: Vec<f64> = (0..n_vehicles)
        .map(|_| 25.0 + rng.gen_range(-1.0..1.0))
        .collect();
    let mut pseudonyms: Vec<u64> = (0..n_vehicles as u64).map(|i| 10_000 + i).collect();
    let mut next_pseudonym = 50_000u64;
    // Per-vehicle next change time (staggered) or shared epoch (synchronised).
    let mut change_at: Vec<f64> = match discipline {
        ChangeDiscipline::Staggered => (0..n_vehicles)
            .map(|i| change_period * (0.5 + i as f64 / n_vehicles as f64))
            .collect(),
        ChangeDiscipline::Synchronised => vec![change_period; n_vehicles],
    };

    // Tracker state: per tracked pseudonym, the last observed position.
    let mut tracks: Vec<(u64, f64)> = pseudonyms
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, positions[i]))
        .collect();

    let mut change_events = 0usize;
    let mut correct_links = 0usize;
    let mut t = 0.0;
    while t < duration {
        t += dt;
        for p in positions.iter_mut().zip(&speeds) {
            *p.0 += p.1 * dt;
        }

        // Collect this step's changes (old id, new id, vehicle).
        let mut changes: Vec<(u64, u64, usize)> = Vec::new();
        for v in 0..n_vehicles {
            if t >= change_at[v] {
                let old = pseudonyms[v];
                pseudonyms[v] = next_pseudonym;
                next_pseudonym += 1;
                change_at[v] += change_period;
                changes.push((old, pseudonyms[v], v));
            }
        }

        // Tracker observes all beacons this step.
        let observations: Vec<(u64, f64)> = (0..n_vehicles)
            .map(|v| (pseudonyms[v], positions[v] + gps_noise * gauss(&mut rng)))
            .collect();

        if !changes.is_empty() {
            // Identify vanished tracks and new ids, link greedily by
            // predicted-position proximity. A link is scored correct when
            // the matched old pseudonym and the new one belong to the same
            // physical vehicle (instantaneous re-identification).
            let new_ids: Vec<(u64, f64)> = observations
                .iter()
                .filter(|(id, _)| !tracks.iter().any(|(tid, _)| tid == id))
                .copied()
                .collect();
            let mut vanished: Vec<(u64, f64)> = tracks
                .iter()
                .filter(|(tid, _)| !observations.iter().any(|(id, _)| id == tid))
                .copied()
                .collect();
            for (new_id, new_pos) in &new_ids {
                if vanished.is_empty() {
                    break;
                }
                // Dead-reckon each vanished track one step forward and pick
                // the closest.
                let (best_idx, _) = vanished
                    .iter()
                    .enumerate()
                    .map(|(i, (_, pos))| (i, (pos + 25.0 * dt - new_pos).abs()))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty");
                let (matched_old_id, _) = vanished.remove(best_idx);
                change_events += 1;
                let new_owner = changes
                    .iter()
                    .find(|(_, nid, _)| nid == new_id)
                    .map(|c| c.2);
                let old_owner = changes
                    .iter()
                    .find(|(oid, _, _)| *oid == matched_old_id)
                    .map(|c| c.2);
                if new_owner.is_some() && new_owner == old_owner {
                    correct_links += 1;
                }
            }
            // Reset the tracker's id set to what is currently observed.
            tracks.retain(|(tid, _)| observations.iter().any(|(id, _)| id == tid));
            for (id, pos) in &observations {
                if !tracks.iter().any(|(tid, _)| tid == id) {
                    tracks.push((*id, *pos));
                }
            }
        }
        // Update tracked positions.
        for track in tracks.iter_mut() {
            if let Some((_, pos)) = observations.iter().find(|(id, _)| *id == track.0) {
                track.1 = *pos;
            }
        }
    }

    TrackingOutcome {
        change_events,
        linkage_accuracy: if change_events == 0 {
            1.0
        } else {
            correct_links as f64 / change_events as f64
        },
    }
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// F7c — tracker linkage accuracy vs traffic density for the two change
/// disciplines.
pub fn fig_pseudonym_privacy(quick: bool) -> Figure {
    let densities: Vec<usize> = if quick {
        vec![2, 6, 12]
    } else {
        vec![2, 4, 6, 8, 12, 16, 24]
    };
    let duration = if quick { 120.0 } else { 300.0 };
    let mut staggered = Vec::new();
    let mut synchronised = Vec::new();
    for &n in &densities {
        let s = run_tracking(n, ChangeDiscipline::Staggered, duration, 7);
        staggered.push((n as f64, s.linkage_accuracy));
        let y = run_tracking(n, ChangeDiscipline::Synchronised, duration, 7);
        synchronised.push((n as f64, y.linkage_accuracy));
    }
    Figure {
        id: "F7c".into(),
        title: "Pseudonym changes vs a trajectory-linking tracker".into(),
        x_label: "vehicles in radio range".into(),
        y_label: "tracker linkage accuracy".into(),
        series: vec![
            Series {
                name: "staggered changes".into(),
                points: staggered,
            },
            Series {
                name: "synchronised changes (mix zone)".into(),
                points: synchronised,
            },
        ],
        expected_shape: "staggered changes are linked near-perfectly at every density; \
                         synchronised changes degrade the tracker as density grows (Pan & \
                         Li's cooperative-change argument [27])"
            .into(),
    }
}

/// The change policy this experiment motivates, for documentation parity
/// with `platoon_crypto::pseudonym`.
pub fn recommended_policy() -> ChangePolicy {
    ChangePolicy::NeighborTriggered {
        min_neighbors: 3,
        min_interval: 20.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_changes_are_trivially_linkable() {
        let out = run_tracking(6, ChangeDiscipline::Staggered, 120.0, 1);
        assert!(out.change_events >= 20, "events: {}", out.change_events);
        assert!(
            out.linkage_accuracy > 0.9,
            "a lone changer is re-identified: {}",
            out.linkage_accuracy
        );
    }

    #[test]
    fn synchronised_changes_confuse_the_tracker_at_density() {
        let sparse = run_tracking(2, ChangeDiscipline::Synchronised, 120.0, 1);
        let dense = run_tracking(16, ChangeDiscipline::Synchronised, 120.0, 1);
        assert!(
            dense.linkage_accuracy < sparse.linkage_accuracy,
            "density must hurt the tracker: dense {} vs sparse {}",
            dense.linkage_accuracy,
            sparse.linkage_accuracy
        );
        assert!(
            dense.linkage_accuracy < 0.8,
            "a 16-vehicle mix zone should defeat many links: {}",
            dense.linkage_accuracy
        );
    }

    #[test]
    fn figure_has_both_series() {
        let fig = fig_pseudonym_privacy(true);
        assert!(fig.series_named("staggered changes").is_some());
        assert!(fig
            .series_named("synchronised changes (mix zone)")
            .is_some());
        for s in &fig.series {
            for (_, acc) in &s.points {
                assert!((0.0..=1.0).contains(acc));
            }
        }
    }

    #[test]
    fn single_vehicle_degenerate() {
        let out = run_tracking(1, ChangeDiscipline::Synchronised, 60.0, 2);
        // A single vehicle is always linkable.
        assert!(out.linkage_accuracy > 0.99);
    }
}
