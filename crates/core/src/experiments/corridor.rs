//! Experiment C: highway-scale corridor worlds.
//!
//! Every other experiment drives one platoon of at most a dozen trucks;
//! this one builds a multi-platoon *corridor* — several independent
//! platoons sharing one roadway with RSUs spaced along the span, a
//! legitimate joiner, and a mid-run split + merge of the lead platoon —
//! and scales it to thousands of vehicles.
//!
//! Two medium configurations run over the same corridor and seed:
//!
//! * **allpairs** — the seed semantics: `radio_horizon_m = ∞`, every
//!   (frame, receiver) pair evaluated by the O(n²) scan;
//! * **indexed** — a finite radio horizon ([`CORRIDOR_HORIZON_M`], just
//!   past the DSRC nominal range), which switches the medium to the
//!   [`platoon_v2x::spatial::SpatialGrid`] range-query path.
//!
//! The cells land in two documents: `CORRIDOR_<label>.json` (the canonical
//! batch document of [`RunSummary`]s — the golden-snapshot unit) and
//! `BENCH_corridor_<label>.json` (wall times plus the deterministic
//! `pairs_considered` work counter, which is what the indexed path
//! provably shrinks). Summaries are byte-identical across worker counts
//! *and* engine thread counts; only the wall numbers vary.

use platoon_crypto::cert::PrincipalId;
use platoon_proto::messages::PlatoonId;
use platoon_sim::engine::Engine;
use platoon_sim::harness::{golden, json, Batch, BatchReport, JobOutcome};
use platoon_sim::prelude::{
    AuthMode, JoinerAgent, JoinerCredentials, RunSummary, Scenario, ScenarioBuilder,
};
use platoon_trace::TraceRecorder;
use platoon_v2x::message::NodeId;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Base seed of the corridor grid (cell seeds derive from the labels).
pub const CORRIDOR_BASE_SEED: u64 = 0xC0 + 2021;

/// Radio horizon of the indexed arms in metres: just past the DSRC
/// nominal (median ≈ noise floor) range of ~742 m at the default 20 dBm,
/// so the grid only prunes pairs whose delivery probability is
/// negligible.
pub const CORRIDOR_HORIZON_M: f64 = 750.0;

/// Bumper-to-bumper distance between consecutive platoons.
pub const PLATOON_SPACING_M: f64 = 150.0;

/// RSU spacing along the corridor (one RSU "segment" per this many
/// metres; moving platoons hand over from one RSU's range to the next).
pub const RSU_SPACING_M: f64 = 1500.0;

/// A corridor scenario: `platoons` platoons of `per` trucks each, RSUs
/// along the whole span, and the given radio horizon
/// (`f64::INFINITY` = the all-pairs seed semantics).
pub fn corridor_scenario(
    label: &str,
    per: usize,
    platoons: usize,
    duration: f64,
    horizon: f64,
) -> ScenarioBuilder {
    // Span estimate for RSU placement: per-vehicle slots plus the
    // inter-platoon gaps (truck length 16.5 m + 10 m gap each).
    let span =
        (per * platoons) as f64 * 26.5 + platoons.saturating_sub(1) as f64 * PLATOON_SPACING_M;
    let mut b = Scenario::builder()
        .label(label)
        .vehicles(per)
        .platoons(platoons)
        .platoon_spacing(PLATOON_SPACING_M)
        .auth(AuthMode::None)
        .duration(duration)
        .seed(2021)
        .radio_horizon(horizon);
    let mut x = 0.0;
    while x <= span {
        b = b.rsu((x, 8.0));
        x += RSU_SPACING_M;
    }
    b
}

/// One completed corridor run.
#[derive(Clone, Debug, PartialEq)]
pub struct CorridorRun {
    /// The run summary (trace digest folded in).
    pub summary: RunSummary,
    /// Total vehicles in the world.
    pub vehicles: usize,
    /// Cumulative RF (frame, receiver) pairs the medium sampled.
    pub pairs_considered: u64,
    /// Wall-clock milliseconds of the engine loop.
    pub wall_ms: f64,
}

/// Runs one corridor arm: builds the world, attaches a trace recorder,
/// and drives the engine manually so the lead platoon splits a third of
/// the way in and merges back at two thirds, with a legitimate joiner
/// knocking throughout.
pub fn corridor_arm(
    label: &str,
    per: usize,
    platoons: usize,
    duration: f64,
    horizon: f64,
    threads: usize,
    seed: u64,
) -> CorridorRun {
    let scenario = corridor_scenario(label, per, platoons, duration, horizon)
        .seed(seed)
        .build();
    let comm_step = scenario.comm_step;
    let mut engine = Engine::new(scenario);
    engine.set_threads(threads);
    engine.attach_tracer(Box::new(TraceRecorder::new()));
    // The joiner drives alongside the *lead* platoon (the one owning the
    // manoeuvre engine). It positions itself relative to the world's tail
    // vehicle, which in a corridor belongs to the rearmost platoon — so
    // the trail gap is negative by roughly the corridor's length.
    let world_span =
        (per * platoons) as f64 * 26.5 + platoons.saturating_sub(1) as f64 * PLATOON_SPACING_M;
    let join_trail_gap = per as f64 * 26.5 + 40.0 - world_span;
    engine.add_attack(Box::new(
        JoinerAgent::new(
            PrincipalId(900_000),
            NodeId(900_000),
            JoinerCredentials::None,
            PlatoonId(1),
            2.0,
        )
        .with_trail_gap(join_trail_gap),
    ));
    let steps = (duration / comm_step).round() as u64;
    let split_at = steps / 3;
    let merge_at = steps * 2 / 3;
    let t0 = Instant::now();
    for step in 0..steps {
        if step == split_at && per >= 4 {
            // Split the lead platoon in half (platoon-local index).
            let _ = engine.command_split(per / 2);
        }
        if step == merge_at {
            engine.command_merge();
        }
        engine.step();
    }
    engine.restore_faults();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    CorridorRun {
        summary: engine.summary(),
        vehicles: engine.world().vehicles.len(),
        pairs_considered: engine.medium_pairs_considered(),
        wall_ms,
    }
}

/// One cell of the corridor grid. Public so the job service can enumerate
/// the grid ([`grid`]) without re-deriving it.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Cell label (seed derivation input).
    pub label: &'static str,
    /// Trucks per platoon.
    pub per: usize,
    /// Platoon count.
    pub platoons: usize,
    /// Run duration in seconds.
    pub duration: f64,
    /// Radio horizon in metres; `None` = all-pairs (infinite horizon).
    pub horizon: Option<f64>,
}

/// The corridor grid for the given effort, in grid order.
pub fn grid(quick: bool) -> &'static [CellSpec] {
    if quick {
        QUICK_GRID
    } else {
        FULL_GRID
    }
}

/// The quick grid: one mid-size corridor in both medium configurations
/// (48 vehicles — big enough that the index visibly shrinks the pair
/// count, small enough for the CI smoke budget).
const QUICK_GRID: &[CellSpec] = &[
    CellSpec {
        label: "corridor/indexed/6x8",
        per: 8,
        platoons: 6,
        duration: 20.0,
        horizon: Some(CORRIDOR_HORIZON_M),
    },
    CellSpec {
        label: "corridor/allpairs/6x8",
        per: 8,
        platoons: 6,
        duration: 20.0,
        horizon: None,
    },
];

/// The full grid adds a wider corridor for a stable wall-time comparison
/// and a highway-scale cell (5000 vehicles) that only the indexed path
/// can afford.
const FULL_GRID: &[CellSpec] = &[
    CellSpec {
        label: "corridor/indexed/6x8",
        per: 8,
        platoons: 6,
        duration: 20.0,
        horizon: Some(CORRIDOR_HORIZON_M),
    },
    CellSpec {
        label: "corridor/allpairs/6x8",
        per: 8,
        platoons: 6,
        duration: 20.0,
        horizon: None,
    },
    CellSpec {
        label: "corridor/indexed/40x8",
        per: 8,
        platoons: 40,
        duration: 10.0,
        horizon: Some(CORRIDOR_HORIZON_M),
    },
    CellSpec {
        label: "corridor/allpairs/40x8",
        per: 8,
        platoons: 40,
        duration: 10.0,
        horizon: None,
    },
    CellSpec {
        label: "corridor/indexed/500x10",
        per: 10,
        platoons: 500,
        duration: 2.0,
        horizon: Some(CORRIDOR_HORIZON_M),
    },
];

/// Perf sidecar of one cell (everything except `wall_ms` is
/// deterministic).
#[derive(Clone, Debug)]
pub struct CorridorCell {
    /// Cell label (seed derivation input).
    pub label: String,
    /// Derived seed the cell ran with.
    pub seed: u64,
    /// Total vehicles in the cell's world.
    pub vehicles: usize,
    /// Whether the spatial index was active (finite horizon).
    pub indexed: bool,
    /// Cumulative RF pairs the medium sampled (deterministic).
    pub pairs_considered: u64,
    /// Wall-clock milliseconds (machine-dependent).
    pub wall_ms: f64,
}

/// A completed corridor experiment.
#[derive(Clone, Debug)]
pub struct CorridorReport {
    /// Document label (`quick` / `full`).
    pub label: String,
    /// Engine threads every cell ran with.
    pub threads: usize,
    /// The canonical batch document of summaries (the golden unit).
    pub report: BatchReport,
    /// Perf sidecar, in grid order.
    pub cells: Vec<CorridorCell>,
}

/// Runs the corridor grid with explicit worker and engine-thread counts.
pub fn run_with(quick: bool, workers: usize, threads: usize) -> CorridorReport {
    let grid = grid(quick);
    let mut batch: Batch<CorridorRun> = Batch::new(CORRIDOR_BASE_SEED);
    for spec in grid {
        let spec = spec.clone();
        batch.push(spec.label, move |seed| {
            corridor_arm(
                spec.label,
                spec.per,
                spec.platoons,
                spec.duration,
                spec.horizon.unwrap_or(f64::INFINITY),
                threads,
                seed,
            )
        });
    }
    let entries = batch.run_outcomes(workers);

    let mut cells = Vec::new();
    let report = BatchReport {
        base_seed: CORRIDOR_BASE_SEED,
        entries: entries
            .into_iter()
            .zip(grid)
            .map(|(e, spec)| platoon_sim::harness::BatchEntry {
                label: e.label.clone(),
                seed: e.seed,
                value: match e.value {
                    JobOutcome::Ok(run) => {
                        cells.push(CorridorCell {
                            label: e.label,
                            seed: e.seed,
                            vehicles: run.vehicles,
                            indexed: spec.horizon.is_some(),
                            pairs_considered: run.pairs_considered,
                            wall_ms: run.wall_ms,
                        });
                        JobOutcome::Ok(run.summary)
                    }
                    JobOutcome::Failed { reason } => JobOutcome::Failed { reason },
                },
            })
            .collect(),
    };
    CorridorReport {
        label: if quick { "quick" } else { "full" }.to_string(),
        threads,
        report,
        cells,
    }
}

/// Runs the quick/full grid at default width, single engine thread.
pub fn run(quick: bool) -> CorridorReport {
    run_with(quick, platoon_sim::harness::default_workers(), 1)
}

/// Canonical JSON of the batch document (the golden-snapshot unit: no
/// timing or thread-count fields, byte-identical everywhere).
pub fn to_canonical_json(report: &CorridorReport) -> String {
    report.report.to_canonical_json()
}

impl CorridorReport {
    /// The matched indexed/all-pairs cell pairs: `(indexed, allpairs)`
    /// cells that ran the same corridor.
    pub fn matched_pairs(&self) -> Vec<(&CorridorCell, &CorridorCell)> {
        self.cells
            .iter()
            .filter(|c| c.indexed)
            .filter_map(|ic| {
                let twin = ic.label.replace("/indexed/", "/allpairs/");
                self.cells
                    .iter()
                    .find(|c| !c.indexed && c.label == twin)
                    .map(|ac| (ic, ac))
            })
            .collect()
    }

    /// The `BENCH_corridor_<label>.json` document: wall times plus the
    /// deterministic pair counters, with the indexed-vs-allpairs ratios
    /// for every matched corridor.
    pub fn bench_document(&self) -> String {
        let mut w = json::Writer::new();
        w.obj(|w| {
            w.field_str("label", &self.label);
            w.field_u64("base_seed", CORRIDOR_BASE_SEED);
            w.field_u64("threads", self.threads as u64);
            w.field_arr("cells", |w| {
                for c in &self.cells {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("label", &c.label);
                            w.field_u64("seed", c.seed);
                            w.field_u64("vehicles", c.vehicles as u64);
                            w.field_bool("indexed", c.indexed);
                            w.field_u64("pairs_considered", c.pairs_considered);
                            w.field_f64("wall_ms", c.wall_ms);
                        })
                    });
                }
            });
            w.field_arr("comparisons", |w| {
                for (ic, ac) in self.matched_pairs() {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("corridor", &ic.label);
                            w.field_u64("indexed_pairs", ic.pairs_considered);
                            w.field_u64("allpairs_pairs", ac.pairs_considered);
                            w.field_f64(
                                "pairs_ratio",
                                ic.pairs_considered as f64 / ac.pairs_considered.max(1) as f64,
                            );
                            w.field_f64("indexed_wall_ms", ic.wall_ms);
                            w.field_f64("allpairs_wall_ms", ac.wall_ms);
                        })
                    });
                }
            });
        });
        w.finish()
    }

    /// Asserts the indexed medium did strictly less pair work than the
    /// all-pairs scan on every matched corridor. Returns the failures
    /// (empty = the index earns its keep).
    pub fn check_speedup(&self) -> Vec<String> {
        let pairs = self.matched_pairs();
        if pairs.is_empty() {
            return vec!["no matched indexed/allpairs corridor cells".to_string()];
        }
        pairs
            .iter()
            .filter(|(ic, ac)| ic.pairs_considered >= ac.pairs_considered)
            .map(|(ic, ac)| {
                format!(
                    "{}: indexed considered {} pairs, all-pairs {}",
                    ic.label, ic.pairs_considered, ac.pairs_considered
                )
            })
            .collect()
    }
}

/// Writes `CORRIDOR_<label>.json` and `BENCH_corridor_<label>.json` into
/// `out_dir`, returning both paths.
fn write_report_files(
    report: &CorridorReport,
    out_dir: &Path,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(out_dir)?;
    let doc = out_dir.join(format!("CORRIDOR_{}.json", report.label));
    std::fs::write(&doc, to_canonical_json(report))?;
    let bench = out_dir.join(format!("BENCH_corridor_{}.json", report.label));
    std::fs::write(&bench, report.bench_document())?;
    Ok((doc, bench))
}

/// Entry point for the `corridor` subcommand (root binary and the bench
/// report binary). Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut quick = false;
    let mut workers = platoon_sim::harness::default_workers();
    let mut threads = 1usize;
    let mut out_dir = PathBuf::from(".");
    let mut check_golden: Option<PathBuf> = None;
    let mut assert_speedup = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--quick" => quick = true,
                "--workers" => {
                    workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--threads" => {
                    threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--check-golden" => check_golden = Some(PathBuf::from(value("--check-golden")?)),
                "--assert-speedup" => assert_speedup = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: corridor [--quick] [--workers N] [--threads N] [--out DIR]\n\
                         \x20               [--check-golden PATH] [--assert-speedup]\n\
                         \x20 --quick          the 48-vehicle CI smoke corridor (indexed + all-pairs)\n\
                         \x20 --workers N      harness worker processes (default: available parallelism)\n\
                         \x20 --threads N      intra-run engine threads (default: 1; never changes results)\n\
                         \x20 --out DIR        where CORRIDOR_*.json / BENCH_corridor_*.json land (default: .)\n\
                         \x20 --check-golden P snapshot-match the canonical document against P\n\
                         \x20 --assert-speedup fail unless the indexed medium sampled strictly\n\
                         \x20                  fewer pairs than the all-pairs scan"
                    );
                    return Err(String::new()); // handled: exit 0 below
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    eprintln!(
        "running corridor grid ({} effort, {workers} workers, {threads} engine thread(s))...",
        if quick { "quick" } else { "full" },
    );
    let report = run_with(quick, workers, threads);
    for (job, reason) in report.report.failures() {
        eprintln!("failed job {job:?}: {reason}");
    }
    for c in &report.cells {
        eprintln!(
            "  {:<26} {:>5} vehicles  {:>12} pairs  {:>9.1} ms",
            c.label, c.vehicles, c.pairs_considered, c.wall_ms
        );
    }
    match write_report_files(&report, &out_dir) {
        Ok((doc, bench)) => eprintln!("wrote {} and {}", doc.display(), bench.display()),
        Err(e) => {
            eprintln!("error: writing report: {e}");
            return 1;
        }
    }

    let mut failed = report.report.failures().next().is_some();
    if let Some(path) = check_golden {
        match golden::check(
            &path,
            &to_canonical_json(&report),
            golden::Tolerance::snapshot(),
        ) {
            Ok(golden::Outcome::Match) => eprintln!("document matches {}", path.display()),
            Ok(golden::Outcome::Updated) => eprintln!("golden written: {}", path.display()),
            Err(diff) => {
                eprintln!("corridor drift:\n{diff}");
                failed = true;
            }
        }
    }
    if assert_speedup {
        let failures = report.check_speedup();
        if failures.is_empty() {
            eprintln!("indexed medium beat the all-pairs scan on every matched corridor");
        } else {
            for f in &failures {
                eprintln!("speedup assertion failed: {f}");
            }
            failed = true;
        }
    }
    if failed {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::harness::golden::Tolerance;

    fn golden_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/corridor_quick.json")
    }

    #[test]
    fn quick_corridor_beats_allpairs_and_is_invariant() {
        let one = run_with(true, 1, 1);
        assert!(
            one.report.failures().next().is_none(),
            "corridor cells must complete"
        );
        golden::assert_matches(
            &golden_path(),
            &to_canonical_json(&one),
            Tolerance::snapshot(),
        );
        // The indexed arm did strictly less medium work.
        assert!(one.check_speedup().is_empty(), "{:?}", one.check_speedup());
        // Summaries (and so the canonical document) are invariant across
        // harness worker counts AND engine thread counts.
        let wide = run_with(true, 4, 3);
        assert_eq!(to_canonical_json(&one), to_canonical_json(&wide));
        // The deterministic side of the bench document is invariant too.
        for (a, b) in one.cells.iter().zip(&wide.cells) {
            assert_eq!(a.pairs_considered, b.pairs_considered, "{}", a.label);
            assert_eq!(a.vehicles, b.vehicles);
        }
        // The corridor actually is multi-platoon and manoeuvring: a
        // corridor is fragmented by construction, the lead platoon split,
        // and the joiner got in.
        let summary = one.report.summary("corridor/indexed/6x8");
        assert!(summary.fragmented_fraction > 0.0);
        assert!(summary.maneuvers.splits >= 1, "split never happened");
        assert!(
            summary.maneuvers.joins_accepted >= 1,
            "the corridor joiner was never accepted"
        );
    }

    #[test]
    fn bench_document_parses_and_carries_ratios() {
        let report = run_with(true, 2, 1);
        let doc = report.bench_document();
        let parsed = json::parse(&doc).expect("bench document parses");
        let comparisons = match parsed.get("comparisons") {
            Some(json::Value::Arr(c)) => c,
            _ => panic!("no comparisons array"),
        };
        assert_eq!(comparisons.len(), 1);
        let ratio = comparisons[0]
            .get("pairs_ratio")
            .and_then(json::Value::as_f64)
            .expect("pairs_ratio present");
        assert!(
            ratio > 0.0 && ratio < 1.0,
            "indexed/allpairs pair ratio should be a real saving, got {ratio}"
        );
    }
}
