//! Experiment T2: Table II backed by measurements.
//!
//! The paper's Table II asserts, per attack, which security attribute is
//! compromised and what happens to the platoon. This experiment runs every
//! catalogued attack against the canonical platoon and reports the measured
//! impact next to a clean baseline — turning the table's prose claims into
//! numbers.

use super::common::{impact_of, impact_unit, run_arm, Effort};
use crate::tables::{num, TextTable};
use serde::Serialize;

/// Measured result for one Table II row.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Table2Row {
    /// Attack machine name.
    pub attack: String,
    /// Display name (paper row).
    pub display_name: String,
    /// Compromised attribute.
    pub attribute: String,
    /// Impact metric name.
    pub metric: &'static str,
    /// Impact with the attack active.
    pub attacked: f64,
    /// Impact of the clean baseline (same metric).
    pub baseline: f64,
}

/// Runs the full Table II measurement.
pub fn run(quick: bool) -> Vec<Table2Row> {
    let effort = Effort::new(quick);
    let mut rows = Vec::new();
    for desc in platoon_attacks::registry::catalog() {
        // The sensor row covers both radar spoofing and GPS spoofing; run
        // the radar variant here (the GPS variant is F6's subject).
        let attack = desc.name;
        let (engine, summary) = run_arm(attack, None, effort);
        let attacked = impact_of(attack, &engine, &summary);

        // Baseline: same scenario, no attack (except the DoS baseline which
        // keeps the legitimate joiner so the metric is comparable).
        let baseline = baseline_impact(attack, effort);

        rows.push(Table2Row {
            attack: attack.to_string(),
            display_name: desc.display_name.to_string(),
            attribute: desc.attribute.to_string(),
            metric: impact_unit(attack),
            attacked,
            baseline,
        });
    }
    rows
}

fn baseline_impact(attack: &str, effort: Effort) -> f64 {
    use super::common::{base_scenario, brake_profile, legit_joiner};
    use platoon_sim::prelude::Engine;

    let mut builder = base_scenario(&format!("{attack}/baseline"), effort);
    if matches!(attack, "replay" | "insider-fdi") {
        builder = builder.profile(brake_profile());
    }
    let mut engine = Engine::new(builder.build());
    if attack == "dos-join-flood" {
        engine.add_attack(Box::new(legit_joiner(effort.duration * 0.25)));
    }
    if attack == "eavesdrop" {
        // The baseline for confidentiality is "the eavesdropper exists but
        // the platoon encrypts": measured in F7; here the clean baseline is
        // simply zero beacons read (no listener).
        return 0.0;
    }
    let summary = engine.run();
    impact_of(attack, &engine, &summary)
}

/// Renders the measured Table II.
pub fn render(rows: &[Table2Row]) -> TextTable {
    let mut t = TextTable::new(
        "Table II (measured) — attacks on platoons, attribute compromised, measured impact",
        &[
            "Attack",
            "Attribute",
            "Impact metric",
            "Baseline",
            "Attacked",
            "Ratio",
        ],
    );
    for r in rows {
        let ratio = if r.baseline.abs() > 1e-9 {
            num(r.attacked / r.baseline, 1)
        } else if r.attacked.abs() < 1e-9 {
            "1.0".to_string()
        } else {
            "inf".to_string()
        };
        t.row(vec![
            r.display_name.clone(),
            r.attribute.clone(),
            r.metric.to_string(),
            num(r.baseline, 2),
            num(r.attacked, 2),
            ratio,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_shows_measured_impact_above_baseline() {
        let rows = run(true);
        assert_eq!(rows.len(), platoon_attacks::registry::catalog().len());
        for r in &rows {
            assert!(
                r.attacked > r.baseline,
                "{} must measurably hurt: attacked {} vs baseline {}",
                r.attack,
                r.attacked,
                r.baseline
            );
        }
        let rendered = render(&rows).render();
        assert!(rendered.contains("Sybil"));
        assert!(rendered.contains("Jamming"));
    }
}
