//! Experiment T2: Table II backed by measurements.
//!
//! The paper's Table II asserts, per attack, which security attribute is
//! compromised and what happens to the platoon. This experiment runs every
//! catalogued attack against the canonical platoon and reports the measured
//! impact next to a clean baseline — turning the table's prose claims into
//! numbers.

use super::common::{
    arm_outcome, impact_of, impact_unit, ArmOutcome, Effort, EXPERIMENT_BASE_SEED,
};
use crate::tables::{num, TextTable};
use platoon_sim::harness::{json, Batch};
use serde::Serialize;

/// Measured result for one Table II row.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Table2Row {
    /// Attack machine name.
    pub attack: String,
    /// Display name (paper row).
    pub display_name: String,
    /// Compromised attribute.
    pub attribute: String,
    /// Impact metric name.
    pub metric: &'static str,
    /// Impact with the attack active.
    pub attacked: f64,
    /// Impact of the clean baseline (same metric).
    pub baseline: f64,
}

/// Runs the full Table II measurement.
///
/// Every (attacked, baseline) arm is an independent job on the experiment
/// harness, pinned to the canonical [`EXPERIMENT_BASE_SEED`] so the table
/// keeps the published numbers and stays identical for any worker count.
/// The undefended-arm labels match Table III's, which keeps the two tables'
/// shared measurements consistent.
pub fn run(quick: bool) -> Vec<Table2Row> {
    let effort = Effort::new(quick);
    let catalog = platoon_attacks::registry::catalog();
    let mut batch: Batch<ArmOutcome> = Batch::new(EXPERIMENT_BASE_SEED);
    for desc in &catalog {
        // The sensor row covers both radar spoofing and GPS spoofing; run
        // the radar variant here (the GPS variant is F6's subject).
        let attack = desc.name;
        batch.push_with_seed(
            format!("{attack}/undefended"),
            EXPERIMENT_BASE_SEED,
            move |seed| arm_outcome(attack, None, effort, seed),
        );
        // Baseline: same scenario, no attack (except the DoS baseline which
        // keeps the legitimate joiner so the metric is comparable).
        batch.push_with_seed(
            format!("{attack}/baseline"),
            EXPERIMENT_BASE_SEED,
            move |seed| baseline_outcome(attack, effort, seed),
        );
    }
    let entries = batch.run(platoon_sim::harness::default_workers());

    catalog
        .iter()
        .zip(entries.chunks(2))
        .map(|(desc, pair)| Table2Row {
            attack: desc.name.to_string(),
            display_name: desc.display_name.to_string(),
            attribute: desc.attribute.to_string(),
            metric: impact_unit(desc.name),
            attacked: pair[0].value.impact,
            baseline: pair[1].value.impact,
        })
        .collect()
}

/// The clean-baseline arm paired with an attack row: same scenario and
/// workload, no attack (except the DoS baseline, which keeps the legitimate
/// joiner so the latency metric stays comparable). Public so the job
/// service can execute Table II cells by name.
pub fn baseline_outcome(attack: &str, effort: Effort, seed: u64) -> ArmOutcome {
    use super::common::{base_scenario, brake_profile, legit_joiner};
    use platoon_sim::prelude::Engine;

    let mut builder = base_scenario(&format!("{attack}/baseline"), effort).seed(seed);
    if matches!(attack, "replay" | "insider-fdi") {
        builder = builder.profile(brake_profile());
    }
    let mut engine = Engine::new(builder.build());
    if attack == "dos-join-flood" {
        engine.add_attack(Box::new(legit_joiner(effort.duration * 0.25)));
    }
    let summary = engine.run();
    // The baseline for confidentiality is "the eavesdropper exists but the
    // platoon encrypts": measured in F7; here the clean baseline is simply
    // zero beacons read (no listener).
    let impact = if attack == "eavesdrop" {
        0.0
    } else {
        impact_of(attack, &engine, &summary)
    };
    ArmOutcome { summary, impact }
}

/// Canonical JSON rendering of the measured rows — the golden-snapshot
/// document for the Table II attack-effect runs.
pub fn to_canonical_json(rows: &[Table2Row]) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_u64("base_seed", EXPERIMENT_BASE_SEED);
        w.field_arr("rows", |w| {
            for r in rows {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("attack", &r.attack);
                        w.field_str("attribute", &r.attribute);
                        w.field_str("metric", r.metric);
                        w.field_f64("baseline", r.baseline);
                        w.field_f64("attacked", r.attacked);
                    })
                });
            }
        });
    });
    w.finish()
}

/// Renders the measured Table II.
pub fn render(rows: &[Table2Row]) -> TextTable {
    let mut t = TextTable::new(
        "Table II (measured) — attacks on platoons, attribute compromised, measured impact",
        &[
            "Attack",
            "Attribute",
            "Impact metric",
            "Baseline",
            "Attacked",
            "Ratio",
        ],
    );
    for r in rows {
        let ratio = if r.baseline.abs() > 1e-9 {
            num(r.attacked / r.baseline, 1)
        } else if r.attacked.abs() < 1e-9 {
            "1.0".to_string()
        } else {
            "inf".to_string()
        };
        t.row(vec![
            r.display_name.clone(),
            r.attribute.clone(),
            r.metric.to_string(),
            num(r.baseline, 2),
            num(r.attacked, 2),
            ratio,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_shows_measured_impact_above_baseline() {
        let rows = run(true);
        assert_eq!(rows.len(), platoon_attacks::registry::catalog().len());
        for r in &rows {
            assert!(
                r.attacked > r.baseline,
                "{} must measurably hurt: attacked {} vs baseline {}",
                r.attack,
                r.attacked,
                r.baseline
            );
        }
        let rendered = render(&rows).render();
        assert!(rendered.contains("Sybil"));
        assert!(rendered.contains("Jamming"));
    }

    #[test]
    fn quick_table_matches_golden() {
        use platoon_sim::harness::golden::{self, Tolerance};
        let rows = run(true);
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/golden/table2_quick.json");
        golden::assert_matches(&path, &to_canonical_json(&rows), Tolerance::snapshot());
    }
}
