//! Experiment T4: "Table IV" — detection quality of the online
//! misbehavior-detection subsystem.
//!
//! The paper's Tables II/III say what each attack *does* and which
//! mechanism *prevents* it; this table answers the open-challenge question
//! the paper leaves implicit (§VI-B): if a platoon runs an online
//! misbehaviour detector instead of (or alongside) hard prevention, how
//! reliably — and how *fast* — does each catalogued attack get caught, and
//! who gets blamed?
//!
//! Every arm runs the canonical platoon with the [`platoon_detect`]
//! pipeline attached, labels the run with ground truth
//! ([`TruthLabels`]), and scores the alert stream
//! ([`platoon_sim::metrics::score_alerts`]). Rows aggregate a few seeds per
//! (attack × detector-config) cell plus a benign arm per config whose only
//! job is to expose the false-positive floor.
//!
//! Honest coverage gaps are part of the result: the passive eavesdropper
//! and the one-shot fake-manoeuvre forgery are expected to sail past a
//! plausibility pipeline (rate 0, latency ∞) — exactly the blind spots
//! Table III's cryptographic rows exist to close.

use super::common::{
    base_scenario, brake_profile, legit_joiner, make_attack, Effort, EXPERIMENT_BASE_SEED,
};
use crate::tables::{num, TextTable};
use platoon_crypto::cert::PrincipalId;
use platoon_detect::pipeline::PipelineConfig;
use platoon_sim::harness::{json, Batch};
use platoon_sim::prelude::{score_alerts, DetectionSummary, Engine, TruthLabels};
use serde::Serialize;

/// Detector configurations swept by the experiment.
pub const CONFIGS: [&str; 2] = ["default", "strict"];

/// Independent seeds per (attack, config) cell.
pub const SEEDS_PER_ARM: u64 = 3;

/// The pipeline configuration for a named detector profile. Attach it via
/// [`Engine::attach_detector_config`] so scenario-dependent tuning (the
/// frequency detector's nominal beacon rate) is resolved against the
/// scenario rather than left at the 10 Hz default.
pub fn profile_for(config: &str) -> PipelineConfig {
    match config {
        "default" => PipelineConfig::default_profile(),
        "strict" => PipelineConfig::strict(),
        // Regime-experiment profiles (not part of the Table IV sweep —
        // CONFIGS stays as-is so the golden document keeps its shape).
        "cruise" => super::regimes::cruise_profile(),
        "regime-aware" => super::regimes::regime_aware_profile(),
        other => panic!("unknown detector config {other}"),
    }
}

/// Ground-truth labels for one arm, derived from the attack's canonical
/// configuration in [`make_attack`] (timings, victim/insider indices, ghost
/// id ranges) plus post-run engine state where the guilty set is dynamic
/// (malware infection).
pub fn truth_for(attack: &str, effort: Effort, engine: &Engine) -> TruthLabels {
    let start = effort.duration * 0.2;
    let mut truth = TruthLabels {
        attack: attack.to_string(),
        start,
        channel_attack: false,
        guilty: Vec::new(),
        guilty_from: None,
    };
    match attack {
        "benign" => truth = TruthLabels::benign("benign"),
        // Passive listener: nothing on the air to flag. Any alert is false.
        "eavesdrop" => {}
        // One forged manoeuvre frame under the leader's identity.
        "fake-maneuver" => truth.guilty = vec![engine.world().vehicles[0].principal],
        "replay" => {
            // The replayed frames are verbatim member traffic; alerts name
            // the replayed identities, so every member is a valid blame
            // target once the replays start.
            truth.guilty = engine
                .world()
                .vehicles
                .iter()
                .map(|v| v.principal)
                .collect();
        }
        "sybil" => truth.guilty_from = Some(7_000),
        "jamming" => truth.channel_attack = true,
        "dos-join-flood" => {
            truth.start = start * 0.5;
            truth.channel_attack = true;
            truth.guilty_from = Some(8_000);
        }
        "impersonation" => truth.guilty = vec![PrincipalId(1)],
        "sensor-spoof" => truth.guilty = vec![engine.world().vehicles[2].principal],
        "insider-fdi" => truth.guilty = vec![PrincipalId(2)],
        "malware" => {
            truth.start = start * 0.5;
            truth.guilty = engine
                .world()
                .vehicles
                .iter()
                .filter(|v| v.infected)
                .map(|v| v.principal)
                .collect();
        }
        other => panic!("unknown attack {other}"),
    }
    truth
}

/// Harness job body: one (attack, config, seed) detection run.
pub fn detection_arm(attack: &str, config: &str, effort: Effort, seed: u64) -> DetectionSummary {
    let label = format!("{attack}/{config}");
    let mut builder = base_scenario(&label, effort).seed(seed);
    if matches!(attack, "replay" | "insider-fdi") {
        builder = builder.profile(brake_profile());
    }
    let mut engine = Engine::new(builder.build());
    if attack != "benign" {
        engine.add_attack(make_attack(attack, effort));
    }
    if attack == "dos-join-flood" {
        // The honest joiner rides along (as in T2/T3) — its join request
        // must not be blamed for the flood.
        engine.add_attack(Box::new(legit_joiner(effort.duration * 0.25)));
    }
    engine.attach_detector_config(profile_for(config));
    engine.run();
    let truth = truth_for(attack, effort, &engine);
    score_alerts(engine.alerts(), &truth)
}

/// One row of the measured Table IV: an (attack, detector-config) cell
/// aggregated over [`SEEDS_PER_ARM`] seeds.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Table4Row {
    /// Attack machine name ("benign" for the false-positive floor arm).
    pub attack: String,
    /// Detector configuration name.
    pub config: String,
    /// Seeds aggregated.
    pub runs: u64,
    /// Fraction of runs in which the attack was detected at all.
    pub detection_rate: f64,
    /// Median seconds from attack start to the first true positive
    /// (`f64::INFINITY` when the median run never detects).
    pub median_latency_s: f64,
    /// Mean false positives per run (every alert, for the benign arm).
    pub false_positives_per_run: f64,
    /// Mean alerts per run.
    pub alerts_per_run: f64,
    /// Mean per-sender attribution accuracy over runs that attributed
    /// anything (`f64::NAN` when no run did — e.g. pure channel alarms).
    pub attribution_accuracy: f64,
}

/// Aggregates one (attack, config) cell's per-seed summaries into a row.
/// Public so the dataset experiment can score its learned detector with
/// the identical aggregation.
pub fn aggregate(attack: &str, config: &str, cells: &[DetectionSummary]) -> Table4Row {
    let runs = cells.len();
    let detected = cells.iter().filter(|c| c.detected).count();
    let mut latencies: Vec<f64> = cells.iter().map(|c| c.first_detection_latency).collect();
    latencies.sort_by(f64::total_cmp);
    let median_latency_s = latencies[runs / 2];
    let mean =
        |f: &dyn Fn(&DetectionSummary) -> f64| cells.iter().map(f).sum::<f64>() / runs as f64;
    let attributed: Vec<f64> = cells
        .iter()
        .map(|c| c.attribution_accuracy)
        .filter(|a| !a.is_nan())
        .collect();
    let attribution_accuracy = if attributed.is_empty() {
        f64::NAN
    } else {
        attributed.iter().sum::<f64>() / attributed.len() as f64
    };
    Table4Row {
        attack: attack.to_string(),
        config: config.to_string(),
        runs: runs as u64,
        detection_rate: detected as f64 / runs as f64,
        median_latency_s,
        false_positives_per_run: mean(&|c| c.false_positives as f64),
        alerts_per_run: mean(&|c| c.alerts as f64),
        attribution_accuracy,
    }
}

/// The arm list: every catalogued attack plus the benign floor. Public so
/// the job service can enumerate the Table IV grid without re-deriving it.
pub fn arm_names() -> Vec<String> {
    let mut v: Vec<String> = platoon_attacks::registry::catalog()
        .iter()
        .map(|d| d.name.to_string())
        .collect();
    v.push("benign".to_string());
    v
}

/// Runs the full Table IV measurement on the experiment harness.
///
/// Arm labels (`attack/config/s<i>`) pin the per-arm seeds, so the table is
/// identical for any worker count.
pub fn run(quick: bool) -> Vec<Table4Row> {
    let effort = Effort::new(quick);
    let arm_names = arm_names();
    let mut batch: Batch<DetectionSummary> = Batch::new(EXPERIMENT_BASE_SEED);
    for config in CONFIGS {
        for attack in &arm_names {
            for s in 0..SEEDS_PER_ARM {
                let attack = attack.clone();
                batch.push_with_seed(
                    format!("{attack}/{config}/s{s}"),
                    EXPERIMENT_BASE_SEED + s,
                    move |seed| detection_arm(&attack, config, effort, seed),
                );
            }
        }
    }
    let entries = batch.run(platoon_sim::harness::default_workers());

    let mut rows = Vec::new();
    let per_arm = SEEDS_PER_ARM as usize;
    for (ci, config) in CONFIGS.iter().enumerate() {
        for (ai, attack) in arm_names.iter().enumerate() {
            let base = (ci * arm_names.len() + ai) * per_arm;
            let cells: Vec<DetectionSummary> = entries[base..base + per_arm]
                .iter()
                .map(|e| e.value.clone())
                .collect();
            rows.push(aggregate(attack, config, &cells));
        }
    }
    rows
}

/// Canonical JSON rendering of the measured rows — the golden-snapshot
/// document for the detection-quality runs. Exercises the writer's
/// non-finite encodings: never-detected cells carry `"inf"` latencies and
/// channel-only cells a `"nan"` attribution.
pub fn to_canonical_json(rows: &[Table4Row]) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_u64("base_seed", EXPERIMENT_BASE_SEED);
        w.field_u64("seeds_per_arm", SEEDS_PER_ARM);
        w.field_arr("rows", |w| {
            for r in rows {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("attack", &r.attack);
                        w.field_str("config", &r.config);
                        w.field_f64("detection_rate", r.detection_rate);
                        w.field_f64("median_latency_s", r.median_latency_s);
                        w.field_f64("false_positives_per_run", r.false_positives_per_run);
                        w.field_f64("alerts_per_run", r.alerts_per_run);
                        w.field_f64("attribution_accuracy", r.attribution_accuracy);
                    })
                });
            }
        });
    });
    w.finish()
}

/// Renders the measured Table IV.
pub fn render(rows: &[Table4Row]) -> TextTable {
    let mut t = TextTable::new(
        "Table IV (measured) — online detection quality per attack × detector config",
        &[
            "Attack",
            "Config",
            "Detection rate",
            "Median latency (s)",
            "FP/run",
            "Alerts/run",
            "Attribution",
        ],
    );
    for r in rows {
        t.row(vec![
            r.attack.clone(),
            r.config.clone(),
            num(r.detection_rate, 2),
            if r.median_latency_s.is_finite() {
                num(r.median_latency_s, 1)
            } else {
                "inf".to_string()
            },
            num(r.false_positives_per_run, 1),
            num(r.alerts_per_run, 1),
            if r.attribution_accuracy.is_nan() {
                "-".to_string()
            } else {
                num(r.attribution_accuracy, 2)
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [Table4Row], attack: &str, config: &str) -> &'a Table4Row {
        rows.iter()
            .find(|r| r.attack == attack && r.config == config)
            .unwrap()
    }

    #[test]
    fn detection_quality_meets_the_design_floor() {
        let rows = run(true);
        assert_eq!(
            rows.len(),
            CONFIGS.len() * (platoon_attacks::registry::catalog().len() + 1)
        );

        // The benign floor: an honest platoon must stay quiet.
        for config in CONFIGS {
            let b = row(&rows, "benign", config);
            assert_eq!(b.detection_rate, 0.0, "{config}: benign runs detected?");
            assert!(
                b.false_positives_per_run < 1.0,
                "{config}: benign FP floor too high: {}",
                b.false_positives_per_run
            );
        }

        // Attacks squarely inside the pipeline's coverage must be caught in
        // every seed under the default config, promptly.
        for attack in ["sybil", "dos-join-flood", "impersonation", "insider-fdi"] {
            let r = row(&rows, attack, "default");
            assert_eq!(r.detection_rate, 1.0, "{attack} must always be detected");
            assert!(
                r.median_latency_s < 10.0,
                "{attack} latency {}",
                r.median_latency_s
            );
        }

        // The passive eavesdropper is an honest coverage gap: nothing to
        // observe, nothing detected, latency infinite.
        let e = row(&rows, "eavesdrop", "default");
        assert_eq!(e.detection_rate, 0.0);
        assert!(e.median_latency_s.is_infinite());

        // The strict profile trades threshold for recall: it never detects
        // less than the default profile does.
        for attack in arm_names() {
            let d = row(&rows, &attack, "default");
            let s = row(&rows, &attack, "strict");
            assert!(
                s.detection_rate >= d.detection_rate,
                "{attack}: strict {} < default {}",
                s.detection_rate,
                d.detection_rate
            );
        }

        let rendered = render(&rows).render();
        assert!(rendered.contains("Table IV"));
        assert!(rendered.contains("benign"));
    }

    #[test]
    fn quick_table_matches_golden() {
        use platoon_sim::harness::golden::{self, Tolerance};
        let rows = run(true);
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/golden/table4_quick.json");
        golden::assert_matches(&path, &to_canonical_json(&rows), Tolerance::snapshot());
    }
}
