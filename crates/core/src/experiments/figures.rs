//! Experiments F1–F10: the quantitative sweeps behind every per-attack
//! effect claim of the paper's §V and every mechanism claim of §VI (see
//! DESIGN.md §3 for the index).

use super::common::{base_scenario, brake_profile, legit_joiner, Effort};
use super::{Figure, Series};
use platoon_attacks::prelude::*;
use platoon_defense::prelude::*;
use platoon_sim::prelude::*;

fn sweep(points: usize, lo: f64, hi: f64) -> Vec<f64> {
    if points <= 1 {
        return vec![hi];
    }
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

/// F0 — substrate validation: string-stability amplification vs leader
/// excitation frequency per controller family. This is the canonical plot
/// of the platooning-control literature (and the Plexe paper \[39\]): CACC
/// attenuates disturbances down the string at every frequency; ACC with a
/// short effective gap amplifies mid-band. It validates the simulator
/// substrate before any attack is measured.
pub fn fig_string_stability(quick: bool) -> Figure {
    // Substrate validation runs long regardless of effort: the measurement
    // window must sit in steady state, after every controller's spacing-
    // policy transient (Ploeg expands to its own time-gap policy first).
    let mut effort = Effort::new(quick);
    effort.duration = 120.0;
    // Excitation periods (s) → frequency sweep.
    let periods: Vec<f64> = if quick {
        vec![30.0, 15.0, 8.0]
    } else {
        vec![50.0, 30.0, 20.0, 15.0, 10.0, 6.0]
    };
    let kinds = [
        ("CACC", ControllerKind::Cacc),
        ("Ploeg", ControllerKind::Ploeg),
        ("consensus", ControllerKind::Consensus),
    ];
    let mut series = Vec::new();
    for (name, kind) in kinds {
        let mut points = Vec::new();
        for &period in &periods {
            let mut engine = Engine::new(
                base_scenario(&format!("F0/{name}/{period}"), effort)
                    .controller(kind)
                    .profile(platoon_dynamics::profiles::SpeedProfile::Sinusoid {
                        mean: 25.0,
                        amplitude: 3.0, // strong excitation so sensor noise is negligible
                        period,
                    })
                    .build(),
            );
            engine.run();
            // Steady-state speed-oscillation amplification first follower →
            // tail (second half of the run, mean removed): the transfer-
            // function magnitude the string-stability literature plots.
            let osc = |idx: usize| {
                let speeds = &engine.metrics().speeds[idx].values;
                let half = &speeds[speeds.len() / 2..];
                let mean = half.iter().sum::<f64>() / half.len() as f64;
                (half.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / half.len() as f64).sqrt()
            };
            let first = osc(1).max(1e-9);
            let tail = osc(engine.world().vehicles.len() - 1);
            points.push((1.0 / period, tail / first));
        }
        series.push(Series {
            name: name.to_string(),
            points,
        });
    }
    Figure {
        id: "F0".into(),
        title: "Substrate validation: string-stability amplification vs excitation frequency"
            .into(),
        x_label: "leader excitation frequency (Hz)".into(),
        y_label: "worst follower-to-follower L∞ amplification".into(),
        series,
        expected_shape: "cooperative controllers stay at or below 1.0 (attenuation) across                          the band — the string-stability property the attacks later destroy"
            .into(),
    }
}

/// F1 — replay rate vs oscillation energy, with the anti-replay ablation
/// (§V-A.1; Table III "keys" freshness half).
pub fn fig_replay(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let rates = sweep(effort.sweep_points, 0.0, 100.0);
    type DefenseCtor = Option<fn() -> AntiReplayDefense>;
    let arms: [(&str, DefenseCtor); 3] = [
        ("undefended", None),
        ("timestamp window", Some(AntiReplayDefense::timestamp)),
        ("sequence window", Some(AntiReplayDefense::sequence)),
    ];
    let mut series = Vec::new();
    for (name, defense) in arms {
        let mut points = Vec::new();
        for &rate in &rates {
            let mut engine = Engine::new(
                base_scenario(&format!("F1/{name}/{rate}"), effort)
                    .profile(brake_profile())
                    .build(),
            );
            if rate > 0.0 {
                engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
                    replay_from: effort.duration * 0.2,
                    replay_rate: rate,
                    ..Default::default()
                })));
            }
            if let Some(make) = defense {
                engine.add_defense(Box::new(make()));
            }
            let s = engine.run();
            points.push((rate, s.oscillation_energy));
        }
        series.push(Series {
            name: name.to_string(),
            points,
        });
    }
    Figure {
        id: "F1".into(),
        title: "Replay attack: oscillation energy vs replay rate".into(),
        x_label: "replay rate (frames/s)".into(),
        y_label: "oscillation energy (m²·s)".into(),
        series,
        expected_shape: "undefended grows steeply with rate; both anti-replay windows stay \
                         near the zero-rate baseline"
            .into(),
    }
}

/// F2a — jammer power vs max spacing error: RF-only CACC degrades to radar
/// gaps, hybrid SP-VLC holds, ACC is immune but always wide (§V-B, §VI-A.4).
pub fn fig_jamming_error(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let powers = sweep(effort.sweep_points, 0.0, 43.0);
    let arms: [(&str, CommsMode, ControllerKind); 4] = [
        ("CACC, RF only", CommsMode::DsrcOnly, ControllerKind::Cacc),
        (
            "CACC, hybrid VLC",
            CommsMode::HybridVlc,
            ControllerKind::Cacc,
        ),
        // The paper's [36] alternative: C-V2X sidelink redundancy in a
        // different band, untouched by an 802.11p jammer.
        (
            "CACC, hybrid C-V2X",
            CommsMode::HybridCv2x,
            ControllerKind::Cacc,
        ),
        ("ACC (no comms)", CommsMode::DsrcOnly, ControllerKind::Acc),
    ];
    let mut series = Vec::new();
    for (name, comms, controller) in arms {
        let mut points = Vec::new();
        for &p in &powers {
            let mut engine = Engine::new(
                base_scenario(&format!("F2/{name}/{p}"), effort)
                    .comms(comms)
                    .controller(controller)
                    .build(),
            );
            if p > 0.0 {
                engine.add_attack(Box::new(JammingAttack::new(JammingConfig {
                    start: effort.duration * 0.2,
                    power_dbm: p,
                    ..Default::default()
                })));
            }
            let s = engine.run();
            points.push((p, s.max_spacing_error));
        }
        series.push(Series {
            name: name.to_string(),
            points,
        });
    }
    Figure {
        id: "F2a".into(),
        title: "Jamming: max spacing error vs jammer power".into(),
        x_label: "jammer power (dBm, 0 = off)".into(),
        y_label: "max spacing error (m)".into(),
        series,
        expected_shape: "RF-only CACC error explodes to radar-fallback gaps beyond ~25 dBm; \
                         hybrid stays low; ACC flat (wide) regardless"
            .into(),
    }
}

/// F2b — jammer power vs leader→tail beacon delivery (PDR).
pub fn fig_jamming_pdr(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let powers = sweep(effort.sweep_points, 0.0, 43.0);
    let arms: [(&str, CommsMode); 2] = [
        ("RF only", CommsMode::DsrcOnly),
        ("hybrid VLC", CommsMode::HybridVlc),
    ];
    let mut series = Vec::new();
    for (name, comms) in arms {
        let mut points = Vec::new();
        for &p in &powers {
            let mut engine = Engine::new(
                base_scenario(&format!("F2b/{name}/{p}"), effort)
                    .comms(comms)
                    .build(),
            );
            if p > 0.0 {
                engine.add_attack(Box::new(JammingAttack::new(JammingConfig {
                    start: effort.duration * 0.2,
                    power_dbm: p,
                    ..Default::default()
                })));
            }
            let s = engine.run();
            points.push((p, s.tail_leader_age_mean));
        }
        series.push(Series {
            name: name.to_string(),
            points,
        });
    }
    Figure {
        id: "F2b".into(),
        title: "Jamming: leader-information age at the tail vs jammer power".into(),
        x_label: "jammer power (dBm, 0 = off)".into(),
        y_label: "mean leader-info age at tail (s; 10 = silent)".into(),
        series,
        expected_shape: "RF-only age saturates toward the silence cap with power; hybrid \
                         stays fresh (sub-second) via the optical relay chain"
            .into(),
    }
}

/// F3 — ghost count vs phantom roster members, with PKI admission and
/// VPD-ADA physical verification arms (§V-A.2).
pub fn fig_sybil(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let ghost_counts = sweep(effort.sweep_points, 0.0, 8.0);
    let arms: [&str; 3] = ["undefended", "pki", "vpd-ada"];
    let mut series = Vec::new();
    for arm in arms {
        let mut points = Vec::new();
        for &g in &ghost_counts {
            let ghosts = g.round() as usize;
            let mut builder = base_scenario(&format!("F3/{arm}/{ghosts}"), effort);
            if arm == "pki" {
                builder = builder.auth(AuthMode::Pki);
            }
            let mut engine = Engine::new(builder.build());
            if ghosts > 0 {
                engine.add_attack(Box::new(SybilAttack::new(SybilConfig {
                    ghost_count: ghosts,
                    start: effort.duration * 0.15,
                    ..Default::default()
                })));
            }
            if arm == "vpd-ada" {
                engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::strict())));
            }
            engine.run();
            let phantom =
                engine.maneuvers().roster().len() as f64 - engine.world().vehicles.len() as f64;
            points.push((g, phantom.max(0.0)));
        }
        series.push(Series {
            name: arm.to_string(),
            points,
        });
    }
    Figure {
        id: "F3".into(),
        title: "Sybil: phantom roster members vs ghost identities".into(),
        x_label: "ghost identities".into(),
        y_label: "phantom roster members at end of run".into(),
        series,
        expected_shape: "undefended tracks the ghost count (to the pending-join limit); PKI \
                         and VPD-ADA stay at zero"
            .into(),
    }
}

/// F4 — join-flood rate vs legitimate join latency, with the RSU gatekeeper
/// arm (§V-D, §VI-A.2).
pub fn fig_dos(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let rates = sweep(effort.sweep_points, 0.0, 200.0);
    let arms: [&str; 2] = ["undefended", "rsu-gatekeeper"];
    let mut series = Vec::new();
    for arm in arms {
        let mut points = Vec::new();
        for &rate in &rates {
            let mut builder = base_scenario(&format!("F4/{arm}/{rate}"), effort);
            if arm == "rsu-gatekeeper" {
                for i in 0..8 {
                    builder = builder.rsu((i as f64 * 300.0, 8.0));
                }
            }
            let mut engine = Engine::new(builder.build());
            if rate > 0.0 {
                engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig {
                    rate_per_second: rate,
                    start: effort.duration * 0.1,
                    ..Default::default()
                })));
            }
            engine.add_attack(Box::new(legit_joiner(effort.duration * 0.25)));
            if arm == "rsu-gatekeeper" {
                engine.add_defense(Box::new(RsuDefense::new(RsuConfig {
                    preregistered: vec![600],
                    ..Default::default()
                })));
            }
            let s = engine.run();
            let latency = engine
                .attacks()
                .iter()
                .find_map(|a| a.as_any().downcast_ref::<JoinerAgent>())
                .map(|j| {
                    let o = j.outcome();
                    if o.accepted {
                        o.accept_latency.unwrap_or(s.duration)
                    } else {
                        s.duration
                    }
                })
                .unwrap_or(s.duration);
            points.push((rate, latency));
        }
        series.push(Series {
            name: arm.to_string(),
            points,
        });
    }
    Figure {
        id: "F4".into(),
        title: "DoS join flood: legitimate join latency vs flood rate".into(),
        x_label: "flood rate (requests/s)".into(),
        y_label: "legit join latency (s; run length = starved)".into(),
        series,
        expected_shape: "undefended latency rises to starvation as the flood saturates the \
                         leader; the RSU gatekeeper keeps it near the no-flood value"
            .into(),
    }
}

/// F5 — forged gap-open injections vs headway efficiency loss, with signed
/// (PKI) and hybrid AND-validation arms (§V-A.3).
pub fn fig_maneuver(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let rates = sweep(effort.sweep_points, 0.0, 0.5);
    let arms: [&str; 3] = ["undefended", "pki", "hybrid-sp-vlc"];
    let mut series = Vec::new();
    for arm in arms {
        let mut points = Vec::new();
        for &rate in &rates {
            let mut builder = base_scenario(&format!("F5/{arm}/{rate}"), effort);
            match arm {
                "pki" => builder = builder.auth(AuthMode::Pki),
                "hybrid-sp-vlc" => builder = builder.comms(CommsMode::HybridVlc),
                _ => {}
            }
            let mut engine = Engine::new(builder.build());
            if rate > 0.0 {
                engine.add_attack(Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
                    forgery: ManeuverForgery::GapOpen {
                        slot: 2,
                        extra_gap: 30.0,
                    },
                    inject_at: effort.duration * 0.2,
                    repeat_period: 1.0 / rate,
                    ..Default::default()
                })));
            }
            if arm == "hybrid-sp-vlc" {
                engine.add_defense(Box::new(HybridConfirmDefense::new(HybridConfig::default())));
            }
            let s = engine.run();
            points.push((rate, s.mean_abs_spacing_error));
        }
        series.push(Series {
            name: arm.to_string(),
            points,
        });
    }
    Figure {
        id: "F5".into(),
        title: "Fake manoeuvre: headway efficiency loss vs forgery rate".into(),
        x_label: "forged gap-open rate (1/s)".into(),
        y_label: "mean |spacing error| (m)".into(),
        series,
        expected_shape: "undefended error grows to the phantom gap size; both signed and \
                         cross-channel-validated deployments ignore the forgeries"
            .into(),
    }
}

/// F6a — radar spoof bias vs minimum gap (safety margin), with the
/// control-algorithms arm (fusion guard + mitigation) (§V-G).
pub fn fig_sensor_spoof(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let biases = sweep(effort.sweep_points, 0.0, 15.0);
    let arms: [&str; 2] = ["undefended", "control-algorithms"];
    let mut series = Vec::new();
    for arm in arms {
        let mut points = Vec::new();
        for &bias in &biases {
            let mut engine =
                Engine::new(base_scenario(&format!("F6/{arm}/{bias}"), effort).build());
            if bias > 0.0 {
                engine.add_attack(Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
                    mode: SensorAttackMode::Spoof { bias },
                    start: effort.duration * 0.2,
                    ..Default::default()
                })));
            }
            if arm == "control-algorithms" {
                engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
                engine.add_defense(Box::new(
                    MitigationDefense::new(MitigationConfig::default()),
                ));
            }
            let s = engine.run();
            points.push((bias, s.min_gap.min(20.0)));
        }
        series.push(Series {
            name: arm.to_string(),
            points,
        });
    }
    Figure {
        id: "F6a".into(),
        title: "Radar spoofing: minimum gap vs injected bias".into(),
        x_label: "radar range bias (m)".into(),
        y_label: "minimum bumper gap (m; 0 = collision)".into(),
        series,
        expected_shape: "undefended min gap falls roughly linearly with bias, reaching \
                         contact near bias ≈ set-point; the fusion guard fails over to LiDAR \
                         and holds the margin"
            .into(),
    }
}

/// F6b — GPS walk-off drift rate vs VPD-ADA detection latency (§V-G).
pub fn fig_gps_spoof(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let rates = sweep(effort.sweep_points, 0.5, 4.0);
    let mut points = Vec::new();
    let mut poisoning = Vec::new();
    for &rate in &rates {
        let start = effort.duration * 0.2;
        let mut engine = Engine::new(base_scenario(&format!("F6b/{rate}"), effort).build());
        engine.add_attack(Box::new(GpsSpoofAttack::new(GpsSpoofConfig {
            drift_rate: rate,
            start,
            ..Default::default()
        })));
        engine.add_defense(Box::new(VpdAdaDefense::new(VpdAdaConfig::default())));
        engine.run();
        let d = engine.defenses()[0]
            .as_any()
            .downcast_ref::<VpdAdaDefense>()
            .unwrap();
        let latency = d
            .detection_latency(platoon_crypto::cert::PrincipalId(2), start)
            .unwrap_or(effort.duration);
        points.push((rate, latency));
        poisoning.push((rate, rate * latency));
    }
    Figure {
        id: "F6b".into(),
        title: "GPS walk-off: VPD-ADA detection latency vs drift rate".into(),
        x_label: "GPS drift rate (m/s)".into(),
        y_label: "detection latency (s)".into(),
        series: vec![
            Series {
                name: "detection latency".into(),
                points,
            },
            Series {
                name: "position error at detection (m)".into(),
                points: poisoning,
            },
        ],
        expected_shape: "latency falls as ~threshold/rate; the accumulated position error at \
                         detection stays near the ranging threshold regardless of rate"
            .into(),
    }
}

/// F7a — eavesdropper: plaintext beacons read per deployed key scheme
/// (§V-C; the confidentiality half of Table III "keys").
pub fn fig_eavesdrop(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let arms: [(&str, AuthMode); 3] = [
        ("plain", AuthMode::None),
        ("signed (PKI)", AuthMode::Pki),
        ("encrypted group key", AuthMode::EncryptedGroupMac),
    ];
    let mut series = Vec::new();
    for (name, auth) in arms {
        let mut engine = Engine::new(
            base_scenario(&format!("F7/{name}"), effort)
                .auth(auth)
                .build(),
        );
        engine.add_attack(Box::new(EavesdropAttack::new(EavesdropConfig::default())));
        engine.run();
        let e = engine.attacks()[0]
            .as_any()
            .downcast_ref::<EavesdropAttack>()
            .unwrap();
        let read_fraction = if e.frames_heard() == 0 {
            0.0
        } else {
            (e.beacons_read() + e.maneuvers_read()) as f64 / e.frames_heard() as f64
        };
        series.push(Series {
            name: name.to_string(),
            points: vec![(0.0, read_fraction)],
        });
    }
    Figure {
        id: "F7a".into(),
        title: "Eavesdropping: fraction of overheard frames readable as plaintext".into(),
        x_label: "(single point per arm)".into(),
        y_label: "readable fraction".into(),
        series,
        expected_shape: "plain and signed deployments leak ~everything (authentication is \
                         not encryption); the encrypted deployment leaks nothing"
            .into(),
    }
}

/// F7b — fading-channel key agreement: bit mismatch vs eavesdropper
/// distance (Li et al. \[5\]; no platoon sim involved).
pub fn fig_key_agreement(quick: bool) -> Figure {
    use platoon_crypto::key_agreement::{
        eavesdropper_correlation, run_agreement, FadingKeyAgreementConfig,
    };
    use rand::SeedableRng;

    let points = if quick { 4 } else { 8 };
    let distances = sweep(points, 0.05, 2.0);
    let mut legit = Vec::new();
    let mut eve = Vec::new();
    for &d in &distances {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2021);
        let out = run_agreement(
            &FadingKeyAgreementConfig {
                eavesdropper_correlation: eavesdropper_correlation(d),
                ..Default::default()
            },
            &mut rng,
        );
        legit.push((d, out.legitimate_mismatch()));
        eve.push((d, out.eavesdropper_mismatch()));
    }
    Figure {
        id: "F7b".into(),
        title: "Fading-channel key agreement: bit mismatch vs eavesdropper distance".into(),
        x_label: "eavesdropper distance (carrier wavelengths)".into(),
        y_label: "key bit mismatch rate".into(),
        series: vec![
            Series {
                name: "legitimate pair".into(),
                points: legit,
            },
            Series {
                name: "eavesdropper".into(),
                points: eve,
            },
        ],
        expected_shape: "legitimate mismatch stays low and flat; the eavesdropper's rises to \
                         ~0.5 (no knowledge) within about half a wavelength"
            .into(),
    }
}

/// F8 — impersonation: victim trust collapse vs forgery rate (§V-F).
pub fn fig_impersonation(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let rates = sweep(effort.sweep_points, 0.0, 20.0);
    let mut trust_points = Vec::new();
    let mut evict_points = Vec::new();
    for &rate in &rates {
        let mut engine = Engine::new(base_scenario(&format!("F8/{rate}"), effort).build());
        if rate > 0.0 {
            engine.add_attack(Box::new(ImpersonationAttack::new(ImpersonationConfig {
                rate,
                start: effort.duration * 0.3,
                duration: effort.duration * 0.4,
                ..Default::default()
            })));
        }
        engine.add_defense(Box::new(TrustDefense::new(TrustConfig::default())));
        engine.run();
        let t = engine.defenses()[0]
            .as_any()
            .downcast_ref::<TrustDefense>()
            .unwrap();
        let victim = platoon_crypto::cert::PrincipalId(1);
        trust_points.push((rate, t.trust_of(victim)));
        evict_points.push((
            rate,
            if t.evicted().iter().any(|(id, _)| *id == victim) {
                1.0
            } else {
                0.0
            },
        ));
    }
    Figure {
        id: "F8".into(),
        title: "Impersonation: the innocent victim's reputation vs forgery rate".into(),
        x_label: "forged beacons/s under the stolen identity".into(),
        y_label: "victim trust score (and eviction flag)".into(),
        series: vec![
            Series {
                name: "victim trust".into(),
                points: trust_points,
            },
            Series {
                name: "victim evicted (0/1)".into(),
                points: evict_points,
            },
        ],
        expected_shape: "trust near 1 with no forgeries, collapsing below the eviction \
                         threshold at any substantial rate — the paper's 'reputation damage \
                         for the innocent user'"
            .into(),
    }
}

/// F9 — malware spread probability vs platooning availability, with the
/// onboard-hardening arm (§V-H, §VI-A.5).
pub fn fig_malware(quick: bool) -> Figure {
    let effort = Effort::new(quick);
    let probs = sweep(effort.sweep_points, 0.0, 0.4);
    let arms: [&str; 2] = ["undefended", "onboard-hardening"];
    let mut series = Vec::new();
    for arm in arms {
        let mut points = Vec::new();
        for &p in &probs {
            let mut engine = Engine::new(base_scenario(&format!("F9/{arm}/{p}"), effort).build());
            if p > 0.0 {
                engine.add_attack(Box::new(MalwareAttack::new(MalwareConfig {
                    spread_prob: p,
                    infect_at: effort.duration * 0.1,
                    ..Default::default()
                })));
            }
            if arm == "onboard-hardening" {
                // Fleet-grade deployment: faster scanning and remediation
                // than the single-vehicle default.
                engine.add_defense(Box::new(OnboardDefense::new(OnboardConfig {
                    antivirus_detect_per_second: 0.5,
                    remediation_delay: 1.0,
                    ..Default::default()
                })));
            }
            let s = engine.run();
            points.push((p, s.service_down_fraction));
        }
        series.push(Series {
            name: arm.to_string(),
            points,
        });
    }
    Figure {
        id: "F9".into(),
        title: "Malware: platooning service downtime vs worm spread probability".into(),
        x_label: "per-second spread probability".into(),
        y_label: "fraction of run with a service down".into(),
        series,
        expected_shape: "undefended downtime saturates as the worm reaches the fleet; \
                         hardening (firewall + antivirus) keeps downtime low at all rates"
            .into(),
    }
}

/// F10 — the motivation curve: fuel and road-space savings vs platoon gap
/// (§I–II).
pub fn fig_motivation(quick: bool) -> Figure {
    use platoon_dynamics::fuel::{fuel_rate, PlatoonPosition};
    use platoon_dynamics::vehicle::VehicleParams;

    let points = if quick { 5 } else { 10 };
    let gaps = sweep(points, 5.0, 50.0);
    let params = VehicleParams::truck();
    let speed = 25.0;
    let solo = fuel_rate(&params, speed, 0.0, PlatoonPosition::Solo, 0.0);
    // Human-driven headway baseline for road-space: ~1.8 s at 25 m/s.
    let human_gap = 1.8 * speed;

    let mut fuel_saving = Vec::new();
    let mut space_saving = Vec::new();
    for &gap in &gaps {
        let follower = fuel_rate(&params, speed, 0.0, PlatoonPosition::Follower, gap);
        let leader = fuel_rate(&params, speed, 0.0, PlatoonPosition::Leader, gap);
        // 6-truck platoon: 1 leader + 5 followers.
        let platoon_rate = (leader + 5.0 * follower) / 6.0;
        fuel_saving.push((gap, (1.0 - platoon_rate / solo) * 100.0));
        let human_len = params.length + human_gap;
        let platoon_len = params.length + gap;
        space_saving.push((gap, (1.0 - platoon_len / human_len) * 100.0));
    }
    Figure {
        id: "F10".into(),
        title: "Motivation: platooning fuel and road-space savings vs gap".into(),
        x_label: "inter-vehicle gap (m)".into(),
        y_label: "saving vs solo/human driving (%)".into(),
        series: vec![
            Series {
                name: "fleet fuel saving".into(),
                points: fuel_saving,
            },
            Series {
                name: "road-space saving".into(),
                points: space_saving,
            },
        ],
        expected_shape: "both savings decay with gap: ~10-20% fuel and ~50%+ road space at \
                         10 m, approaching zero as gaps reach human headways"
            .into(),
    }
}

/// Every figure in DESIGN.md order.
pub fn all_figures(quick: bool) -> Vec<Figure> {
    vec![
        fig_string_stability(quick),
        fig_replay(quick),
        fig_jamming_error(quick),
        fig_jamming_pdr(quick),
        fig_sybil(quick),
        fig_dos(quick),
        fig_maneuver(quick),
        fig_sensor_spoof(quick),
        fig_gps_spoof(quick),
        fig_eavesdrop(quick),
        fig_key_agreement(quick),
        super::privacy::fig_pseudonym_privacy(quick),
        fig_impersonation(quick),
        fig_malware(quick),
        fig_motivation(quick),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ys(fig: &Figure, name: &str) -> Vec<f64> {
        fig.series_named(name)
            .unwrap_or_else(|| panic!("missing series {name} in {}", fig.id))
            .points
            .iter()
            .map(|p| p.1)
            .collect()
    }

    #[test]
    fn f0_substrate_validation_shape() {
        let fig = fig_string_stability(true);
        // The leader-feed CACC is the string-stable design point.
        for (freq, amp) in &fig.series_named("CACC").unwrap().points {
            assert!(
                *amp < 1.15,
                "CACC amplifies at {freq} Hz: {amp} (string stability lost)"
            );
        }
        // The other families stay bounded (their amplification pockets are
        // the expected physics, quantified further in ablation A4).
        for s in &fig.series {
            for (freq, amp) in &s.points {
                assert!(
                    amp.is_finite() && *amp < 2.0,
                    "{} wild at {freq} Hz: {amp}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn f1_replay_shape() {
        let fig = fig_replay(true);
        let undef = ys(&fig, "undefended");
        let ts = ys(&fig, "timestamp window");
        assert!(
            undef.last().unwrap() > &(3.0 * undef[0]),
            "replay should inflate energy with rate: {undef:?}"
        );
        assert!(
            ts.last().unwrap() < &(2.0 * ts[0].max(1.0)),
            "anti-replay should stay near baseline: {ts:?}"
        );
    }

    #[test]
    fn f2_jamming_shape() {
        let fig = fig_jamming_error(true);
        let rf = ys(&fig, "CACC, RF only");
        let hybrid = ys(&fig, "CACC, hybrid VLC");
        let cv2x = ys(&fig, "CACC, hybrid C-V2X");
        assert!(
            rf.last().unwrap() > &10.0,
            "jammed RF CACC opens wide: {rf:?}"
        );
        assert!(
            hybrid.last().unwrap() < &(0.5 * rf.last().unwrap()),
            "hybrid holds: {hybrid:?} vs {rf:?}"
        );
        assert!(
            cv2x.last().unwrap() < &(0.5 * rf.last().unwrap()),
            "C-V2X redundancy holds: {cv2x:?} vs {rf:?}"
        );
        let age = fig_jamming_pdr(true);
        let rf_age = ys(&age, "RF only");
        let hybrid_age = ys(&age, "hybrid VLC");
        assert!(
            rf_age[0] < 0.5 && rf_age.last().unwrap() > &5.0,
            "{rf_age:?}"
        );
        assert!(hybrid_age.last().unwrap() < &1.0, "{hybrid_age:?}");
    }

    #[test]
    fn f3_sybil_shape() {
        let fig = fig_sybil(true);
        let undef = ys(&fig, "undefended");
        let pki = ys(&fig, "pki");
        assert!(
            undef.last().unwrap() >= &2.0,
            "ghosts infiltrate: {undef:?}"
        );
        assert!(pki.iter().all(|&v| v == 0.0), "PKI blocks ghosts: {pki:?}");
    }

    #[test]
    fn f4_dos_shape() {
        let fig = fig_dos(true);
        let undef = ys(&fig, "undefended");
        let rsu = ys(&fig, "rsu-gatekeeper");
        assert!(
            undef.last().unwrap() > &(3.0 * undef[0].max(0.5)),
            "flood delays/starves: {undef:?}"
        );
        assert!(
            rsu.last().unwrap() < &(3.0 * rsu[0].max(0.5)),
            "gatekeeper protects: {rsu:?}"
        );
    }

    #[test]
    fn f6_sensor_spoof_shape() {
        let fig = fig_sensor_spoof(true);
        let undef = ys(&fig, "undefended");
        let defended = ys(&fig, "control-algorithms");
        assert!(
            undef.last().unwrap() < &3.0,
            "large bias erodes the gap: {undef:?}"
        );
        assert!(
            defended.last().unwrap() > &(undef.last().unwrap() + 2.0),
            "fusion failover holds the margin: {defended:?} vs {undef:?}"
        );
    }

    #[test]
    fn f7_confidentiality_shape() {
        let fig = fig_eavesdrop(true);
        let plain = ys(&fig, "plain")[0];
        let signed = ys(&fig, "signed (PKI)")[0];
        let enc = ys(&fig, "encrypted group key")[0];
        assert!(plain > 0.9, "plain leaks: {plain}");
        assert!(signed > 0.9, "signatures do not encrypt: {signed}");
        assert!(enc < 0.05, "encryption blinds the listener: {enc}");

        let ka = fig_key_agreement(true);
        let legit = ys(&ka, "legitimate pair");
        let eve = ys(&ka, "eavesdropper");
        assert!(legit.iter().all(|&v| v < 0.15));
        assert!(eve.last().unwrap() > &0.35);
    }

    #[test]
    fn f9_malware_shape() {
        let fig = fig_malware(true);
        let undef = ys(&fig, "undefended");
        let hard = ys(&fig, "onboard-hardening");
        assert!(
            undef.last().unwrap() > &0.3,
            "worm takes the fleet down: {undef:?}"
        );
        // "Any vehicle down" is a harsh availability metric; at extreme
        // spread rates hardening still lowers it, and at moderate rates it
        // nearly eliminates downtime.
        assert!(
            hard.last().unwrap() < &(undef.last().unwrap() - 0.1),
            "hardening improves availability: {hard:?} vs {undef:?}"
        );
        assert!(
            hard[1] < 0.5 * undef[1].max(0.2),
            "at moderate spread hardening nearly eliminates downtime: {hard:?} vs {undef:?}"
        );
    }

    #[test]
    fn f10_motivation_shape() {
        let fig = fig_motivation(true);
        let fuel = ys(&fig, "fleet fuel saving");
        assert!(fuel[0] > fuel[fuel.len() - 1], "saving decays with gap");
        assert!(
            fuel[0] > 5.0 && fuel[0] < 40.0,
            "close-gap saving plausible: {}",
            fuel[0]
        );
        let space = ys(&fig, "road-space saving");
        assert!(
            space[0] > 40.0,
            "road-space saving large at close gaps: {}",
            space[0]
        );
    }
}
