//! Experiment R: robustness — detection quality under benign faults.
//!
//! Table IV measures how well the online detector catches attacks on a
//! *clean* platoon. The paper's open challenges (§VI-B) — sharpened by
//! Ghosh et al.'s detection-isolation scheme for changing driving
//! environments — ask the harder operational question: what happens to
//! those numbers when the environment itself degrades? A detector whose
//! false-positive rate explodes in rain fade, or that stops seeing an
//! impersonator because one radar blinked, is not deployable.
//!
//! This experiment sweeps the `platoon-faults` taxonomy (plus a no-fault
//! control) against a benign arm and a representative attack arm, with the
//! default detector pipeline attached. It doubles as the crash-isolation
//! proof for the harness: the grid runs through
//! [`Batch::run_outcomes`], so a panicking or hung cell (see
//! [`run_with`]'s `inject_panic`) is recorded as a failed job in the
//! canonical document instead of taking the batch down, and every other
//! cell still reports.

use super::common::{base_scenario, make_attack, Effort, EXPERIMENT_BASE_SEED};
use super::table4::{profile_for, truth_for};
use crate::tables::{num, TextTable};
use platoon_faults::{
    BurstPacketLoss, ClockSkew, FaultWindow, NoiseFloorRamp, RsuBlackout, SensorOutage,
};
use platoon_sim::fault::Fault;
use platoon_sim::harness::{golden, json, Batch};
use platoon_sim::prelude::{per_frame_ratio, score_alerts, DetectionSummary, Engine, RunSummary};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Fault arms swept by the experiment ("none" is the clean control).
pub const FAULTS: [&str; 6] = [
    "none",
    "burst-loss",
    "noise-ramp",
    "sensor-outage",
    "clock-skew",
    "rsu-blackout",
];

/// Attack arms: the false-positive floor and a reliably-detected attack
/// whose degradation is worth watching.
pub const ATTACKS: [&str; 2] = ["benign", "impersonation"];

/// Independent seeds per (fault, attack) cell.
pub const SEEDS_PER_ARM: u64 = 2;

/// The canonical fault for a named arm, sized relative to the run length.
/// `None` for the clean control.
pub fn make_fault(name: &str, effort: Effort) -> Option<Box<dyn Fault>> {
    let d = effort.duration;
    match name {
        "none" => None,
        "burst-loss" => Some(Box::new(BurstPacketLoss::new(
            vec![FaultWindow::new(0.3 * d, 0.55 * d)],
            25.0,
        ))),
        "noise-ramp" => Some(Box::new(NoiseFloorRamp::new(0.25 * d, 0.6, 12.0))),
        "sensor-outage" => Some(Box::new(SensorOutage::radar(
            2,
            vec![
                FaultWindow::new(0.3 * d, 0.5 * d),
                FaultWindow::new(0.65 * d, 0.75 * d),
            ],
        ))),
        "clock-skew" => Some(Box::new(ClockSkew::new(5, 0.25 * d, 2.0))),
        "rsu-blackout" => Some(Box::new(RsuBlackout::new(vec![FaultWindow::new(
            0.3 * d,
            0.6 * d,
        )]))),
        other => panic!("unknown fault arm {other}"),
    }
}

/// What one grid cell reports: the scored alert stream plus the full run
/// summary (the safety side of "degrades gracefully").
#[derive(Clone, Debug, PartialEq)]
pub struct RobustnessCell {
    /// Detection quality against ground truth.
    pub detection: DetectionSummary,
    /// The underlying run.
    pub summary: RunSummary,
}

/// Harness job body: one (fault, attack, seed) run with detectors attached.
pub fn robustness_arm(fault: &str, attack: &str, effort: Effort, seed: u64) -> RobustnessCell {
    let label = format!("{fault}/{attack}");
    let mut builder = base_scenario(&label, effort).seed(seed);
    if fault == "rsu-blackout" {
        // Give the blackout infrastructure to take away.
        builder = builder.rsu((150.0, 8.0)).rsu((450.0, 8.0));
    }
    let mut engine = Engine::new(builder.build());
    if let Some(f) = make_fault(fault, effort) {
        engine.add_fault(f);
    }
    if attack != "benign" {
        engine.add_attack(make_attack(attack, effort));
    }
    engine.attach_detector_config(profile_for("default"));
    let summary = engine.run();
    let truth = truth_for(attack, effort, &engine);
    RobustnessCell {
        detection: score_alerts(engine.alerts(), &truth),
        summary,
    }
}

/// One row of the robustness table: a (fault, attack) cell aggregated over
/// the seeds whose jobs completed.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RobustnessRow {
    /// Fault arm name ("none" for the clean control).
    pub fault: String,
    /// Attack arm name ("benign" for the false-positive floor).
    pub attack: String,
    /// Seeds whose jobs completed and were aggregated.
    pub runs: u64,
    /// Seeds whose jobs failed (panic / blown budget) — excluded from the
    /// means, never silently absorbed into them.
    pub failed_runs: u64,
    /// Fraction of completed runs in which the attack was detected
    /// (canonical NaN when no run completed).
    pub detection_rate: f64,
    /// Median seconds from attack start to first true positive
    /// (`f64::INFINITY` when the median run never detects).
    pub median_latency_s: f64,
    /// Mean false positives per completed run.
    pub false_positives_per_run: f64,
    /// Mean per-sender attribution accuracy over runs that attributed
    /// anything (`f64::NAN` when none did).
    pub attribution_accuracy: f64,
    /// Mean minimum inter-vehicle gap (metres) over completed runs.
    pub mean_min_gap: f64,
    /// Total collisions across completed runs.
    pub collisions: u64,
}

fn aggregate(fault: &str, attack: &str, per_arm: u64, cells: &[RobustnessCell]) -> RobustnessRow {
    let runs = cells.len() as u64;
    let detected = cells.iter().filter(|c| c.detection.detected).count();
    let median_latency_s = if cells.is_empty() {
        f64::NAN
    } else {
        let mut latencies: Vec<f64> = cells
            .iter()
            .map(|c| c.detection.first_detection_latency)
            .collect();
        latencies.sort_by(f64::total_cmp);
        latencies[latencies.len() / 2]
    };
    let attributed: Vec<f64> = cells
        .iter()
        .map(|c| c.detection.attribution_accuracy)
        .filter(|a| !a.is_nan())
        .collect();
    RobustnessRow {
        fault: fault.to_string(),
        attack: attack.to_string(),
        runs,
        failed_runs: per_arm - runs,
        // All means run through `per_frame_ratio`: when a crash-isolated arm
        // loses every run the denominator is genuinely zero, and the row
        // must carry the canonical "nan" rather than a platform NaN or ∞.
        detection_rate: per_frame_ratio(detected as f64, runs),
        median_latency_s,
        false_positives_per_run: per_frame_ratio(
            cells
                .iter()
                .map(|c| c.detection.false_positives as f64)
                .sum(),
            runs,
        ),
        attribution_accuracy: per_frame_ratio(attributed.iter().sum(), attributed.len() as u64),
        mean_min_gap: per_frame_ratio(cells.iter().map(|c| c.summary.min_gap).sum(), runs),
        collisions: cells.iter().map(|c| c.summary.collisions as u64).sum(),
    }
}

/// A completed robustness grid: aggregated rows plus every failed job.
#[derive(Clone, Debug, PartialEq)]
pub struct RobustnessReport {
    /// One row per (fault, attack) cell, fault-major order.
    pub rows: Vec<RobustnessRow>,
    /// `(label, reason)` for every job that did not complete.
    pub failed_jobs: Vec<(String, String)>,
}

/// Runs the robustness grid with explicit worker count and, optionally, a
/// deliberately panicking job appended to the batch.
///
/// The injected job (label `inject/panic`) is the CI proof that the harness
/// is crash-isolated: the batch must still exit cleanly, report every real
/// cell, and record the failure under `failed_jobs` in the canonical
/// document. It is appended *after* the grid jobs, so the positional
/// aggregation of real arms is unaffected.
pub fn run_with(quick: bool, workers: usize, inject_panic: bool) -> RobustnessReport {
    let effort = Effort::new(quick);
    let mut batch: Batch<RobustnessCell> = Batch::new(EXPERIMENT_BASE_SEED);
    for fault in FAULTS {
        for attack in ATTACKS {
            for s in 0..SEEDS_PER_ARM {
                batch.push_with_seed(
                    format!("{fault}/{attack}/s{s}"),
                    EXPERIMENT_BASE_SEED + s,
                    move |seed| robustness_arm(fault, attack, effort, seed),
                );
            }
        }
    }
    if inject_panic {
        batch.push("inject/panic", |_seed| -> RobustnessCell {
            panic!("deliberately injected panic (crash-isolation check)")
        });
    }
    let entries = batch.run_outcomes(workers);

    let per_arm = SEEDS_PER_ARM as usize;
    let mut rows = Vec::new();
    for (fi, fault) in FAULTS.iter().enumerate() {
        for (ai, attack) in ATTACKS.iter().enumerate() {
            let base = (fi * ATTACKS.len() + ai) * per_arm;
            let cells: Vec<RobustnessCell> = entries[base..base + per_arm]
                .iter()
                .filter_map(|e| e.value.as_ok().cloned())
                .collect();
            rows.push(aggregate(fault, attack, SEEDS_PER_ARM, &cells));
        }
    }
    let failed_jobs = entries
        .iter()
        .filter_map(|e| e.value.failure().map(|r| (e.label.clone(), r.to_string())))
        .collect();
    RobustnessReport { rows, failed_jobs }
}

/// Runs the grid at default width with no injected failures.
pub fn run(quick: bool) -> RobustnessReport {
    run_with(quick, platoon_sim::harness::default_workers(), false)
}

/// Canonical JSON rendering — the golden-snapshot document. Exercises the
/// writer's non-finite encodings (benign arms never detect, so medians are
/// `"inf"` and attributions `"nan"`) and renders failed jobs explicitly.
pub fn to_canonical_json(report: &RobustnessReport) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_u64("base_seed", EXPERIMENT_BASE_SEED);
        w.field_u64("seeds_per_arm", SEEDS_PER_ARM);
        w.field_arr("rows", |w| {
            for r in &report.rows {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("fault", &r.fault);
                        w.field_str("attack", &r.attack);
                        w.field_u64("runs", r.runs);
                        w.field_u64("failed_runs", r.failed_runs);
                        w.field_f64("detection_rate", r.detection_rate);
                        w.field_f64("median_latency_s", r.median_latency_s);
                        w.field_f64("false_positives_per_run", r.false_positives_per_run);
                        w.field_f64("attribution_accuracy", r.attribution_accuracy);
                        w.field_f64("mean_min_gap", r.mean_min_gap);
                        w.field_u64("collisions", r.collisions);
                    })
                });
            }
        });
        w.field_arr("failed_jobs", |w| {
            for (label, reason) in &report.failed_jobs {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("label", label);
                        w.field_str("error", reason);
                    })
                });
            }
        });
    });
    w.finish()
}

/// Renders the robustness table.
pub fn render(report: &RobustnessReport) -> TextTable {
    let mut t = TextTable::new(
        "Robustness (measured) — detection quality under benign faults (default pipeline)",
        &[
            "Fault",
            "Attack",
            "Runs",
            "Failed",
            "Detection rate",
            "Median latency (s)",
            "FP/run",
            "Attribution",
            "Min gap (m)",
            "Collisions",
        ],
    );
    for r in &report.rows {
        t.row(vec![
            r.fault.clone(),
            r.attack.clone(),
            r.runs.to_string(),
            r.failed_runs.to_string(),
            num(r.detection_rate, 2),
            if r.median_latency_s.is_finite() {
                num(r.median_latency_s, 1)
            } else {
                "inf".to_string()
            },
            num(r.false_positives_per_run, 1),
            if r.attribution_accuracy.is_nan() {
                "-".to_string()
            } else {
                num(r.attribution_accuracy, 2)
            },
            num(r.mean_min_gap, 1),
            r.collisions.to_string(),
        ]);
    }
    t
}

/// Writes `ROBUSTNESS_<label>.json` into `out_dir`.
fn write_report_file(
    report: &RobustnessReport,
    label: &str,
    out_dir: &Path,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("ROBUSTNESS_{label}.json"));
    std::fs::write(&path, to_canonical_json(report))?;
    Ok(path)
}

/// Entry point for the `robustness` subcommand (root binary and the bench
/// report binary). Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut quick = false;
    let mut workers = platoon_sim::harness::default_workers();
    let mut out_dir = PathBuf::from(".");
    let mut check_golden: Option<PathBuf> = None;
    let mut inject_panic = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--quick" => quick = true,
                "--workers" => {
                    workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--check-golden" => check_golden = Some(PathBuf::from(value("--check-golden")?)),
                "--inject-panic" => inject_panic = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: robustness [--quick] [--workers N] [--out DIR]\n\
                         \x20                 [--check-golden PATH] [--inject-panic]\n\
                         \x20 --quick          short runs (the CI smoke grid)\n\
                         \x20 --workers N      worker threads (default: available parallelism)\n\
                         \x20 --out DIR        where ROBUSTNESS_<label>.json is written (default: .)\n\
                         \x20 --check-golden P snapshot-match the document against P\n\
                         \x20 --inject-panic   append a deliberately panicking job (the batch\n\
                         \x20                  must still exit 0 with the failure recorded)"
                    );
                    return Err(String::new()); // handled: exit 0 below
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    let label = if quick { "quick" } else { "full" };
    eprintln!(
        "running robustness grid ({label} effort, {workers} workers{})...",
        if inject_panic {
            ", with an injected panic"
        } else {
            ""
        }
    );
    let report = run_with(quick, workers, inject_panic);
    println!("{}", render(&report).render());
    for (job, reason) in &report.failed_jobs {
        eprintln!("failed job {job:?}: {reason}");
    }
    match write_report_file(&report, label, &out_dir) {
        Ok(path) => eprintln!(
            "wrote {} ({} rows, {} failed job(s))",
            path.display(),
            report.rows.len(),
            report.failed_jobs.len()
        ),
        Err(e) => {
            eprintln!("error: writing report: {e}");
            return 1;
        }
    }

    if let Some(path) = check_golden {
        match golden::check(
            &path,
            &to_canonical_json(&report),
            golden::Tolerance::snapshot(),
        ) {
            Ok(golden::Outcome::Match) => eprintln!("document matches {}", path.display()),
            Ok(golden::Outcome::Updated) => eprintln!("golden written: {}", path.display()),
            Err(diff) => {
                eprintln!("robustness drift:\n{diff}");
                return 1;
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::harness::golden::Tolerance;

    fn golden_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/robustness_quick.json")
    }

    #[test]
    fn quick_grid_degrades_gracefully_and_matches_golden() {
        let report = run(true);
        assert_eq!(report.rows.len(), FAULTS.len() * ATTACKS.len());
        assert!(report.failed_jobs.is_empty(), "{:?}", report.failed_jobs);
        for r in &report.rows {
            assert_eq!(r.runs, SEEDS_PER_ARM, "{}/{}", r.fault, r.attack);
            assert_eq!(r.failed_runs, 0);
            assert_eq!(
                r.collisions, 0,
                "benign faults must not crash trucks: {}/{}",
                r.fault, r.attack
            );
            assert!(
                r.mean_min_gap > 0.5,
                "{}/{} kept unsafe gaps: {}",
                r.fault,
                r.attack,
                r.mean_min_gap
            );
            if r.attack == "benign" {
                assert_eq!(
                    r.detection_rate, 0.0,
                    "a benign run can never be 'detected' ({})",
                    r.fault
                );
            }
        }
        let clean = report
            .rows
            .iter()
            .find(|r| r.fault == "none" && r.attack == "impersonation")
            .unwrap();
        assert!(
            clean.detection_rate > 0.0,
            "the control arm must detect the impersonator"
        );
        // Graceful, not catastrophic: the attack stays detectable in the
        // majority of degraded environments.
        let degraded_detecting = report
            .rows
            .iter()
            .filter(|r| r.attack == "impersonation" && r.fault != "none")
            .filter(|r| r.detection_rate > 0.0)
            .count();
        assert!(
            degraded_detecting >= 3,
            "detection collapsed under faults: only {degraded_detecting}/5 arms still detect"
        );
        golden::assert_matches(
            &golden_path(),
            &to_canonical_json(&report),
            Tolerance::snapshot(),
        );
    }

    #[test]
    fn report_is_worker_count_invariant_and_tolerates_injected_panics() {
        let serial = run_with(true, 1, true);
        let parallel = run_with(true, 3, true);
        assert_eq!(
            to_canonical_json(&serial),
            to_canonical_json(&parallel),
            "robustness document must be byte-identical across worker counts"
        );
        assert_eq!(serial.failed_jobs.len(), 1);
        assert_eq!(serial.failed_jobs[0].0, "inject/panic");
        assert!(serial.failed_jobs[0].1.contains("deliberately injected"));
        // The injected crash must not leak into any aggregated arm.
        for r in &serial.rows {
            assert_eq!(r.runs, SEEDS_PER_ARM, "{}/{}", r.fault, r.attack);
            assert_eq!(r.failed_runs, 0);
        }
        let text = to_canonical_json(&serial);
        assert!(text.contains("\"label\": \"inject/panic\""), "{text}");
        assert!(text.contains("deliberately injected"), "{text}");
    }
}
