//! Experiment T3: Table III backed by measurements.
//!
//! For every (mechanism, attack) pair the paper's Table III claims the
//! mechanism mitigates, run the attack with and without the mechanism and
//! report the **mitigation factor** — defended impact divided by undefended
//! impact (lower is better; 1.0 = no effect).

use super::common::{arm_outcome, ArmOutcome, Effort, EXPERIMENT_BASE_SEED};
use crate::tables::{num, TextTable};
use platoon_sim::harness::Batch;
use serde::Serialize;
use std::collections::HashMap;

/// Measured result for one (mechanism, attack) cell.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Table3Cell {
    /// Mechanism machine name.
    pub mechanism: String,
    /// Attack machine name.
    pub attack: String,
    /// Undefended impact.
    pub undefended: f64,
    /// Defended impact.
    pub defended: f64,
}

impl Table3Cell {
    /// Defended ÷ undefended impact (0 = fully mitigated, 1 = no effect).
    pub fn mitigation_factor(&self) -> f64 {
        if self.undefended.abs() < 1e-9 {
            return if self.defended.abs() < 1e-9 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        self.defended / self.undefended
    }
}

/// The flattened Table III claim matrix: every `(mechanism, attack,
/// variant)` triple the experiment measures, in row order. `variant` is the
/// mechanism actually instantiated (`mechanism_variant`). Public so the
/// job service can enumerate the grid without re-deriving the claim logic.
pub fn pairs() -> Vec<(String, String, String)> {
    let mut pairs = Vec::new();
    for mech in platoon_defense::registry::catalog() {
        for attack in mech.mitigates {
            pairs.push((
                mech.name.to_string(),
                attack.to_string(),
                mechanism_variant(mech.name, attack),
            ));
        }
        // The "keys" row also claims eavesdropping protection (encryption).
        if mech.name == "keys" && !mech.mitigates.contains(&"eavesdrop") {
            pairs.push((
                "keys".to_string(),
                "eavesdrop".to_string(),
                "keys-encrypted".to_string(),
            ));
        }
    }
    pairs
}

/// The distinct attacks of [`pairs`], in first-appearance order — each
/// contributes exactly one undefended arm to the batch.
pub fn distinct_attacks() -> Vec<String> {
    let mut attacks: Vec<String> = Vec::new();
    for (_, attack, _) in pairs() {
        if !attacks.contains(&attack) {
            attacks.push(attack);
        }
    }
    attacks
}

/// Mechanism override for specific pairs where the generic mapping needs a
/// variant (e.g. confidentiality requires the encrypting key mode).
fn mechanism_variant(mechanism: &str, attack: &str) -> String {
    match (mechanism, attack) {
        ("keys", "eavesdrop") => "keys-encrypted".to_string(),
        // Control algorithms split into detection (VPD-ADA [10]) and
        // resilience ([7]); replay and insider FDI are the resilience cases
        // (their forged streams carry honest identities, so eviction-style
        // detection would trade the attack for radar fallback).
        ("control-algorithms", "replay") | ("control-algorithms", "insider-fdi") => {
            "control-mitigation".to_string()
        }
        _ => mechanism.to_string(),
    }
}

/// Runs the full Table III matrix.
///
/// The (mechanism, attack) pair list is flattened into one harness batch:
/// every *distinct* attack contributes a single undefended arm (the serial
/// driver re-ran it once per mechanism — deduplicating removes ~40% of the
/// runs) and every pair contributes one defended arm. Every arm pins the
/// canonical [`EXPERIMENT_BASE_SEED`], so the matrix keeps the published
/// numbers, is identical for any worker count, and the undefended labels
/// match Table II's for cross-table consistency.
pub fn run(quick: bool) -> Vec<Table3Cell> {
    let effort = Effort::new(quick);

    // Flatten the claim matrix first, so the batch can be built in one pass.
    let pairs = pairs();
    let attacks = distinct_attacks();

    let mut batch: Batch<ArmOutcome> = Batch::new(EXPERIMENT_BASE_SEED);
    for attack in &attacks {
        let attack = attack.clone();
        batch.push_with_seed(
            format!("{attack}/undefended"),
            EXPERIMENT_BASE_SEED,
            move |seed| arm_outcome(&attack, None, effort, seed),
        );
    }
    for (_, attack, variant) in &pairs {
        let (attack, variant) = (attack.clone(), variant.clone());
        batch.push_with_seed(
            format!("{attack}/{variant}"),
            EXPERIMENT_BASE_SEED,
            move |seed| arm_outcome(&attack, Some(&variant), effort, seed),
        );
    }
    let entries = batch.run(platoon_sim::harness::default_workers());

    let undefended: HashMap<&str, f64> = attacks
        .iter()
        .zip(&entries)
        .map(|(attack, entry)| (attack.as_str(), entry.value.impact))
        .collect();
    pairs
        .iter()
        .zip(&entries[attacks.len()..])
        .map(|((mech, attack, _), defended)| Table3Cell {
            mechanism: mech.to_string(),
            attack: attack.to_string(),
            undefended: undefended[attack.as_str()],
            defended: defended.value.impact,
        })
        .collect()
}

/// Renders the measured Table III.
pub fn render(cells: &[Table3Cell]) -> TextTable {
    let mut t = TextTable::new(
        "Table III (measured) — mechanism × attack mitigation factors (defended/undefended; lower is better)",
        &["Mechanism", "Attack", "Undefended", "Defended", "Mitigation factor"],
    );
    for c in cells {
        t.row(vec![
            c.mechanism.clone(),
            c.attack.clone(),
            num(c.undefended, 2),
            num(c.defended, 2),
            num(c.mitigation_factor(), 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pairs for which the mechanism is expected to be strongly effective
    /// (mitigation factor well below 1). Some claimed pairs in the paper are
    /// weaker (e.g. PKI vs replay without freshness would be 1.0 — our
    /// "keys" arm includes anti-replay, so it is strong).
    const STRONG_PAIRS: &[(&str, &str)] = &[
        ("keys", "replay"),
        ("keys", "sybil"),
        ("keys", "fake-maneuver"),
        ("keys", "impersonation"),
        ("keys", "eavesdrop"),
        ("keys", "dos-join-flood"),
        ("rsu-gatekeeper", "dos-join-flood"),
        ("rsu-gatekeeper", "sybil"),
        // NOT listed: (rsu-gatekeeper, impersonation). The RSU behaviour
        // monitor *detects* the impersonated stream (see the defense tests)
        // but inline mitigation is impossible without knowing which frame
        // is genuine — the remedy is TA revocation, i.e. the "keys" row.
        // The matrix reports its honest ≈1.0 factor.
        ("control-algorithms", "replay"),
        ("hybrid-sp-vlc", "jamming"),
        ("hybrid-sp-vlc", "fake-maneuver"),
        ("onboard-hardening", "malware"),
    ];

    #[test]
    fn strong_pairs_mitigate_substantially() {
        let cells = run(true);
        for (mech, attack) in STRONG_PAIRS {
            let cell = cells
                .iter()
                .find(|c| c.mechanism == *mech && c.attack == *attack)
                .unwrap_or_else(|| panic!("missing cell {mech}×{attack}"));
            assert!(
                cell.mitigation_factor() < 0.6,
                "{mech} vs {attack}: factor {} (u {}, d {})",
                cell.mitigation_factor(),
                cell.undefended,
                cell.defended
            );
        }
    }

    #[test]
    fn matrix_covers_every_claimed_pair() {
        let cells = run(true);
        for mech in platoon_defense::registry::catalog() {
            for attack in mech.mitigates {
                assert!(
                    cells
                        .iter()
                        .any(|c| c.mechanism == mech.name && c.attack == *attack),
                    "missing {0}×{attack}",
                    mech.name
                );
            }
        }
        let rendered = render(&cells).render();
        assert!(rendered.contains("Mitigation factor"));
    }
}
