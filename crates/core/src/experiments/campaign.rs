//! The campaign evaluation cell: one tuned-attack candidate scored
//! against the Table IV detection pipeline.
//!
//! The adversarial campaign (crates/campaign) searches each attack's
//! [`AttackParams`] space for *stealth-optimal* configurations — parameter
//! assignments that keep the online detector quiet while still damaging
//! the platoon. This module is the shared cell both executors run: the
//! in-process batch path and the `platoon-server` job service
//! (`JobSpec::Campaign`) call [`evaluate_candidate`] and serialise the
//! result through the same canonical document, so a cached server result
//! is byte-identical to a local one.
//!
//! Scoring is fixed and documented here, not in the driver:
//!
//! * **stealth oracle** ([`CandidateOutcome::detection_score`], minimise) —
//!   `5·detected + true_positives` against the *default* Table IV pipeline,
//!   so "ever caught at all" dominates and sustained alarm volume breaks
//!   ties;
//! * **payoff** ([`CandidateOutcome::damage`], maximise) — the attack's own
//!   Table II/III impact scalar plus the safety terms every attack shares:
//!   collisions (heavily weighted), emergency-braking exposure (time-to-
//!   collision under the 2 s AEB trigger band), and safety-margin erosion
//!   (bumper gap pushed under 10 m).

use super::common::{base_scenario, brake_profile, impact_of, legit_joiner, Effort};
use super::table4::profile_for;
use platoon_attacks::prelude::AttackParams;
use platoon_crypto::cert::PrincipalId;
use platoon_sim::harness::json::{self, Value};
use platoon_sim::prelude::{score_alerts, Engine, TruthLabels};

/// Collision weight in [`CandidateOutcome::damage`] — one crash outweighs
/// any continuous-metric gain.
pub const COLLISION_WEIGHT: f64 = 100.0;

/// The TTC band under which an AEB would have fired (seconds).
pub const AEB_TTC_S: f64 = 2.0;

/// The bumper gap under which spacing is a violation (metres).
pub const SAFE_GAP_M: f64 = 10.0;

/// Detection weight for "was the attack detected at all" in
/// [`CandidateOutcome::detection_score`].
pub const DETECTED_WEIGHT: f64 = 5.0;

/// Everything the campaign needs to know about one evaluated candidate.
///
/// The struct stores raw measurements; the two campaign objectives are
/// derived ([`detection_score`](Self::detection_score),
/// [`damage`](Self::damage)) so the scoring formula lives in exactly one
/// place.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateOutcome {
    /// Whether the default pipeline detected the attack at all.
    pub detected: bool,
    /// True positives scored against ground truth.
    pub true_positives: u64,
    /// False positives (benign-floor noise plus misattributions).
    pub false_positives: u64,
    /// Total alerts raised.
    pub alerts: u64,
    /// Seconds from attack start to first true positive (∞ if never).
    pub latency_s: f64,
    /// The attack's own Table II impact scalar
    /// ([`super::common::impact_of`] units, per attack).
    pub impact: f64,
    /// Collisions observed.
    pub collisions: u64,
    /// Minimum bumper gap observed, metres.
    pub min_gap: f64,
    /// Minimum time-to-collision observed, seconds (∞ if never closing).
    pub min_ttc: f64,
    /// Maximum absolute spacing error, metres.
    pub max_spacing_error: f64,
}

impl CandidateOutcome {
    /// The stealth objective (minimise): detection presence, heavily
    /// weighted, plus the sustained true-positive volume, plus a
    /// timeliness term — `1/(1+latency)` — so that *delaying* detection
    /// counts as stealth even when detection itself is inevitable (the
    /// same latency axis Table IV reports as a first-class quality
    /// metric). An undetected run scores exactly 0.
    pub fn detection_score(&self) -> f64 {
        let timeliness = if self.latency_s.is_finite() {
            1.0 / (1.0 + self.latency_s.max(0.0))
        } else {
            0.0
        };
        DETECTED_WEIGHT * (self.detected as u64 as f64) + self.true_positives as f64 + timeliness
    }

    /// The payoff objective (maximise): per-attack impact plus the shared
    /// safety terms (collisions, AEB-band TTC exposure, safety-margin
    /// erosion).
    pub fn damage(&self) -> f64 {
        self.impact
            + COLLISION_WEIGHT * self.collisions as f64
            + (AEB_TTC_S - self.min_ttc).max(0.0)
            + (SAFE_GAP_M - self.min_gap).max(0.0)
    }

    /// Writes the measurement fields through an existing writer (the
    /// campaign document embeds candidates inside larger objects).
    pub fn write_fields(&self, w: &mut json::Writer) {
        w.field_bool("detected", self.detected);
        w.field_u64("true_positives", self.true_positives);
        w.field_u64("false_positives", self.false_positives);
        w.field_u64("alerts", self.alerts);
        w.field_f64("latency_s", self.latency_s);
        w.field_f64("impact", self.impact);
        w.field_u64("collisions", self.collisions);
        w.field_f64("min_gap", self.min_gap);
        w.field_f64("min_ttc", self.min_ttc);
        w.field_f64("max_spacing_error", self.max_spacing_error);
        w.field_f64("detection_score", self.detection_score());
        w.field_f64("damage", self.damage());
    }

    /// Decodes the fields written by [`write_fields`](Self::write_fields)
    /// from a parsed object (derived scores are recomputed, not trusted).
    pub fn from_json(v: &Value) -> Result<CandidateOutcome, String> {
        let num = |name: &str| -> Result<f64, String> {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("candidate outcome needs numeric {name:?}"))
        };
        let detected = match v.get("detected") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("candidate outcome needs boolean \"detected\"".into()),
        };
        Ok(CandidateOutcome {
            detected,
            true_positives: num("true_positives")? as u64,
            false_positives: num("false_positives")? as u64,
            alerts: num("alerts")? as u64,
            latency_s: num("latency_s")?,
            impact: num("impact")?,
            collisions: num("collisions")? as u64,
            min_gap: num("min_gap")?,
            min_ttc: num("min_ttc")?,
            max_spacing_error: num("max_spacing_error")?,
        })
    }
}

/// The self-describing result document of one campaign cell — what
/// `JobSpec::Campaign` returns and the in-process path memoises. Compact,
/// canonical, and independent of which executor produced it.
pub fn outcome_document(
    params: &AttackParams,
    quick: bool,
    seed: u64,
    o: &CandidateOutcome,
) -> String {
    let mut w = json::Writer::compact();
    w.obj(|w| {
        w.field_str("attack", params.attack());
        w.field_obj("params", |w| {
            for (spec, &v) in params.space().iter().zip(params.values()) {
                w.field_f64(spec.name, v);
            }
        });
        w.field_bool("quick", quick);
        w.field_str("seed", &seed.to_string());
        o.write_fields(w);
    });
    w.finish()
}

/// Parses an [`outcome_document`] back to its candidate outcome (the
/// params travel alongside in the document's `attack`/`params` fields and
/// can be recovered with [`AttackParams::from_json`]).
pub fn parse_outcome(text: &str) -> Result<CandidateOutcome, String> {
    CandidateOutcome::from_json(&json::parse(text)?)
}

/// Ground-truth labels for a tuned candidate — Table IV's `truth_for`
/// generalised from the canonical timings to whatever timing the candidate's knobs chose, so a stealthy
/// late start cannot launder true positives into false ones.
pub fn truth_for_params(params: &AttackParams, effort: Effort, engine: &Engine) -> TruthLabels {
    let d = effort.duration;
    let attack = params.attack();
    let start_of = |knob: &str| params.get(knob) * d;
    let mut truth = TruthLabels {
        attack: attack.to_string(),
        start: 0.0,
        channel_attack: false,
        guilty: Vec::new(),
        guilty_from: None,
    };
    match attack {
        // Passive listener: nothing on the air to flag. Any alert is false.
        "eavesdrop" => {}
        "fake-maneuver" => {
            truth.start = start_of("inject_frac");
            truth.guilty = vec![engine.world().vehicles[0].principal];
        }
        "replay" => {
            truth.start = start_of("replay_frac");
            truth.guilty = engine
                .world()
                .vehicles
                .iter()
                .map(|v| v.principal)
                .collect();
        }
        "sybil" => {
            truth.start = start_of("start_frac");
            truth.guilty_from = Some(7_000);
        }
        "jamming" => {
            truth.start = start_of("start_frac");
            truth.channel_attack = true;
        }
        "dos-join-flood" => {
            truth.start = start_of("start_frac");
            truth.channel_attack = true;
            truth.guilty_from = Some(8_000);
        }
        "impersonation" => {
            truth.start = start_of("start_frac");
            truth.guilty = vec![PrincipalId(1)];
        }
        "sensor-spoof" | "gps-spoof" => {
            truth.start = start_of("start_frac");
            truth.guilty = vec![engine.world().vehicles[2].principal];
        }
        "malware" => {
            truth.start = start_of("infect_frac");
            truth.guilty = engine
                .world()
                .vehicles
                .iter()
                .filter(|v| v.infected)
                .map(|v| v.principal)
                .collect();
        }
        "insider-fdi" => {
            truth.start = start_of("start_frac");
            truth.guilty = vec![PrincipalId(2)];
        }
        other => panic!("unknown attack {other}"),
    }
    truth
}

/// Runs one campaign cell: the canonical platoon under the candidate's
/// tuned attack, the default detection pipeline attached, scored against
/// the candidate's own ground-truth timing.
pub fn evaluate_candidate(params: &AttackParams, quick: bool, seed: u64) -> CandidateOutcome {
    let effort = Effort::new(quick);
    let attack = params.attack();
    let label = format!("campaign/{attack}");
    let mut builder = base_scenario(&label, effort).seed(seed);
    if matches!(attack, "replay" | "insider-fdi") {
        builder = builder.profile(brake_profile());
    }
    let mut engine = Engine::new(builder.build());
    engine.add_attack(params.build(effort.duration));
    if attack == "dos-join-flood" {
        // The honest joiner rides along, exactly as in Table IV — the
        // flood's damage is measured through its join outcome.
        engine.add_attack(Box::new(legit_joiner(effort.duration * 0.25)));
    }
    engine.attach_detector_config(profile_for("default"));
    let summary = engine.run();
    let truth = truth_for_params(params, effort, &engine);
    let det = score_alerts(engine.alerts(), &truth);
    let impact = impact_of(attack, &engine, &summary);
    CandidateOutcome {
        detected: det.detected,
        true_positives: det.true_positives as u64,
        false_positives: det.false_positives as u64,
        alerts: det.alerts as u64,
        latency_s: det.first_detection_latency,
        impact,
        collisions: summary.collisions as u64,
        min_gap: summary.min_gap,
        min_ttc: summary.min_ttc,
        max_spacing_error: summary.max_spacing_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_candidates_evaluate_for_every_attack() {
        for name in platoon_attacks::params::searchable_attacks() {
            let p = AttackParams::defaults(name).unwrap();
            let o = evaluate_candidate(&p, true, 2021);
            assert!(o.detection_score().is_finite(), "{name}");
            assert!(o.damage().is_finite(), "{name}");
            assert!(o.damage() >= 0.0 || o.impact < 0.0, "{name}: {o:?}");
        }
    }

    #[test]
    fn outcome_document_round_trips() {
        let p = AttackParams::defaults("insider-fdi").unwrap();
        let o = evaluate_candidate(&p, true, 7);
        let doc = outcome_document(&p, true, 7, &o);
        let back = parse_outcome(&doc).unwrap();
        assert_eq!(back, o);
        assert_eq!(outcome_document(&p, true, 7, &back), doc);
        // The params travel inside the document.
        let v = json::parse(&doc).unwrap();
        assert_eq!(AttackParams::from_json(&v).unwrap(), p);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = AttackParams::defaults("impersonation").unwrap();
        let a = evaluate_candidate(&p, true, 2021);
        let b = evaluate_candidate(&p, true, 2021);
        assert_eq!(
            outcome_document(&p, true, 2021, &a),
            outcome_document(&p, true, 2021, &b)
        );
    }

    #[test]
    fn truth_tracks_tuned_timing() {
        let p = AttackParams::from_json(
            &json::parse(r#"{"attack": "insider-fdi", "params": {"start_frac": 0.5}}"#).unwrap(),
        )
        .unwrap();
        let effort = Effort::quick();
        let engine = Engine::new(base_scenario("t", effort).build());
        let truth = truth_for_params(&p, effort, &engine);
        assert_eq!(truth.start, 0.5 * effort.duration);
        assert_eq!(truth.guilty, vec![PrincipalId(2)]);
    }
}
