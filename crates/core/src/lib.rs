//! # platoon-core
//!
//! The synthesis layer of the reproduction of Taylor et al., *"Vehicular
//! Platoon Communication: Cybersecurity Threats and Open Challenges"*
//! (DSN-W 2021): taxonomy registries, the risk-assessment framework, and
//! the experiment runner that regenerates every table and figure.
//!
//! * [`surveys`] — Table I (related surveys) as data, with the coverage
//!   matrix behind the paper's gap analysis.
//! * [`risk`] — the ISO/SAE 21434-style TARA answering the paper's §VI-B.4
//!   open challenge for the full attack catalogue.
//! * [`experiments`] — T2/T3 (the measured Tables II and III), T4 (the
//!   detection-quality table for the `platoon-detect` pipeline) and F1–F10
//!   (the per-attack impact sweeps); see DESIGN.md §3 for the index.
//! * [`tables`] — plain-text table rendering.
//! * [`perf`] — the machine-readable perf pipeline: the fixed scenario grid
//!   behind `BENCH_*.json`, the counters golden and the CI wall-time gate.
//!
//! # Examples
//!
//! Regenerate the risk table and a quick Table II measurement:
//!
//! ```no_run
//! use platoon_core::risk;
//! use platoon_core::experiments::table2;
//!
//! println!("{}", risk::render_risk_table().render());
//! let rows = table2::run(true);
//! println!("{}", table2::render(&rows).render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod risk;
pub mod surveys;
pub mod tables;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::experiments::{
        ablations, common::Effort, figures, privacy, table2, table3, table4, Figure, Series,
    };
    pub use crate::risk::{
        assessment, render_risk_table, Feasibility, FeasibilityClass, Impact, RiskEntry, RiskLevel,
    };
    pub use crate::surveys::{catalog as survey_catalog, render_coverage_matrix, render_table1};
    pub use crate::tables::{num, TextTable};
}
