//! Risk assessment framework — the paper's open challenge §VI-B.4.
//!
//! > "Various standards are available to perform a risk assessment in
//! > VANET, such as SAE J3061 \[37\] and ISO/SAE 21434 \[38\]. However, how
//! > these standards will be applied within the platoons to perform risk
//! > assessment is an open challenge."
//!
//! This module *answers* that challenge for the attack catalogue: an
//! ISO/SAE 21434-style TARA (threat analysis and risk assessment) with
//! attack-feasibility rating (elapsed time, expertise, knowledge of the
//! target, equipment) and multi-dimensional impact rating (safety,
//! operational, financial, privacy). The feasibility inputs are grounded in
//! *measured* properties of the attack implementations where possible
//! (experiment ids cross-referenced per entry).

use crate::tables::TextTable;
use serde::Serialize;

/// Attack-feasibility rating factors (lower total = easier attack), after
/// ISO/SAE 21434 Annex G / the attack-potential method.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Feasibility {
    /// Elapsed time to mount the attack: 0 (hours) ..= 3 (months).
    pub elapsed_time: u8,
    /// Required expertise: 0 (layman) ..= 3 (multiple experts).
    pub expertise: u8,
    /// Required knowledge of the target: 0 (public) ..= 3 (critical secrets).
    pub knowledge: u8,
    /// Required equipment: 0 (standard) ..= 3 (bespoke/multiple bespoke).
    pub equipment: u8,
}

impl Feasibility {
    /// Total attack-potential score (0..=12).
    pub fn score(&self) -> u8 {
        self.elapsed_time + self.expertise + self.knowledge + self.equipment
    }

    /// Feasibility class: high (easy), medium, low (hard).
    pub fn class(&self) -> FeasibilityClass {
        match self.score() {
            0..=3 => FeasibilityClass::High,
            4..=7 => FeasibilityClass::Medium,
            _ => FeasibilityClass::Low,
        }
    }
}

/// Feasibility classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FeasibilityClass {
    /// Easy to mount (high likelihood).
    High,
    /// Moderate effort.
    Medium,
    /// Hard to mount (low likelihood).
    Low,
}

impl FeasibilityClass {
    fn level(self) -> u8 {
        match self {
            FeasibilityClass::High => 3,
            FeasibilityClass::Medium => 2,
            FeasibilityClass::Low => 1,
        }
    }
}

/// Impact severity per ISO/SAE 21434 damage categories, 0 (negligible) ..=
/// 3 (severe).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Impact {
    /// Safety consequences (collisions, injuries).
    pub safety: u8,
    /// Operational consequences (platoon disband, efficiency loss).
    pub operational: u8,
    /// Financial consequences (fuel, service charges, theft).
    pub financial: u8,
    /// Privacy consequences (tracking, data theft).
    pub privacy: u8,
}

impl Impact {
    /// Overall severity: the maximum across categories (21434 takes the
    /// controlling category).
    pub fn severity(&self) -> u8 {
        self.safety
            .max(self.operational)
            .max(self.financial)
            .max(self.privacy)
    }
}

/// Risk levels from the 21434-style risk matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum RiskLevel {
    /// Acceptable without further treatment.
    Low,
    /// Treat when practical.
    Medium,
    /// Requires treatment.
    High,
    /// Requires immediate treatment.
    Critical,
}

/// Combines feasibility and impact through the risk matrix.
pub fn risk_level(feasibility: FeasibilityClass, impact_severity: u8) -> RiskLevel {
    let l = feasibility.level(); // 1..=3
    let s = impact_severity.min(3); // 0..=3
    match l * s {
        0..=1 => RiskLevel::Low,
        2..=3 => RiskLevel::Medium,
        4..=6 => RiskLevel::High,
        _ => RiskLevel::Critical,
    }
}

/// A full TARA entry for one catalogued attack.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RiskEntry {
    /// Attack machine name (attack-registry key).
    pub attack: &'static str,
    /// Display name.
    pub display_name: &'static str,
    /// Feasibility rating with rationale.
    pub feasibility: Feasibility,
    /// Why the feasibility was rated this way.
    pub feasibility_rationale: &'static str,
    /// Impact rating.
    pub impact: Impact,
    /// Why the impact was rated this way (citing the measuring experiment).
    pub impact_rationale: &'static str,
}

impl RiskEntry {
    /// The resulting risk level.
    pub fn risk(&self) -> RiskLevel {
        risk_level(self.feasibility.class(), self.impact.severity())
    }
}

/// The full TARA over the Table II catalogue.
pub fn assessment() -> Vec<RiskEntry> {
    vec![
        RiskEntry {
            attack: "jamming",
            display_name: "Jamming",
            feasibility: Feasibility {
                elapsed_time: 0,
                expertise: 0,
                knowledge: 0,
                equipment: 1,
            },
            feasibility_rationale: "Only the public channel frequency is needed (§V-B: 'the \
                most straightforward way'); cheap SDR hardware suffices.",
            impact: Impact {
                safety: 1,
                operational: 3,
                financial: 2,
                privacy: 0,
            },
            impact_rationale: "F2: PDR collapses and gaps open to radar-fallback distances; \
                platooning benefit lost, but radar keeps the string collision-free.",
        },
        RiskEntry {
            attack: "replay",
            display_name: "Replay",
            feasibility: Feasibility {
                elapsed_time: 0,
                expertise: 1,
                knowledge: 0,
                equipment: 1,
            },
            feasibility_rationale: "Record-and-retransmit needs no keys; frames remain valid \
                wherever freshness is unchecked (F1 shows PKI alone does not stop it).",
            impact: Impact {
                safety: 2,
                operational: 3,
                financial: 2,
                privacy: 0,
            },
            impact_rationale: "F1: oscillation energy grows by several x; sustained spacing \
                errors >10 m; collision-adjacent minimum gaps under aggressive replays.",
        },
        RiskEntry {
            attack: "sybil",
            display_name: "Sybil",
            feasibility: Feasibility {
                elapsed_time: 1,
                expertise: 1,
                knowledge: 1,
                equipment: 1,
            },
            feasibility_rationale: "One radio fabricates many identities; needs protocol \
                knowledge and, under PKI, stolen credentials per ghost (F3 PKI arm blocks it).",
            impact: Impact {
                safety: 1,
                operational: 3,
                financial: 2,
                privacy: 0,
            },
            impact_rationale: "F3: phantom roster members block legitimate joins and force \
                interior gaps tens of metres wide.",
        },
        RiskEntry {
            attack: "fake-maneuver",
            display_name: "Fake manoeuvre",
            feasibility: Feasibility {
                elapsed_time: 0,
                expertise: 1,
                knowledge: 1,
                equipment: 1,
            },
            feasibility_rationale: "A single forged split/leave/gap message suffices where \
                messages are unauthenticated; message formats are public.",
            impact: Impact {
                safety: 1,
                operational: 3,
                financial: 2,
                privacy: 0,
            },
            impact_rationale: "F5: one forged split fragments the platoon for the rest of the \
                run; forged gaps waste ~30 m of spacing per injection.",
        },
        RiskEntry {
            attack: "dos-join-flood",
            display_name: "Denial of Service",
            feasibility: Feasibility {
                elapsed_time: 0,
                expertise: 0,
                knowledge: 1,
                equipment: 1,
            },
            feasibility_rationale: "§V-D: a single platoon is a small target — 'an attacker \
                does not need as much equipment to carry out such an attack'.",
            impact: Impact {
                safety: 0,
                operational: 2,
                financial: 2,
                privacy: 0,
            },
            impact_rationale: "F4: legitimate joins starved or delayed by >2x; existing \
                members unaffected.",
        },
        RiskEntry {
            attack: "impersonation",
            display_name: "Impersonation",
            feasibility: Feasibility {
                elapsed_time: 1,
                expertise: 1,
                knowledge: 2,
                equipment: 1,
            },
            feasibility_rationale: "Requires a stolen or forged identity (§V-F); under PKI \
                additionally the victim's signing key.",
            impact: Impact {
                safety: 2,
                operational: 2,
                financial: 2,
                privacy: 1,
            },
            impact_rationale: "F8: phantom braking under a stolen identity disturbs the \
                string and destroys the victim's reputation (trust eviction).",
        },
        RiskEntry {
            attack: "eavesdrop",
            display_name: "Eavesdropping",
            feasibility: Feasibility {
                elapsed_time: 0,
                expertise: 0,
                knowledge: 0,
                equipment: 0,
            },
            feasibility_rationale: "Entirely passive reception of an open broadcast channel; \
                CAM-style beacons are authenticated, not encrypted.",
            impact: Impact {
                safety: 0,
                operational: 0,
                financial: 1,
                privacy: 3,
            },
            impact_rationale: "F7: full trajectory reconstruction of any member to GPS-noise \
                accuracy; cargo/route information exposed (§V-E).",
        },
        RiskEntry {
            attack: "sensor-spoof",
            display_name: "Sensor jamming/spoofing",
            feasibility: Feasibility {
                elapsed_time: 1,
                expertise: 2,
                knowledge: 1,
                equipment: 2,
            },
            feasibility_rationale: "Per-sensor physical attacks (laser blinding, GPS \
                overpowering) need proximity and speciality equipment (§V-G).",
            impact: Impact {
                safety: 3,
                operational: 2,
                financial: 1,
                privacy: 0,
            },
            impact_rationale: "F6: a 15 m radar bias drives the victim into its predecessor \
                unless fusion/mitigation intervenes — the highest safety severity measured.",
        },
        RiskEntry {
            attack: "malware",
            display_name: "Malware",
            feasibility: Feasibility {
                elapsed_time: 2,
                expertise: 2,
                knowledge: 2,
                equipment: 1,
            },
            feasibility_rationale: "Requires an initial access vector (OBD, media, wireless \
                stack exploit) and engineering effort (§V-H).",
            impact: Impact {
                safety: 2,
                operational: 3,
                financial: 3,
                privacy: 2,
            },
            impact_rationale: "F9: epidemic spread disables platooning fleet-wide and can \
                stage every other attack ('more malicious attacks are then possible').",
        },
        RiskEntry {
            attack: "insider-fdi",
            display_name: "False data injection (insider)",
            feasibility: Feasibility {
                elapsed_time: 1,
                expertise: 1,
                knowledge: 1,
                equipment: 0,
            },
            feasibility_rationale: "A legitimate member with valid keys simply lies; no \
                cryptographic barrier exists by construction.",
            impact: Impact {
                safety: 2,
                operational: 3,
                financial: 2,
                privacy: 0,
            },
            impact_rationale: "F1: signed lies pass PKI verification and destabilise the \
                string; only behavioural detection (VPD-ADA/trust) responds.",
        },
    ]
}

/// Renders the risk-assessment table (experiment F11).
pub fn render_risk_table() -> TextTable {
    let mut t = TextTable::new(
        "Risk assessment (ISO/SAE 21434-style TARA over the Table II catalogue)",
        &[
            "Attack",
            "Feasibility",
            "Impact (S/O/F/P)",
            "Severity",
            "Risk",
        ],
    );
    let mut entries = assessment();
    entries.sort_by_key(|e| std::cmp::Reverse(e.risk()));
    for e in entries {
        t.row(vec![
            e.display_name.to_string(),
            format!("{:?} (AP {})", e.feasibility.class(), e.feasibility.score()),
            format!(
                "{}/{}/{}/{}",
                e.impact.safety, e.impact.operational, e.impact.financial, e.impact.privacy
            ),
            e.impact.severity().to_string(),
            format!("{:?}", e.risk()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_attacks::registry as attack_registry;

    #[test]
    fn every_catalogued_attack_is_assessed() {
        let assessed: Vec<&str> = assessment().iter().map(|e| e.attack).collect();
        for attack in attack_registry::catalog() {
            assert!(
                assessed.contains(&attack.name),
                "attack {} lacks a risk entry",
                attack.name
            );
        }
        assert_eq!(assessed.len(), attack_registry::catalog().len());
    }

    #[test]
    fn feasibility_classes_partition_scores() {
        for score in 0..=12u8 {
            let f = Feasibility {
                elapsed_time: score.min(3),
                expertise: score.saturating_sub(3).min(3),
                knowledge: score.saturating_sub(6).min(3),
                equipment: score.saturating_sub(9).min(3),
            };
            assert_eq!(f.score(), score);
            let _ = f.class(); // must not panic anywhere in range
        }
    }

    #[test]
    fn risk_matrix_is_monotone() {
        // Higher feasibility never lowers risk at fixed severity, and vice
        // versa.
        let classes = [
            FeasibilityClass::Low,
            FeasibilityClass::Medium,
            FeasibilityClass::High,
        ];
        for s in 0..=3u8 {
            for w in classes.windows(2) {
                assert!(risk_level(w[0], s) <= risk_level(w[1], s));
            }
        }
        for c in classes {
            for s in 0..3u8 {
                assert!(risk_level(c, s) <= risk_level(c, s + 1));
            }
        }
    }

    #[test]
    fn eavesdropping_is_high_feasibility() {
        let e = assessment()
            .into_iter()
            .find(|e| e.attack == "eavesdrop")
            .unwrap();
        assert_eq!(e.feasibility.class(), FeasibilityClass::High);
        assert_eq!(e.impact.privacy, 3);
    }

    #[test]
    fn sensor_spoofing_has_top_safety_severity() {
        let e = assessment()
            .into_iter()
            .find(|e| e.attack == "sensor-spoof")
            .unwrap();
        assert_eq!(e.impact.safety, 3);
    }

    #[test]
    fn render_sorts_by_risk_descending() {
        let t = render_risk_table();
        assert_eq!(t.len(), assessment().len());
        // The Risk column (last cell) must be non-increasing.
        let order = |cell: &str| match cell {
            "Critical" => 3,
            "High" => 2,
            "Medium" => 1,
            _ => 0,
        };
        let risks: Vec<i32> = t.rows.iter().map(|r| order(r.last().unwrap())).collect();
        assert!(
            risks.windows(2).all(|w| w[0] >= w[1]),
            "risk column must be sorted descending: {risks:?}"
        );
    }

    #[test]
    fn corner_risk_levels() {
        assert_eq!(risk_level(FeasibilityClass::Low, 0), RiskLevel::Low);
        assert_eq!(risk_level(FeasibilityClass::High, 3), RiskLevel::Critical);
        assert_eq!(risk_level(FeasibilityClass::Medium, 2), RiskLevel::High);
    }
}
