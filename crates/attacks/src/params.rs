//! Typed, searchable parameter surfaces for every catalogued attack.
//!
//! The registry ([`crate::registry`]) fixes each attack's *shape*; this
//! module exposes each attack's *tunable knobs* as a flat, bounded vector —
//! the interface the adversarial campaign search drives. Every knob is an
//! `f64` inside a declared `[min, max]` range ([`ParamSpec`]); integer and
//! boolean knobs are snapped on construction so any in-bounds vector spells
//! a single canonical value. Timing knobs are expressed as *fractions of
//! the run duration* (`*_frac`), which keeps one parameter space valid for
//! quick and full efforts alike.
//!
//! [`AttackParams`] is the canonical-JSON unit the search, the job server
//! and the campaign documents all share: construction clamps and snaps, so
//! encode → parse → encode is byte-identical, and a seeded Gaussian
//! [`mutate`](AttackParams::mutate) can never leave the declared bounds.
//!
//! # Examples
//!
//! ```
//! use platoon_attacks::params::AttackParams;
//! use platoon_sim::attack::Attack;
//!
//! let p = AttackParams::defaults("jamming").unwrap();
//! let text = p.canonical_json();
//! assert_eq!(AttackParams::parse(&text).unwrap().canonical_json(), text);
//! let attack = p.build(30.0); // a Box<dyn Attack> for a 30 s run
//! assert_eq!(attack.name(), "jamming");
//! ```

use crate::prelude::*;
use platoon_sim::attack::Attack;
use platoon_sim::harness::json::{self, Value};
use platoon_v2x::jamming::JammingStrategy;
use rand::rngs::StdRng;
use rand::Rng;

/// How a parameter's raw `f64` maps to its attack-config value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// Used as-is.
    Continuous,
    /// Rounded to the nearest integer on construction.
    Integer,
    /// Snapped to `0.0` / `1.0` (threshold `0.5`) on construction.
    Boolean,
}

/// One tunable knob: its name, canonical range and default.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParamSpec {
    /// Knob name (stable: part of the canonical-JSON spelling).
    pub name: &'static str,
    /// Value interpretation.
    pub kind: ParamKind,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
    /// The canonical starting point (mirrors the Table II/IV arm where the
    /// attack has one).
    pub default: f64,
}

impl ParamSpec {
    const fn cont(name: &'static str, min: f64, max: f64, default: f64) -> Self {
        ParamSpec {
            name,
            kind: ParamKind::Continuous,
            min,
            max,
            default,
        }
    }

    const fn int(name: &'static str, min: f64, max: f64, default: f64) -> Self {
        ParamSpec {
            name,
            kind: ParamKind::Integer,
            min,
            max,
            default,
        }
    }

    const fn boolean(name: &'static str, default: f64) -> Self {
        ParamSpec {
            name,
            kind: ParamKind::Boolean,
            min: 0.0,
            max: 1.0,
            default,
        }
    }

    /// Clamps into bounds and snaps integers/booleans to their canonical
    /// representative. NaN pins to the default (a mutation can never produce
    /// one, but a hand-written document can).
    pub fn snap(&self, raw: f64) -> f64 {
        let v = if raw.is_nan() { self.default } else { raw };
        let v = v.clamp(self.min, self.max);
        match self.kind {
            ParamKind::Continuous => v,
            ParamKind::Integer => v.round(),
            ParamKind::Boolean => {
                if v >= 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// The parameter space of an attack, `None` if the name is unknown.
///
/// Every machine name in the registry catalogue is covered (plus
/// `gps-spoof`, the second module of the sensor row), so the campaign can
/// search any attack without bespoke plumbing.
pub fn param_space(attack: &str) -> Option<&'static [ParamSpec]> {
    const REPLAY: &[ParamSpec] = &[
        ParamSpec::cont("replay_frac", 0.15, 0.7, 0.2),
        ParamSpec::cont("replay_rate", 5.0, 80.0, 50.0),
        ParamSpec::cont("power_dbm", 10.0, 33.0, 23.0),
    ];
    const SYBIL: &[ParamSpec] = &[
        ParamSpec::int("ghost_count", 1.0, 8.0, 5.0),
        ParamSpec::cont("start_frac", 0.1, 0.6, 0.2),
        ParamSpec::cont("request_period", 0.25, 4.0, 1.0),
        ParamSpec::boolean("claim_mid_platoon", 1.0),
    ];
    const FAKE_MANEUVER: &[ParamSpec] = &[
        ParamSpec::cont("inject_frac", 0.1, 0.7, 0.2),
        ParamSpec::cont("repeat_period", 0.0, 8.0, 0.0),
    ];
    const JAMMING: &[ParamSpec] = &[
        ParamSpec::cont("start_frac", 0.1, 0.6, 0.2),
        ParamSpec::cont("power_dbm", 5.0, 36.0, 33.0),
        ParamSpec::cont("duty_cycle", 0.05, 1.0, 1.0),
        ParamSpec::cont("period_s", 0.5, 6.0, 2.0),
        ParamSpec::cont("lateral_offset", 2.0, 20.0, 6.0),
    ];
    const EAVESDROP: &[ParamSpec] = &[
        ParamSpec::cont("lateral_offset", 2.0, 40.0, 8.0),
        ParamSpec::cont("longitudinal_offset", -120.0, 120.0, 0.0),
    ];
    const DOS: &[ParamSpec] = &[
        ParamSpec::cont("rate_per_second", 5.0, 200.0, 100.0),
        ParamSpec::cont("start_frac", 0.05, 0.5, 0.1),
        ParamSpec::cont("end_frac", 0.2, 1.0, 1.0),
    ];
    const IMPERSONATION: &[ParamSpec] = &[
        ParamSpec::cont("start_frac", 0.15, 0.7, 0.2),
        ParamSpec::cont("duration_frac", 0.05, 0.6, 0.3),
        ParamSpec::cont("phantom_accel", -8.0, -0.5, -6.0),
        ParamSpec::cont("rate", 1.0, 25.0, 10.0),
    ];
    const SENSOR_SPOOF: &[ParamSpec] = &[
        ParamSpec::cont("bias_m", 0.5, 15.0, 8.0),
        ParamSpec::cont("start_frac", 0.15, 0.7, 0.2),
        ParamSpec::boolean("also_lidar", 0.0),
    ];
    const GPS_SPOOF: &[ParamSpec] = &[
        ParamSpec::cont("drift_rate", 0.1, 5.0, 1.0),
        ParamSpec::cont("start_frac", 0.15, 0.7, 0.2),
    ];
    const MALWARE: &[ParamSpec] = &[
        ParamSpec::cont("spread_prob", 0.02, 1.0, 0.15),
        ParamSpec::cont("infect_frac", 0.05, 0.5, 0.1),
        ParamSpec::cont("incubation", 0.5, 10.0, 5.0),
    ];
    const INSIDER_FDI: &[ParamSpec] = &[
        ParamSpec::cont("start_frac", 0.15, 0.7, 0.2),
        ParamSpec::cont("accel_offset", -6.0, 0.0, -4.0),
        ParamSpec::cont("speed_offset", -5.0, 5.0, 0.0),
        ParamSpec::cont("position_offset", -20.0, 20.0, 0.0),
    ];
    Some(match attack {
        "replay" => REPLAY,
        "sybil" => SYBIL,
        "fake-maneuver" => FAKE_MANEUVER,
        "jamming" => JAMMING,
        "eavesdrop" => EAVESDROP,
        "dos-join-flood" => DOS,
        "impersonation" => IMPERSONATION,
        "sensor-spoof" => SENSOR_SPOOF,
        "gps-spoof" => GPS_SPOOF,
        "malware" => MALWARE,
        "insider-fdi" => INSIDER_FDI,
        _ => return None,
    })
}

/// Every attack name with a declared parameter space, in registry order
/// (with `gps-spoof` appended after its sibling `sensor-spoof`).
pub fn searchable_attacks() -> Vec<&'static str> {
    let mut names = Vec::new();
    for d in crate::registry::catalog() {
        names.push(d.name);
        if d.name == "sensor-spoof" {
            names.push("gps-spoof");
        }
    }
    debug_assert!(names.iter().all(|n| param_space(n).is_some()));
    names
}

/// A concrete, bounded parameter assignment for one attack — the canonical
/// search-space point. Construction always snaps every value through its
/// [`ParamSpec`], so two `AttackParams` are equal iff their canonical JSON
/// is byte-identical.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackParams {
    attack: String,
    values: Vec<f64>,
}

impl AttackParams {
    /// The canonical starting point: every knob at its declared default.
    pub fn defaults(attack: &str) -> Result<AttackParams, String> {
        let space = space_of(attack)?;
        Ok(AttackParams {
            attack: attack.to_string(),
            values: space.iter().map(|s| s.default).collect(),
        })
    }

    /// Builds from a raw value vector (one per [`ParamSpec`], in space
    /// order), clamping and snapping each into bounds.
    pub fn from_values(attack: &str, raw: &[f64]) -> Result<AttackParams, String> {
        let space = space_of(attack)?;
        if raw.len() != space.len() {
            return Err(format!(
                "{attack} takes {} parameter(s), got {}",
                space.len(),
                raw.len()
            ));
        }
        Ok(AttackParams {
            attack: attack.to_string(),
            values: space.iter().zip(raw).map(|(s, &v)| s.snap(v)).collect(),
        })
    }

    /// The attack machine name.
    pub fn attack(&self) -> &str {
        &self.attack
    }

    /// The snapped values, in [`param_space`] order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The parameter space this assignment lives in.
    pub fn space(&self) -> &'static [ParamSpec] {
        param_space(&self.attack).expect("constructed AttackParams always has a space")
    }

    /// Value of a named knob. Panics on an unknown name (a programming
    /// error: names are static).
    pub fn get(&self, name: &str) -> f64 {
        let idx = self
            .space()
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("{} has no parameter {name:?}", self.attack));
        self.values[idx]
    }

    /// Canonical compact-JSON spelling: attack name then every knob in
    /// space order. This is the wire form, the cache-key input and the
    /// campaign-document form — there is only one.
    pub fn canonical_json(&self) -> String {
        let mut w = json::Writer::compact();
        self.write_canonical(&mut w);
        w.finish()
    }

    /// Writes the canonical object through an existing writer (for
    /// embedding in larger documents).
    pub fn write_canonical(&self, w: &mut json::Writer) {
        w.obj(|w| {
            w.field_str("attack", &self.attack);
            w.field_obj("params", |w| {
                for (spec, &v) in self.space().iter().zip(&self.values) {
                    w.field_f64(spec.name, v);
                }
            });
        });
    }

    /// Decodes from a parsed JSON value (the inverse of
    /// [`canonical_json`](Self::canonical_json)). Unknown knobs are
    /// rejected; missing knobs take their defaults (forward compatibility
    /// for spaces that grow).
    pub fn from_json(v: &Value) -> Result<AttackParams, String> {
        let attack = match v.get("attack") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("attack params need a string \"attack\" field".into()),
        };
        let space = space_of(&attack)?;
        let params = v
            .get("params")
            .ok_or("attack params need a \"params\" object")?;
        let Value::Obj(fields) = params else {
            return Err("\"params\" must be an object".into());
        };
        for (name, _) in fields {
            if !space.iter().any(|s| s.name == name) {
                return Err(format!("{attack} has no parameter {name:?}"));
            }
        }
        let values = space
            .iter()
            .map(|s| {
                let raw = match params.get(s.name) {
                    None => s.default,
                    Some(field) => field
                        .as_f64()
                        .ok_or_else(|| format!("parameter {:?} must be a number", s.name))?,
                };
                Ok(s.snap(raw))
            })
            .collect::<Result<Vec<f64>, String>>()?;
        Ok(AttackParams { attack, values })
    }

    /// Parses the canonical-JSON text form.
    pub fn parse(text: &str) -> Result<AttackParams, String> {
        AttackParams::from_json(&json::parse(text)?)
    }

    /// A Gaussian-perturbed neighbour: each knob moves by
    /// `N(0, sigma_frac · range)` and is snapped back into bounds. The rng
    /// is the caller's (campaign-seed-derived) stream, so mutation is as
    /// replayable as everything else.
    pub fn mutate(&self, rng: &mut StdRng, sigma_frac: f64) -> AttackParams {
        let space = self.space();
        let values = space
            .iter()
            .zip(&self.values)
            .map(|(spec, &v)| {
                let range = spec.max - spec.min;
                spec.snap(v + gaussian(rng) * sigma_frac * range)
            })
            .collect();
        AttackParams {
            attack: self.attack.clone(),
            values,
        }
    }

    /// Instantiates the attack for a run of `duration` simulated seconds
    /// (the `*_frac` timing knobs scale by it). Non-searched fields keep
    /// their canonical defaults, so identical params always build identical
    /// attacks.
    pub fn build(&self, duration: f64) -> Box<dyn Attack> {
        let d = duration;
        match self.attack.as_str() {
            "replay" => Box::new(ReplayAttack::new(ReplayConfig {
                record_from: 0.0,
                replay_from: self.get("replay_frac") * d,
                replay_rate: self.get("replay_rate"),
                power_dbm: self.get("power_dbm"),
                ..Default::default()
            })),
            "sybil" => Box::new(SybilAttack::new(SybilConfig {
                ghost_count: self.get("ghost_count") as usize,
                start: self.get("start_frac") * d,
                request_period: self.get("request_period"),
                claim_mid_platoon: self.get("claim_mid_platoon") >= 0.5,
                ..Default::default()
            })),
            "fake-maneuver" => Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
                inject_at: self.get("inject_frac") * d,
                repeat_period: self.get("repeat_period"),
                ..Default::default()
            })),
            "jamming" => {
                let duty = self.get("duty_cycle");
                let period = self.get("period_s");
                Box::new(JammingAttack::new(JammingConfig {
                    start: self.get("start_frac") * d,
                    power_dbm: self.get("power_dbm"),
                    lateral_offset: self.get("lateral_offset"),
                    strategy: if duty >= 1.0 {
                        JammingStrategy::Continuous
                    } else {
                        JammingStrategy::Periodic {
                            on: duty * period,
                            off: (1.0 - duty) * period,
                        }
                    },
                    ..Default::default()
                }))
            }
            "eavesdrop" => Box::new(EavesdropAttack::new(EavesdropConfig {
                lateral_offset: self.get("lateral_offset"),
                longitudinal_offset: self.get("longitudinal_offset"),
                ..Default::default()
            })),
            "dos-join-flood" => Box::new(JoinFloodAttack::new(JoinFloodConfig {
                rate_per_second: self.get("rate_per_second"),
                start: self.get("start_frac") * d,
                end: self.get("end_frac") * d,
                ..Default::default()
            })),
            "impersonation" => Box::new(ImpersonationAttack::new(ImpersonationConfig {
                start: self.get("start_frac") * d,
                duration: self.get("duration_frac") * d,
                phantom_accel: self.get("phantom_accel"),
                rate: self.get("rate"),
                ..Default::default()
            })),
            "sensor-spoof" => Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
                mode: SensorAttackMode::Spoof {
                    bias: self.get("bias_m"),
                },
                start: self.get("start_frac") * d,
                also_lidar: self.get("also_lidar") >= 0.5,
                ..Default::default()
            })),
            "gps-spoof" => Box::new(GpsSpoofAttack::new(GpsSpoofConfig {
                drift_rate: self.get("drift_rate"),
                start: self.get("start_frac") * d,
                ..Default::default()
            })),
            "malware" => Box::new(MalwareAttack::new(MalwareConfig {
                spread_prob: self.get("spread_prob"),
                infect_at: self.get("infect_frac") * d,
                incubation: self.get("incubation"),
                ..Default::default()
            })),
            "insider-fdi" => Box::new(FalsificationAttack::new(FalsificationConfig {
                start: self.get("start_frac") * d,
                lie: BeaconLieConfig {
                    position_offset: self.get("position_offset"),
                    speed_offset: self.get("speed_offset"),
                    accel_offset: self.get("accel_offset"),
                },
                ..Default::default()
            })),
            other => unreachable!("AttackParams constructed for unknown attack {other}"),
        }
    }
}

fn space_of(attack: &str) -> Result<&'static [ParamSpec], String> {
    param_space(attack).ok_or_else(|| format!("no parameter space for attack {attack:?}"))
}

/// One standard-normal draw (Box–Muller over the caller's deterministic
/// stream; both uniforms are consumed every call so the stream advances by
/// a fixed amount regardless of the value).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn every_registry_attack_is_searchable_and_builds() {
        for name in searchable_attacks() {
            let p = AttackParams::defaults(name).unwrap();
            let attack = p.build(30.0);
            // gps-spoof rides under the sensor row's separate module name.
            assert!(!attack.name().is_empty(), "{name}");
            assert_eq!(p.values().len(), param_space(name).unwrap().len());
        }
    }

    #[test]
    fn canonical_json_round_trips() {
        for name in searchable_attacks() {
            let p = AttackParams::defaults(name).unwrap();
            let text = p.canonical_json();
            let back = AttackParams::parse(&text).unwrap();
            assert_eq!(back, p, "{text}");
            assert_eq!(back.canonical_json(), text);
        }
    }

    #[test]
    fn construction_snaps_out_of_range_and_discrete_values() {
        let p = AttackParams::from_values("sybil", &[3.7, 9.0, -1.0, 0.49]).unwrap();
        assert_eq!(p.get("ghost_count"), 4.0, "integer knob rounds");
        assert_eq!(p.get("start_frac"), 0.6, "clamped to max");
        assert_eq!(p.get("request_period"), 0.25, "clamped to min");
        assert_eq!(p.get("claim_mid_platoon"), 0.0, "boolean thresholds");
    }

    #[test]
    fn nan_values_pin_to_defaults() {
        let p = AttackParams::from_values("jamming", &[f64::NAN; 5]).unwrap();
        assert_eq!(p, AttackParams::defaults("jamming").unwrap());
    }

    #[test]
    fn missing_knobs_default_but_unknown_knobs_reject() {
        let p =
            AttackParams::parse(r#"{"attack": "jamming", "params": {"power_dbm": 20.0}}"#).unwrap();
        assert_eq!(p.get("power_dbm"), 20.0);
        assert_eq!(p.get("duty_cycle"), 1.0, "missing knob takes default");
        let err = AttackParams::parse(r#"{"attack": "jamming", "params": {"warp": 9.0}}"#);
        assert!(err.is_err());
        assert!(AttackParams::defaults("wormhole").is_err());
    }

    #[test]
    fn mutation_is_seeded_and_stays_in_bounds() {
        let base = AttackParams::defaults("impersonation").unwrap();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ma = base.mutate(&mut a, 0.3);
        let mb = base.mutate(&mut b, 0.3);
        assert_eq!(ma, mb, "same seed, same child");
        for _ in 0..200 {
            let child = base.mutate(&mut a, 5.0); // huge sigma: clamps must hold
            for (spec, &v) in child.space().iter().zip(child.values()) {
                assert!(v >= spec.min && v <= spec.max, "{}: {v}", spec.name);
            }
        }
    }
}
