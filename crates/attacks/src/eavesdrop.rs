//! Eavesdropping attack (§V-C, Table II).
//!
//! > "The attacker listens in and takes information from wireless
//! > communications ... This attack's primary goal is to gain information
//! > from a platoon and/or member vehicles ... The sold-on information can
//! > also be GPS locations and tracking information."
//!
//! A purely passive receiver. The attack quantifies the paper's two leakage
//! claims: *content* leakage (plaintext beacons read) and *tracking*
//! leakage (reconstructing a victim vehicle's trajectory from its beacons).
//! Confidentiality countermeasures change what it gets: pseudonym changes
//! break track linkage; payload encryption (out of scope for CAM-style
//! beacons, which are authenticated but public) would blind it entirely.

use platoon_crypto::cert::PrincipalId;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::PlatoonMessage;
use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use platoon_v2x::medium::Receiver;
use platoon_v2x::message::{Delivery, NodeId, Position};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{HashMap, HashSet};

/// Configuration of the eavesdropper.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EavesdropConfig {
    /// Attacker radio node.
    pub attacker_node: u64,
    /// Longitudinal offset from the platoon centre (0 = pacing alongside).
    pub longitudinal_offset: f64,
    /// Lateral offset, metres.
    pub lateral_offset: f64,
    /// The principal whose trajectory the attacker tries to reconstruct.
    pub victim: u64,
}

impl Default for EavesdropConfig {
    fn default() -> Self {
        EavesdropConfig {
            attacker_node: 8_500,
            longitudinal_offset: 0.0,
            lateral_offset: 8.0,
            victim: 2,
        }
    }
}

/// A reconstructed trajectory point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Receive time.
    pub time: f64,
    /// Claimed position.
    pub position: f64,
    /// Claimed speed.
    pub speed: f64,
}

/// The passive eavesdropper.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(EavesdropAttack::new(EavesdropConfig::default())));
/// engine.run();
/// let ear = engine.attacks()[0].as_any().downcast_ref::<EavesdropAttack>().unwrap();
/// assert!(ear.beacons_read() > 0, "plain beacons leak");
/// ```
#[derive(Clone, Debug)]
pub struct EavesdropAttack {
    config: EavesdropConfig,
    /// Total frames overheard.
    frames_heard: u64,
    /// Total payload bytes captured.
    bytes_captured: u64,
    /// Beacons successfully read as plaintext.
    beacons_read: u64,
    /// Manoeuvre messages successfully read.
    maneuvers_read: u64,
    /// Frames whose content could not be interpreted.
    opaque_frames: u64,
    /// Distinct claimed identities observed.
    identities: HashSet<PrincipalId>,
    /// Reconstructed victim trajectory.
    victim_track: Vec<TrackPoint>,
    /// Per-identity beacon counts (traffic analysis).
    per_identity: HashMap<PrincipalId, u64>,
}

impl EavesdropAttack {
    /// Creates the attack.
    pub fn new(config: EavesdropConfig) -> Self {
        EavesdropAttack {
            config,
            frames_heard: 0,
            bytes_captured: 0,
            beacons_read: 0,
            maneuvers_read: 0,
            opaque_frames: 0,
            identities: HashSet::new(),
            victim_track: Vec::new(),
            per_identity: HashMap::new(),
        }
    }

    /// Total frames overheard.
    pub fn frames_heard(&self) -> u64 {
        self.frames_heard
    }

    /// Total payload bytes captured.
    pub fn bytes_captured(&self) -> u64 {
        self.bytes_captured
    }

    /// Beacons read as plaintext.
    pub fn beacons_read(&self) -> u64 {
        self.beacons_read
    }

    /// Manoeuvre messages read as plaintext.
    pub fn maneuvers_read(&self) -> u64 {
        self.maneuvers_read
    }

    /// Distinct identities observed (pseudonym changes inflate this).
    pub fn identity_count(&self) -> usize {
        self.identities.len()
    }

    /// The reconstructed victim trajectory.
    pub fn victim_track(&self) -> &[TrackPoint] {
        &self.victim_track
    }

    /// Mean absolute error of the reconstructed track against a reference
    /// trajectory sampled at the same times.
    pub fn track_error(&self, reference: impl Fn(f64) -> f64) -> f64 {
        if self.victim_track.is_empty() {
            return f64::INFINITY;
        }
        self.victim_track
            .iter()
            .map(|p| (p.position - reference(p.time)).abs())
            .sum::<f64>()
            / self.victim_track.len() as f64
    }

    fn position(&self, world: &World) -> Position {
        let n = world.vehicles.len();
        let mid = world.vehicles[n / 2].vehicle.state.position;
        (
            mid + self.config.longitudinal_offset,
            self.config.lateral_offset,
        )
    }
}

impl Attack for EavesdropAttack {
    fn name(&self) -> &'static str {
        "eavesdrop"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Confidentiality
    }

    fn observe(&mut self, world: &mut World, _rng: &mut StdRng, deliveries: &[Delivery]) {
        let me = NodeId(self.config.attacker_node);
        for d in deliveries {
            if d.receiver != me {
                continue;
            }
            self.frames_heard += 1;
            self.bytes_captured += d.payload.len() as u64;
            let Ok(env) = Envelope::decode(&d.payload) else {
                self.opaque_frames += 1;
                continue;
            };
            self.identities.insert(env.sender);
            *self.per_identity.entry(env.sender).or_insert(0) += 1;
            // CAM-style payloads are authenticated, not encrypted: the
            // eavesdropper reads them regardless of the auth scheme.
            match env.open_unverified() {
                Ok(PlatoonMessage::Beacon(b)) => {
                    self.beacons_read += 1;
                    if env.sender == PrincipalId(self.config.victim) {
                        self.victim_track.push(TrackPoint {
                            time: world.time,
                            position: b.position,
                            speed: b.speed,
                        });
                    }
                }
                Ok(_) => self.maneuvers_read += 1,
                Err(_) => self.opaque_frames += 1,
            }
        }
    }

    fn receiver(&self, world: &World) -> Option<Receiver> {
        Some(Receiver {
            id: NodeId(self.config.attacker_node),
            position: self.position(world),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str, auth: AuthMode) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(5)
            .duration(30.0)
            .auth(auth)
            .seed(17)
            .build()
    }

    fn run(auth: AuthMode) -> (Engine, RunSummary) {
        let mut engine = Engine::new(scenario("eavesdrop", auth));
        engine.add_attack(Box::new(EavesdropAttack::new(EavesdropConfig::default())));
        let s = engine.run();
        (engine, s)
    }

    fn attack(engine: &Engine) -> &EavesdropAttack {
        engine.attacks()[0]
            .as_any()
            .downcast_ref::<EavesdropAttack>()
            .unwrap()
    }

    #[test]
    fn passive_listener_reads_plaintext_beacons() {
        let (engine, _) = run(AuthMode::None);
        let a = attack(&engine);
        assert!(a.frames_heard() > 500, "heard {}", a.frames_heard());
        assert!(a.beacons_read() > 500);
        assert_eq!(a.identity_count(), 5);
        assert!(a.bytes_captured() > 10_000);
    }

    #[test]
    fn authentication_does_not_stop_reading() {
        // Signatures authenticate but do not encrypt: the paper's privacy
        // challenge (§VI-B.2) survives a PKI deployment.
        let (engine, _) = run(AuthMode::Pki);
        let a = attack(&engine);
        assert!(
            a.beacons_read() > 500,
            "signed beacons are still readable: {}",
            a.beacons_read()
        );
    }

    #[test]
    fn victim_trajectory_is_reconstructed_accurately() {
        let (engine, _) = run(AuthMode::None);
        let a = attack(&engine);
        assert!(
            a.victim_track().len() > 200,
            "track points {}",
            a.victim_track().len()
        );
        // Compare against the victim's true final trajectory: claimed
        // positions come from GPS (1.5 m noise), so mean error is small.
        let victim_idx = 2;
        let true_final = engine.world().vehicles[victim_idx].vehicle.state.position;
        let last = a.victim_track().last().unwrap();
        assert!(
            (last.position - true_final).abs() < 15.0,
            "track end {} vs truth {}",
            last.position,
            true_final
        );
    }

    #[test]
    fn attack_is_purely_passive() {
        let clean = Engine::new(scenario("eavesdrop-clean", AuthMode::None)).run();
        let (_, attacked) = run(AuthMode::None);
        assert_eq!(attacked.collisions, clean.collisions);
        assert!((attacked.max_spacing_error - clean.max_spacing_error).abs() < 1.0);
    }
}
