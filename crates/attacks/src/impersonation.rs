//! Impersonation attack (§V-F, Table II).
//!
//! > "Impersonation is when one user pretends to be another user ... The
//! > consequences of this kind of attack are that whatever the attacker
//! > does, others will think it is the innocent user ... leading to a
//! > heavily damaged reputation for the innocent user."
//!
//! The attacker has obtained a victim's identity (a stolen ID, §V-F) and
//! broadcasts beacons under it — here a *phantom emergency braking* beacon,
//! the highest-impact lie an impersonated predecessor can tell a CACC
//! string. The reputational damage channel is measured by the trust
//! defense: misbehaviour is attributed to the victim.

use platoon_crypto::cert::PrincipalId;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::{Beacon, PlatoonMessage};
use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use platoon_v2x::message::{ChannelKind, Frame, NodeId, Position};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Configuration of the impersonation attack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImpersonationConfig {
    /// The stolen identity (a platoon member's principal id).
    pub victim: u64,
    /// When the forged beacons start, seconds.
    pub start: f64,
    /// How long the impersonation lasts, seconds.
    pub duration: f64,
    /// Phantom deceleration claimed in the forged beacons, m/s² (negative).
    pub phantom_accel: f64,
    /// Forged beacons per second.
    pub rate: f64,
    /// Attacker radio node.
    pub attacker_node: u64,
}

impl Default for ImpersonationConfig {
    fn default() -> Self {
        ImpersonationConfig {
            victim: 1,
            start: 15.0,
            duration: 10.0,
            phantom_accel: -6.0,
            rate: 10.0,
            attacker_node: 9_000,
        }
    }
}

/// The impersonation attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(ImpersonationAttack::new(ImpersonationConfig {
///     victim: 1,
///     start: 1.0,
///     duration: 3.0,
///     ..Default::default()
/// })));
/// engine.run();
/// ```
#[derive(Clone, Debug)]
pub struct ImpersonationAttack {
    config: ImpersonationConfig,
    forged: u64,
    last_tx: f64,
    seq: u64,
}

impl ImpersonationAttack {
    /// Creates the attack.
    pub fn new(config: ImpersonationConfig) -> Self {
        ImpersonationAttack {
            config,
            forged: 0,
            last_tx: f64::NEG_INFINITY,
            seq: 1_000_000, // ahead of the victim's own counter
        }
    }

    /// Forged beacons transmitted.
    pub fn forged(&self) -> u64 {
        self.forged
    }

    fn position(&self, world: &World) -> Position {
        let n = world.vehicles.len();
        (world.vehicles[n / 2].vehicle.state.position, 5.0)
    }
}

impl Attack for ImpersonationAttack {
    fn name(&self) -> &'static str {
        "impersonation"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Integrity
    }

    fn on_air(&mut self, world: &mut World, _rng: &mut StdRng, frames: &mut Vec<Frame>) {
        let now = world.time;
        if now < self.config.start || now >= self.config.start + self.config.duration {
            return;
        }
        if now - self.last_tx < 1.0 / self.config.rate.max(1e-6) - 1e-9 {
            return;
        }
        self.last_tx = now;

        let victim = PrincipalId(self.config.victim);
        let Some(victim_idx) = world.index_of(victim) else {
            return;
        };
        let v = &world.vehicles[victim_idx];
        self.seq += 1;
        // Plausible position/speed (stolen from observation), fatal lie in
        // the acceleration and a reduced speed claim.
        let beacon = PlatoonMessage::Beacon(Beacon {
            sender: victim,
            platoon: v.platoon,
            role: v.role,
            seq: self.seq,
            timestamp: now,
            position: v.vehicle.state.position,
            speed: (v.vehicle.state.speed - 3.0).max(0.0),
            accel: self.config.phantom_accel,
            length: v.vehicle.params.length,
        });
        frames.push(Frame {
            sender: NodeId(self.config.attacker_node),
            origin: self.position(world),
            power_dbm: world.medium.dsrc.default_tx_power_dbm + 3.0,
            channel: ChannelKind::Dsrc,
            payload: Envelope::plain(victim, &beacon).encode().into(),
        });
        self.forged += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str, auth: AuthMode) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(45.0)
            .auth(auth)
            .seed(19)
            .build()
    }

    #[test]
    fn phantom_braking_under_stolen_identity_disrupts_followers() {
        let baseline = Engine::new(scenario("imp-base", AuthMode::None)).run();
        let mut engine = Engine::new(scenario("imp", AuthMode::None));
        engine.add_attack(Box::new(ImpersonationAttack::new(
            ImpersonationConfig::default(),
        )));
        let attacked = engine.run();
        let a = engine.attacks()[0]
            .as_any()
            .downcast_ref::<ImpersonationAttack>()
            .unwrap();
        assert!(a.forged() > 50);
        assert!(
            attacked.oscillation_energy > 2.0 * baseline.oscillation_energy,
            "phantom braking should disturb the string: {} vs {}",
            attacked.oscillation_energy,
            baseline.oscillation_energy
        );
        assert!(attacked.min_gap < baseline.min_gap);
    }

    #[test]
    fn signatures_defeat_identity_theft_without_the_key() {
        // The attacker stole the *identity* but not the signing key: under
        // PKI its forgeries fail verification.
        let baseline = Engine::new(scenario("imp-pki-base", AuthMode::Pki)).run();
        let mut engine = Engine::new(scenario("imp-pki", AuthMode::Pki));
        engine.add_attack(Box::new(ImpersonationAttack::new(
            ImpersonationConfig::default(),
        )));
        let attacked = engine.run();
        assert!(
            attacked.rejected_messages > 50,
            "forgeries must be rejected"
        );
        assert!(
            attacked.oscillation_energy < 1.5 * baseline.oscillation_energy,
            "PKI should neutralise the impact: {} vs {}",
            attacked.oscillation_energy,
            baseline.oscillation_energy
        );
    }

    #[test]
    fn attack_respects_window() {
        let mut engine = Engine::new(scenario("imp-window", AuthMode::None));
        engine.add_attack(Box::new(ImpersonationAttack::new(ImpersonationConfig {
            start: 10.0,
            duration: 5.0,
            ..Default::default()
        })));
        engine.run();
        let a = engine.attacks()[0]
            .as_any()
            .downcast_ref::<ImpersonationAttack>()
            .unwrap();
        // 5 s at 10 Hz ≈ 50 forgeries.
        assert!(
            (40..=60).contains(&(a.forged() as i64)),
            "forged {}",
            a.forged()
        );
    }
}
