//! Sensor jamming and spoofing attack (§V-G, Table II).
//!
//! > "While jamming a whole platoon can be done, it is far easier for an
//! > attacker to jam individual sensors ... Any attack on the cameras will
//! > leave the vehicle with blind spots ... Almost every sensor on a
//! > vehicle could be jammed."
//!
//! Two modes on the victim's forward radar:
//!
//! * **Jam** ([`SensorFault::Outage`]) — the laser/flood attack that blinds
//!   the sensor: the victim falls back to communicated positions (if any)
//!   or degrades to blind mode.
//! * **Spoof** ([`SensorFault::Bias`]) — false ranging: the victim believes
//!   the gap is larger than reality and closes in, eroding the safety
//!   margin.

use platoon_dynamics::sensors::SensorFault;
use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// What is done to the victim's radar.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SensorAttackMode {
    /// Blind the sensor entirely.
    Jam,
    /// Inject a constant range bias (positive = gap appears larger).
    Spoof {
        /// Range bias in metres.
        bias: f64,
    },
    /// Freeze the sensor at a fixed reading.
    Freeze {
        /// The stuck range in metres.
        value: f64,
    },
}

/// Configuration of the sensor attack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensorSpoofConfig {
    /// Index of the victim vehicle.
    pub victim_index: usize,
    /// Attack mode.
    pub mode: SensorAttackMode,
    /// When the attack starts, seconds.
    pub start: f64,
    /// When it stops (∞ = never).
    pub end: f64,
    /// Whether the LiDAR is hit as well (a thorough attacker blinds both
    /// ranging modalities; leaving LiDAR intact is what lets VPD-ADA
    /// cross-check).
    pub also_lidar: bool,
}

impl Default for SensorSpoofConfig {
    fn default() -> Self {
        SensorSpoofConfig {
            victim_index: 2,
            mode: SensorAttackMode::Spoof { bias: 8.0 },
            start: 10.0,
            end: f64::INFINITY,
            also_lidar: false,
        }
    }
}

/// The sensor attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
///     mode: SensorAttackMode::Spoof { bias: 5.0 },
///     start: 1.0,
///     ..Default::default()
/// })));
/// let summary = engine.run();
/// assert!(summary.min_gap < 10.0, "the victim closed in on the false range");
/// ```
#[derive(Clone, Debug)]
pub struct SensorSpoofAttack {
    config: SensorSpoofConfig,
    active: bool,
}

impl SensorSpoofAttack {
    /// Creates the attack.
    pub fn new(config: SensorSpoofConfig) -> Self {
        SensorSpoofAttack {
            config,
            active: false,
        }
    }

    /// Whether the fault is currently applied.
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn fault(&self) -> SensorFault {
        match self.config.mode {
            SensorAttackMode::Jam => SensorFault::Outage,
            SensorAttackMode::Spoof { bias } => SensorFault::Bias { offset: bias },
            SensorAttackMode::Freeze { value } => SensorFault::Frozen { value },
        }
    }
}

impl Attack for SensorSpoofAttack {
    fn name(&self) -> &'static str {
        "sensor-spoof"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Authenticity
    }

    fn before_comm(&mut self, world: &mut World, _rng: &mut StdRng) {
        let now = world.time;
        let should_run = now >= self.config.start && now < self.config.end;
        let Some(v) = world.vehicles.get_mut(self.config.victim_index) else {
            return;
        };
        if should_run && !self.active {
            v.sensors.radar.fault = self.fault();
            if self.config.also_lidar {
                v.sensors.lidar.fault = self.fault();
            }
            self.active = true;
        } else if !should_run && self.active {
            v.sensors.radar.fault = SensorFault::None;
            v.sensors.lidar.fault = SensorFault::None;
            self.active = false;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(40.0)
            .seed(29)
            .build()
    }

    #[test]
    fn range_bias_erodes_safety_margin() {
        let baseline = Engine::new(scenario("spoof-base")).run();
        let mut engine = Engine::new(scenario("spoof"));
        engine.add_attack(Box::new(SensorSpoofAttack::new(
            SensorSpoofConfig::default(),
        )));
        let attacked = engine.run();
        // The victim believes the gap is 8 m larger and closes in by ≈8 m.
        assert!(
            attacked.min_gap < baseline.min_gap - 4.0,
            "biased radar should shrink the real gap: {} vs {}",
            attacked.min_gap,
            baseline.min_gap
        );
    }

    #[test]
    fn large_bias_causes_collision() {
        let mut engine = Engine::new(scenario("spoof-crash"));
        engine.add_attack(Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
            mode: SensorAttackMode::Spoof { bias: 15.0 },
            ..Default::default()
        })));
        let attacked = engine.run();
        // A 15 m bias on a 10 m gap drives the victim into its predecessor
        // (CACC cross-checks nothing in the undefended baseline).
        assert!(
            attacked.collisions >= 1 || attacked.min_gap < 1.0,
            "15 m bias should be (near-)fatal: collisions {}, min gap {}",
            attacked.collisions,
            attacked.min_gap
        );
    }

    #[test]
    fn radar_jam_falls_back_to_comm_without_crash() {
        let mut engine = Engine::new(scenario("radar-jam"));
        engine.add_attack(Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
            mode: SensorAttackMode::Jam,
            ..Default::default()
        })));
        let attacked = engine.run();
        // Beacons still provide spacing; degraded but safe.
        assert_eq!(attacked.collisions, 0);
    }

    #[test]
    fn fault_clears_after_window() {
        let mut engine = Engine::new(scenario("spoof-window"));
        engine.add_attack(Box::new(SensorSpoofAttack::new(SensorSpoofConfig {
            start: 5.0,
            end: 10.0,
            ..Default::default()
        })));
        for _ in 0..120 {
            engine.step();
        }
        assert!(!engine.world().vehicles[2].sensors.radar.fault.is_active());
    }
}
