//! Replay attack (§V-A.1, Table II).
//!
//! > "Suppose an attacker recorded the message transmitted at time X and
//! > replayed that at time Y ... Member vehicle one will now discount the
//! > previous message and instead seek to close the gap. If repeatedly done
//! > ... the attacker will make the platoon oscillate."
//!
//! The attacker is a parked/roadside device: during the **record phase** it
//! overhears beacons (it needs no keys — the payload is opaque bytes that
//! remain valid if the receivers do not check freshness); during the
//! **replay phase** it retransmits recorded frames verbatim. Against a
//! platoon without anti-replay protection, stale kinematic data enters the
//! CACC law directly.

use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use platoon_v2x::medium::Receiver;
use platoon_v2x::message::{ChannelKind, Delivery, Frame, NodeId, Payload, Position};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Configuration of the replay attack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Start of the recording window, seconds.
    pub record_from: f64,
    /// End of the recording window / start of replaying, seconds.
    pub replay_from: f64,
    /// Replayed frames per second.
    pub replay_rate: f64,
    /// Radio node id the attacker transmits from.
    pub attacker_node: u64,
    /// Attacker's lateral offset from the platoon lane, metres.
    pub lateral_offset: f64,
    /// Transmit power in dBm (attackers often over-power to win capture).
    pub power_dbm: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            record_from: 0.0,
            replay_from: 15.0,
            replay_rate: 50.0,
            attacker_node: 6_000,
            lateral_offset: 6.0,
            power_dbm: 23.0,
        }
    }
}

/// The replay attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
///     record_from: 0.0,
///     replay_from: 2.0,
///     ..Default::default()
/// })));
/// engine.run();
/// let replay = engine.attacks()[0].as_any().downcast_ref::<ReplayAttack>().unwrap();
/// assert!(replay.replayed_count() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct ReplayAttack {
    config: ReplayConfig,
    recorded: Vec<Payload>,
    replayed: u64,
    carry: f64,
}

impl ReplayAttack {
    /// Creates the attack.
    pub fn new(config: ReplayConfig) -> Self {
        ReplayAttack {
            config,
            recorded: Vec::new(),
            replayed: 0,
            carry: 0.0,
        }
    }

    /// Frames recorded so far.
    pub fn recorded_count(&self) -> usize {
        self.recorded.len()
    }

    /// Frames replayed so far.
    pub fn replayed_count(&self) -> u64 {
        self.replayed
    }

    /// The attacker drives alongside the platoon's mid-point.
    fn position(&self, world: &World) -> Position {
        let n = world.vehicles.len();
        let mid = world.vehicles[n / 2].vehicle.state.position;
        (mid, self.config.lateral_offset)
    }
}

impl Attack for ReplayAttack {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Integrity
    }

    fn observe(&mut self, world: &mut World, _rng: &mut StdRng, deliveries: &[Delivery]) {
        let now = world.time;
        if now < self.config.record_from || now >= self.config.replay_from {
            return;
        }
        for d in deliveries {
            if d.receiver == NodeId(self.config.attacker_node) && d.channel == ChannelKind::Dsrc {
                self.recorded.push(d.payload.clone());
            }
        }
    }

    fn on_air(&mut self, world: &mut World, rng: &mut StdRng, frames: &mut Vec<Frame>) {
        let now = world.time;
        if now < self.config.replay_from || self.recorded.is_empty() {
            return;
        }
        // Fractional-rate accumulator over the communication step.
        self.carry += self.config.replay_rate * world.medium.step_len;
        let burst = self.carry.floor() as u64;
        self.carry -= burst as f64;
        let origin = self.position(world);
        for _ in 0..burst {
            // Replay a random recorded frame verbatim.
            let idx = rng.gen_range(0..self.recorded.len());
            frames.push(Frame {
                sender: NodeId(self.config.attacker_node),
                origin,
                power_dbm: self.config.power_dbm,
                channel: ChannelKind::Dsrc,
                payload: self.recorded[idx].clone(),
            });
            self.replayed += 1;
        }
    }

    fn receiver(&self, world: &World) -> Option<Receiver> {
        Some(Receiver {
            id: NodeId(self.config.attacker_node),
            position: self.position(world),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str) -> Scenario {
        // A brake-test workload makes the recorded window contain both
        // cruise and hard-braking beacons — replaying them against the
        // later cruise phase feeds the string maximally conflicting data,
        // the exact §V-A.1 scenario ("close the gap" vs "back off").
        use platoon_dynamics::profiles::SpeedProfile;
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(60.0)
            .profile(SpeedProfile::BrakeTest {
                cruise: 25.0,
                low: 15.0,
                brake_at: 8.0,
                hold: 5.0,
            })
            .seed(3)
            .build()
    }

    #[test]
    fn replay_destabilises_undefended_platoon() {
        let baseline = Engine::new(scenario("replay-baseline")).run();

        let mut engine = Engine::new(scenario("replay-attack"));
        engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig::default())));
        let attacked = engine.run();

        let attack = engine.attacks()[0]
            .as_any()
            .downcast_ref::<ReplayAttack>()
            .unwrap();
        assert!(
            attack.recorded_count() > 50,
            "should record plenty of beacons"
        );
        assert!(
            attack.replayed_count() > 500,
            "should replay for 45 s at 50 Hz"
        );
        assert!(
            attacked.oscillation_energy > 3.0 * baseline.oscillation_energy,
            "replay must inflate oscillation energy: attacked {} vs baseline {}",
            attacked.oscillation_energy,
            baseline.oscillation_energy
        );
        assert!(attacked.max_spacing_error > baseline.max_spacing_error);
    }

    #[test]
    fn replay_records_nothing_before_window() {
        let mut engine = Engine::new(scenario("replay-window"));
        engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
            record_from: 1_000.0,
            replay_from: 2_000.0,
            ..Default::default()
        })));
        engine.run();
        let attack = engine.attacks()[0]
            .as_any()
            .downcast_ref::<ReplayAttack>()
            .unwrap();
        assert_eq!(attack.recorded_count(), 0);
        assert_eq!(attack.replayed_count(), 0);
    }

    #[test]
    fn signatures_alone_do_not_stop_replay() {
        // The replayed bytes carry valid signatures: a PKI deployment
        // without freshness checking still accepts them (the paper's point
        // that keys must be combined with timestamps, §VI-A.1).
        use platoon_dynamics::profiles::SpeedProfile;
        let build = |label: &str| {
            Scenario::builder()
                .label(label)
                .vehicles(6)
                .duration(60.0)
                .auth(AuthMode::Pki)
                .profile(SpeedProfile::BrakeTest {
                    cruise: 25.0,
                    low: 15.0,
                    brake_at: 8.0,
                    hold: 5.0,
                })
                .seed(3)
                .build()
        };
        let mut engine = Engine::new(build("replay-pki"));
        engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig::default())));
        let attacked = engine.run();
        let baseline = Engine::new(build("pki-base")).run();
        assert!(
            attacked.oscillation_energy > 2.0 * baseline.oscillation_energy,
            "replay should still hurt under PKI without anti-replay: {} vs {}",
            attacked.oscillation_energy,
            baseline.oscillation_energy
        );
    }
}
