//! Insider false-data injection (§V-A, Table II's FDI umbrella).
//!
//! > "Another way an attacker can carry out an FDI attack \[is\] when an
//! > attacker is part of a platoon. The attacker can deliberately transmit
//! > false or misleading information. Members of the platoon will react to
//! > this information believing that it is from a legitimate source."
//!
//! The insider is a *legitimate member with valid keys* — the case where
//! signatures and MACs are powerless, because the attacker's credentials
//! are real. Only behavioural defenses (control-algorithm plausibility
//! checks, VPD-ADA, trust management) can catch it, which is exactly the
//! ablation experiment F1/F6 runs.

use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::{BeaconLie, World};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Configuration of the insider falsification attack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FalsificationConfig {
    /// Index of the malicious member.
    pub insider_index: usize,
    /// When the lying starts, seconds.
    pub start: f64,
    /// When it stops (∞ = never).
    pub end: f64,
    /// The lie injected into every beacon.
    pub lie: BeaconLieConfig,
}

/// Serializable mirror of [`BeaconLie`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BeaconLieConfig {
    /// Position offset, metres.
    pub position_offset: f64,
    /// Speed offset, m/s.
    pub speed_offset: f64,
    /// Acceleration offset, m/s².
    pub accel_offset: f64,
}

impl Default for FalsificationConfig {
    fn default() -> Self {
        FalsificationConfig {
            insider_index: 2,
            start: 10.0,
            end: f64::INFINITY,
            lie: BeaconLieConfig {
                position_offset: 0.0,
                speed_offset: 0.0,
                accel_offset: -4.0,
            },
        }
    }
}

/// The insider attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(FalsificationAttack::new(FalsificationConfig {
///     insider_index: 2,
///     start: 1.0,
///     ..Default::default()
/// })));
/// engine.run();
/// assert!(engine.world().vehicles[2].beacon_lie.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct FalsificationAttack {
    config: FalsificationConfig,
    lying: bool,
}

impl FalsificationAttack {
    /// Creates the attack.
    pub fn new(config: FalsificationConfig) -> Self {
        FalsificationAttack {
            config,
            lying: false,
        }
    }

    /// Whether the insider is currently lying.
    pub fn is_lying(&self) -> bool {
        self.lying
    }
}

impl Attack for FalsificationAttack {
    fn name(&self) -> &'static str {
        "insider-fdi"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Integrity
    }

    fn before_comm(&mut self, world: &mut World, _rng: &mut StdRng) {
        let now = world.time;
        let should_lie = now >= self.config.start && now < self.config.end;
        let Some(v) = world.vehicles.get_mut(self.config.insider_index) else {
            return;
        };
        if should_lie && !self.lying {
            v.beacon_lie = Some(BeaconLie {
                position_offset: self.config.lie.position_offset,
                speed_offset: self.config.lie.speed_offset,
                accel_offset: self.config.lie.accel_offset,
            });
            self.lying = true;
        } else if !should_lie && self.lying {
            v.beacon_lie = None;
            self.lying = false;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str, auth: AuthMode) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(40.0)
            .auth(auth)
            .seed(37)
            .build()
    }

    #[test]
    fn insider_lies_destabilise_followers() {
        let baseline = Engine::new(scenario("fdi-base", AuthMode::None)).run();
        let mut engine = Engine::new(scenario("fdi", AuthMode::None));
        engine.add_attack(Box::new(FalsificationAttack::new(
            FalsificationConfig::default(),
        )));
        let attacked = engine.run();
        assert!(
            attacked.oscillation_energy > 2.0 * baseline.oscillation_energy,
            "insider lies should disturb the string: {} vs {}",
            attacked.oscillation_energy,
            baseline.oscillation_energy
        );
    }

    #[test]
    fn valid_credentials_defeat_pki() {
        // The key point: the insider signs its lies with a *valid* key, so a
        // PKI deployment accepts every forged beacon.
        let mut engine = Engine::new(scenario("fdi-pki", AuthMode::Pki));
        engine.add_attack(Box::new(FalsificationAttack::new(
            FalsificationConfig::default(),
        )));
        let attacked = engine.run();
        assert_eq!(
            attacked.rejected_messages, 0,
            "signed insider lies must pass verification"
        );
        let baseline = Engine::new(scenario("fdi-pki-base", AuthMode::Pki)).run();
        assert!(
            attacked.oscillation_energy > 2.0 * baseline.oscillation_energy,
            "PKI alone cannot stop an insider: {} vs {}",
            attacked.oscillation_energy,
            baseline.oscillation_energy
        );
    }

    #[test]
    fn lie_window_respected() {
        let mut engine = Engine::new(scenario("fdi-window", AuthMode::None));
        engine.add_attack(Box::new(FalsificationAttack::new(FalsificationConfig {
            start: 5.0,
            end: 10.0,
            ..Default::default()
        })));
        for _ in 0..120 {
            engine.step();
        }
        assert!(engine.world().vehicles[2].beacon_lie.is_none());
    }
}
