//! Fake manoeuvre attack (§V-A.3, Table II).
//!
//! > "Platoon manoeuvre attacks include fake entrance, fake leave, and fake
//! > split. A fake entrance request, if successful, will cause two vehicles
//! > to increase their intermediate spacing ... Fake leave and split
//! > messages are capable of causing the most problems as they can break
//! > down a platoon into individual members."
//!
//! The attacker forges manoeuvre messages claiming the leader's (or a
//! member's) identity. Without message authentication, members obey; with
//! signatures the forgeries fail verification.

use platoon_crypto::cert::PrincipalId;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::{PlatoonId, PlatoonMessage};
use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use platoon_v2x::message::{ChannelKind, Frame, NodeId, Position};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Which forged manoeuvre is injected.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ManeuverForgery {
    /// Fake split: the trailing part of the platoon breaks away.
    Split {
        /// Platoon-local index at which the string is severed.
        at_index: u32,
    },
    /// Fake entrance: a phantom gap is opened at `slot`.
    GapOpen {
        /// Slot where the gap opens.
        slot: u32,
        /// Extra gap demanded, metres.
        extra_gap: f64,
    },
    /// Fake leave: a member is announced as leaving (the leader drops it
    /// from the roster).
    Leave {
        /// The member whose departure is forged.
        member: u64,
    },
}

/// Configuration of the fake-manoeuvre attack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FakeManeuverConfig {
    /// The forgery to inject.
    pub forgery: ManeuverForgery,
    /// When to inject, seconds.
    pub inject_at: f64,
    /// Re-injection period (0 = inject once).
    pub repeat_period: f64,
    /// Attacker radio node.
    pub attacker_node: u64,
}

impl Default for FakeManeuverConfig {
    fn default() -> Self {
        FakeManeuverConfig {
            forgery: ManeuverForgery::Split { at_index: 2 },
            inject_at: 10.0,
            repeat_period: 0.0,
            attacker_node: 7_500,
        }
    }
}

/// The fake-manoeuvre attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
///     forgery: ManeuverForgery::Split { at_index: 2 },
///     inject_at: 1.0,
///     ..Default::default()
/// })));
/// let summary = engine.run();
/// assert!(summary.fragmented_fraction > 0.0, "the forged split was obeyed");
/// ```
#[derive(Clone, Debug)]
pub struct FakeManeuverAttack {
    config: FakeManeuverConfig,
    injections: u64,
    last_injection: f64,
}

impl FakeManeuverAttack {
    /// Creates the attack.
    pub fn new(config: FakeManeuverConfig) -> Self {
        FakeManeuverAttack {
            config,
            injections: 0,
            last_injection: f64::NEG_INFINITY,
        }
    }

    /// Number of forged messages transmitted.
    pub fn injections(&self) -> u64 {
        self.injections
    }

    fn position(&self, world: &World) -> Position {
        let n = world.vehicles.len();
        (world.vehicles[n / 2].vehicle.state.position, 5.0)
    }
}

impl Attack for FakeManeuverAttack {
    fn name(&self) -> &'static str {
        "fake-maneuver"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Integrity
    }

    fn on_air(&mut self, world: &mut World, _rng: &mut StdRng, frames: &mut Vec<Frame>) {
        let now = world.time;
        if now < self.config.inject_at {
            return;
        }
        if self.injections > 0 {
            if self.config.repeat_period <= 0.0 {
                return;
            }
            if now - self.last_injection < self.config.repeat_period {
                return;
            }
        }
        self.last_injection = now;
        self.injections += 1;

        let leader = &world.vehicles[0];
        let leader_principal = leader.principal;
        let platoon = leader.platoon;
        let msg = match self.config.forgery {
            ManeuverForgery::Split { at_index } => PlatoonMessage::SplitCommand {
                platoon,
                at_index,
                new_platoon: PlatoonId(900 + self.injections as u32),
                timestamp: now,
            },
            ManeuverForgery::GapOpen { slot, extra_gap } => PlatoonMessage::GapOpen {
                platoon,
                slot,
                extra_gap,
                timestamp: now,
            },
            ManeuverForgery::Leave { member } => PlatoonMessage::LeaveRequest {
                member: PrincipalId(member),
                platoon,
                timestamp: now,
            },
        };
        // Forgery: claim the relevant identity with a plain envelope. (A
        // fake leave claims the victim member; splits/gaps claim the leader.)
        let claimed = match self.config.forgery {
            ManeuverForgery::Leave { member } => PrincipalId(member),
            _ => leader_principal,
        };
        frames.push(Frame {
            sender: NodeId(self.config.attacker_node),
            origin: self.position(world),
            power_dbm: world.medium.dsrc.default_tx_power_dbm + 3.0,
            channel: ChannelKind::Dsrc,
            payload: Envelope::plain(claimed, &msg).encode().into(),
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str, auth: AuthMode) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(40.0)
            .auth(auth)
            .seed(11)
            .build()
    }

    #[test]
    fn fake_split_fragments_undefended_platoon() {
        let mut engine = Engine::new(scenario("fake-split", AuthMode::None));
        engine.add_attack(Box::new(FakeManeuverAttack::new(
            FakeManeuverConfig::default(),
        )));
        let s = engine.run();
        assert!(
            s.fragmented_fraction > 0.5,
            "platoon should spend most of the run fragmented: {}",
            s.fragmented_fraction
        );
        assert!(engine.world().platoon_count() > 1);
        assert_eq!(s.collisions, 0);
    }

    #[test]
    fn fake_split_rejected_under_pki() {
        let mut engine = Engine::new(scenario("fake-split-pki", AuthMode::Pki));
        engine.add_attack(Box::new(FakeManeuverAttack::new(
            FakeManeuverConfig::default(),
        )));
        let s = engine.run();
        assert_eq!(
            s.fragmented_fraction, 0.0,
            "signed deployment must ignore forgeries"
        );
        assert!(
            s.rejected_messages > 0,
            "the forgery should be logged as rejected"
        );
    }

    #[test]
    fn fake_gap_open_wastes_spacing() {
        let baseline = Engine::new(scenario("gap-base", AuthMode::None)).run();
        let mut engine = Engine::new(scenario("fake-gap", AuthMode::None));
        engine.add_attack(Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
            forgery: ManeuverForgery::GapOpen {
                slot: 2,
                extra_gap: 30.0,
            },
            inject_at: 10.0,
            repeat_period: 5.0,
            ..Default::default()
        })));
        let attacked = engine.run();
        assert!(
            attacked.max_spacing_error > baseline.max_spacing_error + 10.0,
            "phantom entrance gap should open ~30 m: {} vs {}",
            attacked.max_spacing_error,
            baseline.max_spacing_error
        );
    }

    #[test]
    fn fake_leave_shrinks_roster() {
        let mut engine = Engine::new(scenario("fake-leave", AuthMode::None));
        engine.add_attack(Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
            forgery: ManeuverForgery::Leave { member: 3 },
            inject_at: 5.0,
            repeat_period: 0.0,
            ..Default::default()
        })));
        engine.run();
        // Physical vehicles: 6. Roster after the forged leave: 5.
        assert_eq!(engine.maneuvers().roster().len(), 5);
        assert!(!engine
            .maneuvers()
            .roster()
            .contains(platoon_crypto::cert::PrincipalId(3)));
    }

    #[test]
    fn injection_respects_schedule() {
        let mut engine = Engine::new(scenario("sched", AuthMode::None));
        engine.add_attack(Box::new(FakeManeuverAttack::new(FakeManeuverConfig {
            inject_at: 10.0,
            repeat_period: 0.0,
            ..Default::default()
        })));
        for _ in 0..50 {
            engine.step(); // 5 s: nothing yet
        }
        let a = engine.attacks()[0]
            .as_any()
            .downcast_ref::<FakeManeuverAttack>()
            .unwrap();
        assert_eq!(a.injections(), 0);
        for _ in 0..100 {
            engine.step();
        }
        let a = engine.attacks()[0]
            .as_any()
            .downcast_ref::<FakeManeuverAttack>()
            .unwrap();
        assert_eq!(
            a.injections(),
            1,
            "single-shot forgery injects exactly once"
        );
    }
}
