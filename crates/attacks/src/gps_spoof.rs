//! GPS spoofing attack (§V-G, Table II).
//!
//! > "GPS spoofing ... is done by an attacker copying the GPS transmissions
//! > and replaying them at a stronger signal from another location, making
//! > the vehicle think it is elsewhere ... Such an attack often starts very
//! > close to the victim vehicle ... and can slowly start to move away from
//! > the victim, making the victim GPS think that the attacker is the GPS
//! > source and now follows them."
//!
//! The slow "walk-off" is modelled as a [`SensorFault::Ramp`] on the
//! victim's GPS: the claimed position drifts at `drift_rate` m/s with no
//! detectable jump. Because beacons carry GPS positions, the lie propagates
//! into the platoon's shared picture — which is what the VPD-ADA defense
//! (F6) cross-checks against radar/LiDAR evidence.

use platoon_dynamics::sensors::SensorFault;
use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Configuration of the GPS spoofing attack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpsSpoofConfig {
    /// Index of the victim vehicle.
    pub victim_index: usize,
    /// When the walk-off begins, seconds.
    pub start: f64,
    /// Drift rate in m/s (positive = victim believes it is further ahead).
    pub drift_rate: f64,
}

impl Default for GpsSpoofConfig {
    fn default() -> Self {
        GpsSpoofConfig {
            victim_index: 2,
            start: 10.0,
            drift_rate: 1.0,
        }
    }
}

/// The GPS spoofing attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(GpsSpoofAttack::new(GpsSpoofConfig {
///     victim_index: 2,
///     start: 1.0,
///     drift_rate: 2.0,
/// })));
/// engine.run();
/// assert!(engine.world().vehicles[2].sensors.gps.fault.is_active());
/// ```
#[derive(Clone, Debug)]
pub struct GpsSpoofAttack {
    config: GpsSpoofConfig,
    engaged: bool,
}

impl GpsSpoofAttack {
    /// Creates the attack.
    pub fn new(config: GpsSpoofConfig) -> Self {
        GpsSpoofAttack {
            config,
            engaged: false,
        }
    }

    /// Whether the spoofer has locked onto the victim.
    pub fn engaged(&self) -> bool {
        self.engaged
    }
}

impl Attack for GpsSpoofAttack {
    fn name(&self) -> &'static str {
        "gps-spoof"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Authenticity
    }

    fn before_comm(&mut self, world: &mut World, _rng: &mut StdRng) {
        if self.engaged || world.time < self.config.start {
            return;
        }
        let Some(v) = world.vehicles.get_mut(self.config.victim_index) else {
            return;
        };
        v.sensors.gps.fault = SensorFault::Ramp {
            rate: self.config.drift_rate,
            start: self.config.start,
        };
        self.engaged = true;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(40.0)
            .seed(23)
            .build()
    }

    #[test]
    fn spoofed_gps_poisons_claimed_positions() {
        let mut engine = Engine::new(scenario("gps"));
        engine.add_attack(Box::new(GpsSpoofAttack::new(GpsSpoofConfig::default())));
        let _ = engine.run();
        assert!(engine.attacks()[0]
            .as_any()
            .downcast_ref::<GpsSpoofAttack>()
            .unwrap()
            .engaged());
        // After 30 s of 1 m/s drift, the victim's GPS claim is ~30 m off its
        // true position.
        let victim = &engine.world().vehicles[2];
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let (claimed, _) = victim
            .sensors
            .gps
            .measure(
                victim.vehicle.state.position,
                victim.vehicle.state.speed,
                40.0,
                &mut rng,
            )
            .unwrap();
        let offset = claimed - victim.vehicle.state.position;
        assert!(
            (25.0..35.0).contains(&offset),
            "drift after 30 s should be ≈30 m, got {offset}"
        );
    }

    #[test]
    fn platoon_survives_on_radar_but_claims_diverge() {
        // CACC prefers radar ranging, so the *physical* platoon stays intact
        // — the danger is the poisoned shared picture (beacons), which is
        // what downstream consumers (and the VPD-ADA detector) see.
        let baseline = Engine::new(scenario("gps-base")).run();
        let mut engine = Engine::new(scenario("gps-attack"));
        engine.add_attack(Box::new(GpsSpoofAttack::new(GpsSpoofConfig::default())));
        let attacked = engine.run();
        assert_eq!(attacked.collisions, baseline.collisions);
        // The follower of the victim hears a predecessor beacon that has
        // walked ~30 m ahead of reality.
        let follower = &engine.world().vehicles[3];
        let heard = follower.comm.predecessor.expect("heard the victim");
        let truth = engine.world().vehicles[2].vehicle.state.position;
        assert!(
            heard.peer.position - truth > 20.0,
            "claimed position should lead truth: {} vs {}",
            heard.peer.position,
            truth
        );
    }

    #[test]
    fn no_drift_before_start() {
        let mut engine = Engine::new(scenario("gps-window"));
        engine.add_attack(Box::new(GpsSpoofAttack::new(GpsSpoofConfig {
            start: 100.0,
            ..Default::default()
        })));
        for _ in 0..100 {
            engine.step();
        }
        assert!(!engine.attacks()[0]
            .as_any()
            .downcast_ref::<GpsSpoofAttack>()
            .unwrap()
            .engaged());
        assert!(!engine.world().vehicles[2].sensors.gps.fault.is_active());
    }
}
