//! Jamming attack (§V-B, Table II).
//!
//! > "By flooding the communication frequencies with random noise and junk,
//! > it becomes impossible for the platoon to maintain its communications
//! > ... All savings are lost by disbanding the platoon."
//!
//! The attack plants an RF noise source that drives alongside the platoon.
//! It needs no protocol knowledge at all — only the channel frequency —
//! which is why the paper calls it "possibly the most straightforward way
//! for an attacker to affect a platoon".

use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use platoon_v2x::jamming::{Jammer, JammingStrategy};
use platoon_v2x::message::ChannelKind;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Configuration of the jamming attack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JammingConfig {
    /// When the jammer switches on, seconds.
    pub start: f64,
    /// When it switches off (∞ = never).
    pub end: f64,
    /// Jammer transmit power in dBm.
    pub power_dbm: f64,
    /// Lateral offset from the platoon lane, metres.
    pub lateral_offset: f64,
    /// Temporal strategy.
    pub strategy: JammingStrategy,
    /// Channel being flooded.
    pub target: ChannelKind,
    /// Whether the jammer paces the platoon (true) or sits at a fixed
    /// roadside position (false).
    pub mobile: bool,
    /// Roadside position when `mobile == false`.
    pub fixed_position: f64,
}

impl Default for JammingConfig {
    fn default() -> Self {
        JammingConfig {
            start: 10.0,
            end: f64::INFINITY,
            power_dbm: 33.0,
            lateral_offset: 6.0,
            strategy: JammingStrategy::Continuous,
            target: ChannelKind::Dsrc,
            mobile: true,
            fixed_position: 0.0,
        }
    }
}

/// The jamming attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(JammingAttack::new(JammingConfig {
///     start: 1.0,
///     ..Default::default()
/// })));
/// let summary = engine.run();
/// assert!(summary.leader_tail_pdr < 0.9, "the jammer cost beacons");
/// ```
#[derive(Clone, Debug)]
pub struct JammingAttack {
    config: JammingConfig,
    active: bool,
}

impl JammingAttack {
    /// Creates the attack.
    pub fn new(config: JammingConfig) -> Self {
        JammingAttack {
            config,
            active: false,
        }
    }

    /// Whether the jammer is currently planted in the world.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Attack for JammingAttack {
    fn name(&self) -> &'static str {
        "jamming"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Availability
    }

    fn before_comm(&mut self, world: &mut World, _rng: &mut StdRng) {
        let now = world.time;
        let should_run = now >= self.config.start && now < self.config.end;

        // The attack owns exactly one jammer slot; re-plant it each step so
        // a mobile jammer tracks the platoon's centre.
        world.jammers.retain(|j| {
            !(j.power_dbm == self.config.power_dbm
                && j.target == self.config.target
                && j.position.1 == self.config.lateral_offset)
        });
        self.active = should_run;
        if !should_run {
            return;
        }
        let x = if self.config.mobile {
            let n = world.vehicles.len();
            world.vehicles[n / 2].vehicle.state.position
        } else {
            self.config.fixed_position
        };
        world.jammers.push(Jammer {
            position: (x, self.config.lateral_offset),
            power_dbm: self.config.power_dbm,
            strategy: self.config.strategy,
            target: self.config.target,
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str, comms: CommsMode) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(6)
            .duration(40.0)
            .comms(comms)
            .seed(5)
            .build()
    }

    #[test]
    fn jammer_kills_dsrc_pdr() {
        let baseline = Engine::new(scenario("jam-base", CommsMode::DsrcOnly)).run();

        let mut engine = Engine::new(scenario("jam", CommsMode::DsrcOnly));
        engine.add_attack(Box::new(JammingAttack::new(JammingConfig::default())));
        let attacked = engine.run();

        assert!(baseline.leader_tail_pdr > 0.9);
        assert!(
            attacked.leader_tail_pdr < 0.5 * baseline.leader_tail_pdr,
            "jamming should crush PDR: {} vs {}",
            attacked.leader_tail_pdr,
            baseline.leader_tail_pdr
        );
    }

    #[test]
    fn cacc_degrades_but_radar_prevents_collisions() {
        // The graceful-degradation story: jammed CACC falls back to radar
        // (larger gaps, worse tracking) but must not crash.
        let mut engine = Engine::new(scenario("jam-safety", CommsMode::DsrcOnly));
        engine.add_attack(Box::new(JammingAttack::new(JammingConfig::default())));
        let attacked = engine.run();
        assert_eq!(
            attacked.collisions, 0,
            "radar fallback must keep the platoon safe"
        );
        // Gaps open far beyond the CACC set-point: platooning benefit lost.
        assert!(
            attacked.max_spacing_error > 5.0,
            "jammed platoon should open large gaps, got {}",
            attacked.max_spacing_error
        );
    }

    #[test]
    fn jammer_respects_time_window() {
        let mut engine = Engine::new(scenario("jam-window", CommsMode::DsrcOnly));
        engine.add_attack(Box::new(JammingAttack::new(JammingConfig {
            start: 5.0,
            end: 10.0,
            ..Default::default()
        })));
        // Step to 7 s: active.
        for _ in 0..70 {
            engine.step();
        }
        assert_eq!(engine.world().jammers.len(), 1);
        // Step past 10 s: inactive.
        for _ in 0..40 {
            engine.step();
        }
        assert!(engine.world().jammers.is_empty());
    }

    #[test]
    fn hybrid_vlc_survives_jamming() {
        // SP-VLC relays the leader's beacon hop-by-hop down the optical
        // chain, so CACC keeps both its feeds under RF jamming and the
        // platoon holds its tight gaps; RF-only degrades to radar ACC with
        // ~3x larger spacing.
        let mut hybrid = Engine::new(scenario("jam-hybrid", CommsMode::HybridVlc));
        hybrid.add_attack(Box::new(JammingAttack::new(JammingConfig::default())));
        let hybrid_run = hybrid.run();

        let mut rf_only = Engine::new(scenario("jam-rf", CommsMode::DsrcOnly));
        rf_only.add_attack(Box::new(JammingAttack::new(JammingConfig::default())));
        let rf_run = rf_only.run();

        assert!(
            hybrid_run.max_spacing_error < 0.5 * rf_run.max_spacing_error,
            "hybrid must track far tighter under jamming: {} vs {}",
            hybrid_run.max_spacing_error,
            rf_run.max_spacing_error
        );
        assert_eq!(hybrid_run.collisions, 0);
    }
}
