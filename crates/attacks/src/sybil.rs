//! Sybil attack (§V-A.2, Table II).
//!
//! > "The attacker joins the platoon and then creates multiple ghost
//! > vehicles that also request to join the platoon. The presence of which
//! > will leave the platoon with large gaps in it or for the platoon leader
//! > to think there are more vehicles part of the platoon than there really
//! > are."
//!
//! One physical radio fabricates `ghost_count` identities. Each ghost sends
//! join requests (claiming mid-platoon positions so gaps open *inside* the
//! string) and then beacons an "arrival" so the undefended leader even
//! completes the join — inflating the roster with phantoms. With PKI
//! admission, ghosts present no valid certificate and are denied at the
//! door.

use platoon_crypto::cert::PrincipalId;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::{Beacon, PlatoonMessage, Role};
use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use platoon_v2x::medium::Receiver;
use platoon_v2x::message::{ChannelKind, Delivery, Frame, NodeId, Position};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashSet;

/// Configuration of the Sybil attack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SybilConfig {
    /// Number of ghost identities fabricated.
    pub ghost_count: usize,
    /// When the ghosts start requesting, seconds.
    pub start: f64,
    /// Seconds between request rounds.
    pub request_period: f64,
    /// First principal id used for ghosts.
    pub ghost_id_base: u64,
    /// Radio node of the attacker's single physical device.
    pub attacker_node: u64,
    /// Whether ghosts claim mid-platoon positions (forcing inside gaps)
    /// rather than tail positions.
    pub claim_mid_platoon: bool,
}

impl Default for SybilConfig {
    fn default() -> Self {
        SybilConfig {
            ghost_count: 5,
            start: 5.0,
            request_period: 1.0,
            ghost_id_base: 7_000,
            attacker_node: 7_000,
            claim_mid_platoon: true,
        }
    }
}

/// The Sybil attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(SybilAttack::new(SybilConfig {
///     start: 1.0,
///     ghost_count: 3,
///     ..Default::default()
/// })));
/// engine.run();
/// // The undefended roster now contains phantoms.
/// assert!(engine.maneuvers().roster().len() >= engine.world().vehicles.len());
/// ```
#[derive(Clone, Debug)]
pub struct SybilAttack {
    config: SybilConfig,
    last_round: f64,
    /// Ghosts that have been granted a slot (observed JoinAccept).
    accepted_ghosts: HashSet<PrincipalId>,
    /// Slots granted per ghost.
    granted: Vec<(PrincipalId, u32)>,
    requests_sent: u64,
    seq: u64,
}

impl SybilAttack {
    /// Creates the attack.
    pub fn new(config: SybilConfig) -> Self {
        SybilAttack {
            config,
            last_round: f64::NEG_INFINITY,
            accepted_ghosts: HashSet::new(),
            granted: Vec::new(),
            requests_sent: 0,
            seq: 0,
        }
    }

    /// Ghost identities whose joins were accepted.
    pub fn accepted_ghost_count(&self) -> usize {
        self.accepted_ghosts.len()
    }

    /// Total join requests transmitted.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    fn position(&self, world: &World) -> Position {
        let tail = world
            .vehicles
            .last()
            .map(|v| v.vehicle.state.position)
            .unwrap_or(0.0);
        (tail - 30.0, 3.0)
    }

    fn ghost_principal(&self, i: usize) -> PrincipalId {
        PrincipalId(self.config.ghost_id_base + i as u64)
    }
}

impl Attack for SybilAttack {
    fn name(&self) -> &'static str {
        "sybil"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Authenticity
    }

    fn on_air(&mut self, world: &mut World, _rng: &mut StdRng, frames: &mut Vec<Frame>) {
        let now = world.time;
        if now < self.config.start {
            return;
        }
        let origin = self.position(world);
        let power = world.medium.dsrc.default_tx_power_dbm;
        let platoon = world.vehicles[0].platoon;

        // Arrival beacons for ghosts already granted slots: the phantom
        // "arrives" so the leader completes the join.
        let leader_pos = world.vehicles[0].vehicle.state.position;
        let spacing = world.vehicles[0].vehicle.params.length + 10.0;
        for &(ghost, slot) in &self.granted {
            self.seq += 1;
            let beacon = PlatoonMessage::Beacon(Beacon {
                sender: ghost,
                platoon,
                role: Role::JoinLeave,
                seq: self.seq,
                timestamp: now,
                position: leader_pos - slot as f64 * spacing,
                speed: world.vehicles[0].vehicle.state.speed,
                accel: 0.0,
                length: world.vehicles[0].vehicle.params.length,
            });
            frames.push(Frame {
                sender: NodeId(self.config.attacker_node),
                origin,
                power_dbm: power,
                channel: ChannelKind::Dsrc,
                payload: Envelope::plain(ghost, &beacon).encode().into(),
            });
        }

        // Join-request rounds.
        if now - self.last_round < self.config.request_period {
            return;
        }
        self.last_round = now;
        let n = world.vehicles.len();
        for i in 0..self.config.ghost_count {
            let ghost = self.ghost_principal(i);
            if self.accepted_ghosts.contains(&ghost) {
                continue;
            }
            let claimed_position = if self.config.claim_mid_platoon {
                // Spread claims across the interior of the string.
                let slot = 1 + (i % (n - 1).max(1));
                leader_pos - slot as f64 * spacing + spacing / 2.0
            } else {
                origin.0
            };
            let msg = PlatoonMessage::JoinRequest {
                requester: ghost,
                platoon,
                position: claimed_position,
                timestamp: now,
            };
            frames.push(Frame {
                sender: NodeId(self.config.attacker_node),
                origin,
                power_dbm: power,
                channel: ChannelKind::Dsrc,
                payload: Envelope::plain(ghost, &msg).encode().into(),
            });
            self.requests_sent += 1;
        }
    }

    fn observe(&mut self, _world: &mut World, _rng: &mut StdRng, deliveries: &[Delivery]) {
        for d in deliveries {
            if d.receiver != NodeId(self.config.attacker_node) {
                continue;
            }
            let Ok(env) = Envelope::decode(&d.payload) else {
                continue;
            };
            if let Ok(PlatoonMessage::JoinAccept {
                requester, slot, ..
            }) = env.open_unverified()
            {
                let base = self.config.ghost_id_base;
                if (base..base + self.config.ghost_count as u64).contains(&requester.0)
                    && self.accepted_ghosts.insert(requester)
                {
                    self.granted.push((requester, slot));
                }
            }
        }
    }

    fn receiver(&self, world: &World) -> Option<Receiver> {
        Some(Receiver {
            id: NodeId(self.config.attacker_node),
            position: self.position(world),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_sim::prelude::*;

    fn scenario(label: &str, auth: AuthMode) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(5)
            .duration(40.0)
            .auth(auth)
            .max_platoon_size(12)
            .seed(9)
            .build()
    }

    #[test]
    fn ghosts_infiltrate_undefended_roster() {
        let mut engine = Engine::new(scenario("sybil", AuthMode::None));
        engine.add_attack(Box::new(SybilAttack::new(SybilConfig::default())));
        let summary = engine.run();
        let attack = engine.attacks()[0]
            .as_any()
            .downcast_ref::<SybilAttack>()
            .unwrap();

        assert!(attack.requests_sent() > 0);
        assert!(
            attack.accepted_ghost_count() >= 2,
            "ghosts should be admitted, got {}",
            attack.accepted_ghost_count()
        );
        // The roster now counts phantoms: more members than physical
        // vehicles — "the platoon leader [thinks] there are more vehicles
        // part of the platoon than there really are".
        assert!(
            engine.maneuvers().roster().len() > engine.world().vehicles.len(),
            "roster {} should exceed physical {}",
            engine.maneuvers().roster().len(),
            engine.world().vehicles.len()
        );
        assert!(summary.maneuvers.joins_completed >= 2);
    }

    #[test]
    fn ghost_gaps_open_inside_the_string() {
        let baseline = Engine::new(scenario("sybil-base", AuthMode::None)).run();
        let mut engine = Engine::new(scenario("sybil-gaps", AuthMode::None));
        engine.add_attack(Box::new(SybilAttack::new(SybilConfig::default())));
        let attacked = engine.run();
        assert!(
            attacked.max_spacing_error > baseline.max_spacing_error + 5.0,
            "ghost joins should force large interior gaps: {} vs {}",
            attacked.max_spacing_error,
            baseline.max_spacing_error
        );
    }

    #[test]
    fn pki_admission_blocks_ghosts() {
        let mut engine = Engine::new(scenario("sybil-pki", AuthMode::Pki));
        engine.add_attack(Box::new(SybilAttack::new(SybilConfig::default())));
        let summary = engine.run();
        let attack = engine.attacks()[0]
            .as_any()
            .downcast_ref::<SybilAttack>()
            .unwrap();
        assert_eq!(
            attack.accepted_ghost_count(),
            0,
            "unsigned ghost requests must be rejected under PKI"
        );
        assert_eq!(engine.maneuvers().roster().len(), 5);
        assert!(summary.maneuvers.joins_accepted == 0);
    }
}
