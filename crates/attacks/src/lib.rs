//! # platoon-attacks
//!
//! The canonical attack suite against vehicular platoon communication —
//! every attack catalogued by Taylor et al., *"Vehicular Platoon
//! Communication: Cybersecurity Threats and Open Challenges"* (DSN-W 2021),
//! Table II, implemented as a pluggable [`Attack`](platoon_sim::attack::Attack)
//! for the `platoon-sim` engine:
//!
//! | Module | Paper row | Attribute compromised |
//! |---|---|---|
//! | [`replay`] | Replay | integrity |
//! | [`sybil`] | Sybil attack | authenticity |
//! | [`fake_maneuver`] | Fake manoeuvre | integrity |
//! | [`jamming`] | Jamming | availability |
//! | [`eavesdrop`] | Eavesdropping | confidentiality |
//! | [`dos`] | Denial of Service | availability |
//! | [`impersonation`] | Impersonation | integrity |
//! | [`gps_spoof`] / [`sensor_spoof`] | Jamming & spoofing sensors | authenticity |
//! | [`malware`] | Malware | availability |
//! | [`falsification`] | FDI from an insider (§V-A) | integrity |
//!
//! [`registry`] holds Table II as data, binding each row to its
//! implementation and to the experiment that reproduces its claimed effect.
//!
//! # Examples
//!
//! ```
//! use platoon_attacks::prelude::*;
//! use platoon_sim::prelude::*;
//!
//! let scenario = Scenario::builder().vehicles(5).duration(20.0).build();
//! let mut engine = Engine::new(scenario);
//! engine.add_attack(Box::new(ReplayAttack::new(ReplayConfig {
//!     replay_from: 8.0,
//!     ..Default::default()
//! })));
//! let summary = engine.run();
//! assert!(summary.oscillation_energy > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dos;
pub mod eavesdrop;
pub mod fake_maneuver;
pub mod falsification;
pub mod gps_spoof;
pub mod impersonation;
pub mod jamming;
pub mod malware;
pub mod params;
pub mod registry;
pub mod replay;
pub mod sensor_spoof;
pub mod sybil;

/// Convenient glob-import of every attack and its configuration.
pub mod prelude {
    pub use crate::dos::{JoinFloodAttack, JoinFloodConfig};
    pub use crate::eavesdrop::{EavesdropAttack, EavesdropConfig, TrackPoint};
    pub use crate::fake_maneuver::{FakeManeuverAttack, FakeManeuverConfig, ManeuverForgery};
    pub use crate::falsification::{BeaconLieConfig, FalsificationAttack, FalsificationConfig};
    pub use crate::gps_spoof::{GpsSpoofAttack, GpsSpoofConfig};
    pub use crate::impersonation::{ImpersonationAttack, ImpersonationConfig};
    pub use crate::jamming::{JammingAttack, JammingConfig};
    pub use crate::malware::{MalwareAttack, MalwareConfig, MalwarePayload};
    pub use crate::params::{param_space, searchable_attacks, AttackParams, ParamKind, ParamSpec};
    pub use crate::registry::{
        catalog as attack_catalog, descriptor as attack_descriptor, Asset, AttackDescriptor,
    };
    pub use crate::replay::{ReplayAttack, ReplayConfig};
    pub use crate::sensor_spoof::{SensorAttackMode, SensorSpoofAttack, SensorSpoofConfig};
    pub use crate::sybil::{SybilAttack, SybilConfig};
}
