//! The canonical attack registry: Table II of the paper as data, with each
//! row bound to the module that implements it.

use platoon_sim::attack::SecurityAttribute;
use serde::{Deserialize, Serialize};

/// Platoon assets an attack targets (the §IV asset inventory).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Asset {
    /// The platoon leader.
    Leader,
    /// Platoon member vehicles.
    Members,
    /// Vehicles joining or leaving.
    JoinLeave,
    /// Roadside units.
    Rsu,
    /// The trusted authority / platoon service provider.
    TrustedAuthority,
    /// On-board sensors.
    Sensors,
    /// The V2V/V2I wireless channel itself.
    Channel,
}

/// One row of the canonical attack catalogue (Table II).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AttackDescriptor {
    /// Machine name, matching `Attack::name()` of the implementation.
    pub name: &'static str,
    /// Display name as used in the paper's Table II.
    pub display_name: &'static str,
    /// Security attribute compromised (§IV classification).
    pub attribute: SecurityAttribute,
    /// Assets targeted.
    pub assets: &'static [Asset],
    /// Paper section describing the attack.
    pub section: &'static str,
    /// The paper's summary of how the attack compromises the platoon.
    pub summary: &'static str,
    /// Paper references backing the row.
    pub references: &'static [&'static str],
    /// The implementing module path in this repository.
    pub module: &'static str,
    /// The experiment (DESIGN.md id) that measures the attack's impact.
    pub experiment: &'static str,
}

/// The full Table II catalogue, in the paper's row order.
pub fn catalog() -> Vec<AttackDescriptor> {
    vec![
        AttackDescriptor {
            name: "sybil",
            display_name: "Sybil attack",
            attribute: SecurityAttribute::Authenticity,
            assets: &[Asset::Leader, Asset::Members, Asset::Rsu],
            section: "V-A.2",
            summary: "An attacker within the platoon makes ghost vehicles that try to get \
                      accepted into the platoon, destabilising it and preventing members from \
                      joining.",
            references: &["[3]", "[6]"],
            module: "platoon_attacks::sybil",
            experiment: "F3",
        },
        AttackDescriptor {
            name: "fake-maneuver",
            display_name: "Fake manoeuvre attack",
            attribute: SecurityAttribute::Integrity,
            assets: &[Asset::Members, Asset::Rsu],
            section: "V-A.3",
            summary: "Fake manoeuvre requests break the platoon into smaller platoons or create \
                      entrance gaps for nonexistent vehicles; members can also be removed.",
            references: &["[17]", "[32]"],
            module: "platoon_attacks::fake_maneuver",
            experiment: "F5",
        },
        AttackDescriptor {
            name: "replay",
            display_name: "Replay attack",
            attribute: SecurityAttribute::Integrity,
            assets: &[Asset::Leader, Asset::Members, Asset::JoinLeave, Asset::Rsu],
            section: "V-A.1",
            summary: "Old messages replayed into the network make the platoon unstable as \
                      members receive conflicting information.",
            references: &["[2]", "[10]"],
            module: "platoon_attacks::replay",
            experiment: "F1",
        },
        AttackDescriptor {
            name: "jamming",
            display_name: "Jamming",
            attribute: SecurityAttribute::Availability,
            assets: &[Asset::Channel],
            section: "V-B",
            summary: "Flooding platoon frequencies with noise prevents all communication; \
                      members can no longer communicate and the platoon disbands.",
            references: &["[2]"],
            module: "platoon_attacks::jamming",
            experiment: "F2",
        },
        AttackDescriptor {
            name: "eavesdrop",
            display_name: "Eavesdropping",
            attribute: SecurityAttribute::Confidentiality,
            assets: &[Asset::Channel, Asset::Members, Asset::Leader],
            section: "V-C",
            summary: "An attacker understands the information transmitted within the platoon, \
                      leading to data theft and privacy violation.",
            references: &["[34]"],
            module: "platoon_attacks::eavesdrop",
            experiment: "F7",
        },
        AttackDescriptor {
            name: "dos-join-flood",
            display_name: "Denial of Service",
            attribute: SecurityAttribute::Availability,
            assets: &[Asset::Leader, Asset::JoinLeave, Asset::Rsu],
            section: "V-D",
            summary: "Prevents users from joining or creating a platoon by flooding it with \
                      more requests than the system can clear.",
            references: &["[33]"],
            module: "platoon_attacks::dos",
            experiment: "F4",
        },
        AttackDescriptor {
            name: "impersonation",
            display_name: "Impersonation",
            attribute: SecurityAttribute::Integrity,
            assets: &[Asset::Members, Asset::Rsu, Asset::TrustedAuthority],
            section: "V-F",
            summary: "An attacker poses as a different individual in the network, leading to \
                      false representation and reputation damage.",
            references: &["[6]"],
            module: "platoon_attacks::impersonation",
            experiment: "F8",
        },
        AttackDescriptor {
            name: "sensor-spoof",
            display_name: "Jamming and spoofing sensors",
            attribute: SecurityAttribute::Authenticity,
            assets: &[Asset::Sensors],
            section: "V-G",
            summary: "Malware or direct attacks on sensors (GPS, radar, cameras, TPMS) lead to \
                      false sensing.",
            references: &["[13]", "[31]"],
            module: "platoon_attacks::{sensor_spoof, gps_spoof}",
            experiment: "F6",
        },
        AttackDescriptor {
            name: "malware",
            display_name: "Malware",
            attribute: SecurityAttribute::Availability,
            assets: &[Asset::Members, Asset::Rsu, Asset::TrustedAuthority],
            section: "V-H",
            summary: "Prevents users from being able to platoon; malware can also carry out \
                      other attacks such as data theft, sensor spoofing and DoS.",
            references: &["[6]", "[13]"],
            module: "platoon_attacks::malware",
            experiment: "F9",
        },
        AttackDescriptor {
            name: "insider-fdi",
            display_name: "False data injection (insider)",
            attribute: SecurityAttribute::Integrity,
            assets: &[Asset::Members, Asset::Leader],
            section: "V-A",
            summary: "An attacker that is part of the platoon deliberately transmits false or \
                      misleading information; members react believing it is legitimate.",
            references: &["[2]", "[9]", "[10]"],
            module: "platoon_attacks::falsification",
            experiment: "F1/F6",
        },
    ]
}

/// Looks up a descriptor by machine name.
pub fn descriptor(name: &str) -> Option<AttackDescriptor> {
    catalog().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_nine_table_ii_rows_plus_fdi() {
        let c = catalog();
        assert_eq!(c.len(), 10);
        // Table II's nine named rows:
        for name in [
            "sybil",
            "fake-maneuver",
            "replay",
            "jamming",
            "eavesdrop",
            "dos-join-flood",
            "impersonation",
            "sensor-spoof",
            "malware",
        ] {
            assert!(descriptor(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn every_attribute_class_is_represented() {
        let c = catalog();
        for attr in [
            SecurityAttribute::Authenticity,
            SecurityAttribute::Integrity,
            SecurityAttribute::Availability,
            SecurityAttribute::Confidentiality,
        ] {
            assert!(
                c.iter().any(|d| d.attribute == attr),
                "no attack for {attr:?}"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let c = catalog();
        let mut names: Vec<_> = c.iter().map(|d| d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn descriptors_match_implementations() {
        use platoon_sim::attack::Attack;
        let pairs: Vec<(&str, SecurityAttribute)> = vec![
            (
                crate::replay::ReplayAttack::new(Default::default()).name(),
                crate::replay::ReplayAttack::new(Default::default()).attribute(),
            ),
            (
                crate::sybil::SybilAttack::new(Default::default()).name(),
                crate::sybil::SybilAttack::new(Default::default()).attribute(),
            ),
            (
                crate::jamming::JammingAttack::new(Default::default()).name(),
                crate::jamming::JammingAttack::new(Default::default()).attribute(),
            ),
            (
                crate::dos::JoinFloodAttack::new(Default::default()).name(),
                crate::dos::JoinFloodAttack::new(Default::default()).attribute(),
            ),
        ];
        for (name, attr) in pairs {
            let d = descriptor(name).unwrap_or_else(|| panic!("no descriptor for {name}"));
            assert_eq!(d.attribute, attr, "{name} attribute mismatch");
        }
    }

    #[test]
    fn lookup_missing_returns_none() {
        assert!(descriptor("wormhole").is_none());
    }
}
