//! Denial-of-service attack on a single platoon (§V-D, Table II).
//!
//! > "The most likely way this kind of attack will be carried out is by
//! > getting fake or copied IDs to connect to make a platoon leader think
//! > that there are far more members than there are. This will prevent
//! > other members from connecting to the platoon leader."
//!
//! The attacker floods the leader with join requests from throw-away
//! identities. Damage channels: the leader's processing budget saturates
//! (requests from legitimate vehicles are dropped or answered `Busy`), and
//! pending-join slots are exhausted.

use platoon_crypto::cert::PrincipalId;
use platoon_proto::envelope::Envelope;
use platoon_proto::messages::PlatoonMessage;
use platoon_sim::attack::{Attack, SecurityAttribute};
use platoon_sim::world::World;
use platoon_v2x::message::{ChannelKind, Frame, NodeId, Position};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Configuration of the join-flood DoS.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JoinFloodConfig {
    /// Requests injected per second.
    pub rate_per_second: f64,
    /// Flood start, seconds.
    pub start: f64,
    /// Flood end, seconds.
    pub end: f64,
    /// First throw-away principal id.
    pub id_base: u64,
    /// Attacker radio node.
    pub attacker_node: u64,
}

impl Default for JoinFloodConfig {
    fn default() -> Self {
        JoinFloodConfig {
            rate_per_second: 100.0,
            start: 5.0,
            end: f64::INFINITY,
            id_base: 8_000,
            attacker_node: 8_000,
        }
    }
}

/// The join-flood attacker.
/// # Examples
///
/// ```
/// use platoon_attacks::prelude::*;
/// use platoon_sim::prelude::*;
///
/// let mut engine = Engine::new(Scenario::builder().vehicles(4).duration(5.0).build());
/// engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig {
///     start: 1.0,
///     rate_per_second: 50.0,
///     ..Default::default()
/// })));
/// let summary = engine.run();
/// assert!(summary.maneuvers.join_requests > 0, "the flood reached the leader");
/// ```
#[derive(Clone, Debug)]
pub struct JoinFloodAttack {
    config: JoinFloodConfig,
    sent: u64,
    carry: f64,
}

impl JoinFloodAttack {
    /// Creates the attack.
    pub fn new(config: JoinFloodConfig) -> Self {
        JoinFloodAttack {
            config,
            sent: 0,
            carry: 0.0,
        }
    }

    /// Requests transmitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn position(&self, world: &World) -> Position {
        let tail = world
            .vehicles
            .last()
            .map(|v| v.vehicle.state.position)
            .unwrap_or(0.0);
        (tail - 25.0, 4.0)
    }
}

impl Attack for JoinFloodAttack {
    fn name(&self) -> &'static str {
        "dos-join-flood"
    }

    fn attribute(&self) -> SecurityAttribute {
        SecurityAttribute::Availability
    }

    fn on_air(&mut self, world: &mut World, _rng: &mut StdRng, frames: &mut Vec<Frame>) {
        let now = world.time;
        if now < self.config.start || now >= self.config.end {
            return;
        }
        // Fractional-rate accumulator over the 0.1 s step.
        self.carry += self.config.rate_per_second * world.medium.step_len;
        let burst = self.carry.floor() as u64;
        self.carry -= burst as f64;

        let origin = self.position(world);
        let platoon = world.vehicles[0].platoon;
        let power = world.medium.dsrc.default_tx_power_dbm;
        for _ in 0..burst {
            self.sent += 1;
            let ghost = PrincipalId(self.config.id_base + self.sent);
            let msg = PlatoonMessage::JoinRequest {
                requester: ghost,
                platoon,
                position: origin.0,
                timestamp: now,
            };
            frames.push(Frame {
                sender: NodeId(self.config.attacker_node),
                origin,
                power_dbm: power,
                channel: ChannelKind::Dsrc,
                payload: Envelope::plain(ghost, &msg).encode().into(),
            });
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Attack>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platoon_proto::messages::PlatoonId;
    use platoon_sim::prelude::*;

    fn scenario(label: &str, auth: AuthMode) -> Scenario {
        Scenario::builder()
            .label(label)
            .vehicles(4)
            .duration(40.0)
            .auth(auth)
            .max_platoon_size(16)
            .seed(13)
            .build()
    }

    fn joiner() -> JoinerAgent {
        JoinerAgent::new(
            PrincipalId(600),
            NodeId(600),
            JoinerCredentials::None,
            PlatoonId(1),
            1.0,
        )
    }

    #[test]
    fn flood_blocks_legitimate_joiner() {
        // Baseline: the joiner gets in quickly.
        let mut clean = Engine::new(scenario("dos-base", AuthMode::None));
        clean.add_attack(Box::new(joiner()));
        clean.run();
        let clean_outcome = clean.attacks()[0]
            .as_any()
            .downcast_ref::<JoinerAgent>()
            .unwrap()
            .outcome();
        assert!(clean_outcome.accepted);

        // Under flood: the joiner (arriving once the flood is underway) is
        // starved, denied as Busy, or heavily delayed.
        let mut engine = Engine::new(scenario("dos", AuthMode::None));
        engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig::default())));
        engine.add_attack(Box::new(joiner().with_start(10.0)));
        let summary = engine.run();
        let outcome = engine.attacks()[1]
            .as_any()
            .downcast_ref::<JoinerAgent>()
            .unwrap()
            .outcome();

        let delayed = match (clean_outcome.accept_latency, outcome.accept_latency) {
            (Some(base), Some(attacked)) => attacked > 2.0 * base,
            (Some(_), None) => true, // starved entirely
            _ => false,
        };
        assert!(
            !outcome.accepted || outcome.denied || delayed,
            "flood should starve, deny or delay the legitimate joiner: {outcome:?} vs {clean_outcome:?}"
        );
        assert!(
            summary.maneuvers.joins_dropped + summary.maneuvers.joins_denied > 50,
            "leader should shed load under flood"
        );
    }

    #[test]
    fn flood_rate_is_respected() {
        let mut engine = Engine::new(scenario("dos-rate", AuthMode::None));
        engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig {
            rate_per_second: 50.0,
            start: 0.0,
            ..Default::default()
        })));
        for _ in 0..100 {
            engine.step(); // 10 s
        }
        let sent = engine.attacks()[0]
            .as_any()
            .downcast_ref::<JoinFloodAttack>()
            .unwrap()
            .sent();
        assert!(
            (450..=550).contains(&sent),
            "expected ≈500 requests in 10 s, got {sent}"
        );
    }

    #[test]
    fn pki_turns_flood_into_cheap_rejections() {
        let mut engine = Engine::new(scenario("dos-pki", AuthMode::Pki));
        engine.add_attack(Box::new(JoinFloodAttack::new(JoinFloodConfig::default())));
        let summary = engine.run();
        // Unsigned requests die at envelope verification: none reach the
        // manoeuvre engine.
        assert_eq!(summary.maneuvers.join_requests, 0);
        assert!(summary.rejected_messages > 100);
    }
}
