//! Property tests for the typed attack-parameter surface: the canonical
//! JSON form must round-trip byte-identically for *arbitrary* raw values
//! (the campaign's cache keys and goldens stand on this), and Gaussian
//! mutation must never escape the declared bounds.

use platoon_attacks::params::{searchable_attacks, AttackParams, ParamKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Picks an attack and builds a candidate from arbitrary raw knob values
/// (construction snaps them into bounds, whatever they were).
fn arb_params(shape: u64, raw: [f64; 5]) -> AttackParams {
    let attacks = searchable_attacks();
    let attack = attacks[(shape % attacks.len() as u64) as usize];
    let n = AttackParams::defaults(attack).unwrap().values().len();
    AttackParams::from_values(attack, &raw[..n]).expect("value count matches the space")
}

proptest! {
    /// encode → parse → encode is the identity on bytes, for any attack
    /// and any raw values. (The writer emits shortest-round-trip floats
    /// and construction snaps values, so one canonical spelling exists.)
    #[test]
    fn canonical_json_round_trips_byte_identically(
        shape in any::<u64>(),
        a in any::<f64>(),
        b in any::<f64>(),
        c in any::<f64>(),
        d in any::<f64>(),
        e in any::<f64>(),
    ) {
        let params = arb_params(shape, [a, b, c, d, e]);
        let text = params.canonical_json();
        let back = AttackParams::parse(&text).expect("canonical params parse");
        prop_assert_eq!(&back, &params);
        prop_assert_eq!(back.canonical_json(), text);
    }

    /// A mutated candidate stays inside every knob's declared bounds,
    /// integers stay integral, booleans stay 0/1 — and the same rng seed
    /// reproduces the same child.
    #[test]
    fn mutation_respects_bounds_and_replays(
        shape in any::<u64>(),
        seed in any::<u64>(),
        a in any::<f64>(),
        b in any::<f64>(),
        c in any::<f64>(),
        d in any::<f64>(),
        e in any::<f64>(),
        sigma in 0.0f64..4.0,
    ) {
        let params = arb_params(shape, [a, b, c, d, e]);
        let child = params.mutate(&mut StdRng::seed_from_u64(seed), sigma);
        for (spec, &v) in child.space().iter().zip(child.values()) {
            prop_assert!(
                v >= spec.min && v <= spec.max,
                "{}.{} = {v} escaped [{}, {}]", child.attack(), spec.name, spec.min, spec.max
            );
            match spec.kind {
                ParamKind::Continuous => {}
                ParamKind::Integer => prop_assert_eq!(v, v.round()),
                ParamKind::Boolean => prop_assert!(v == 0.0 || v == 1.0),
            }
        }
        let replay = params.mutate(&mut StdRng::seed_from_u64(seed), sigma);
        prop_assert_eq!(child, replay);
    }
}
