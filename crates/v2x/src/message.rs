//! Wire-level frames and airtime accounting.
//!
//! The network substrate is payload-agnostic: it moves opaque byte frames
//! between node positions. Protocol semantics (beacons, manoeuvres,
//! signatures) live in `platoon-proto`; the attacks that only need *bytes on
//! air* — jamming, eavesdropping, replay capture — operate at this layer,
//! which is exactly the paper's observation that 802.11p "is an open
//! standard" and its frames are observable and injectable by anyone (§I).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a radio node (vehicle OBU, RSU, or attacker device).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Node({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A 2-D position in metres (x = longitudinal along the road, y = lateral).
pub type Position = (f64, f64);

/// Euclidean distance between two positions.
pub fn distance(a: Position, b: Position) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Which physical channel a frame is sent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// IEEE 802.11p DSRC at 5.9 GHz.
    Dsrc,
    /// Visible light communication (headlight/taillight link).
    Vlc,
    /// 3GPP C-V2X sidelink (PC5), semi-persistent scheduling.
    CV2x,
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelKind::Dsrc => f.write_str("802.11p"),
            ChannelKind::Vlc => f.write_str("VLC"),
            ChannelKind::CV2x => f.write_str("C-V2X"),
        }
    }
}

/// Immutable, cheaply cloneable payload bytes.
///
/// Broadcast fans one encoded message out to every receiver (and, in hybrid
/// comms modes, onto several channels), so the bytes are reference-counted
/// (`Arc<[u8]>`) rather than copied per frame and per delivery. Cloning a
/// [`Payload`] — and therefore a [`Frame`] or [`Delivery`] — is a refcount
/// bump, not a byte copy. The type dereferences to `&[u8]`, so existing
/// slice-based consumers (codecs, hash functions) work unchanged.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// The payload bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Number of payload bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// How many handles (frames, deliveries, caches) currently share these
    /// bytes. 1 means this is the only copy.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(bytes.into())
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload(bytes.into())
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(bytes: [u8; N]) -> Self {
        Payload(bytes.as_slice().into())
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

/// A frame handed to the medium for broadcast.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Transmitting node.
    pub sender: NodeId,
    /// Transmitter position at send time.
    pub origin: Position,
    /// Transmit power in dBm.
    pub power_dbm: f64,
    /// Channel the frame is sent on.
    pub channel: ChannelKind,
    /// Opaque payload bytes (already encoded and, if applicable, signed).
    pub payload: Payload,
}

impl Frame {
    /// Total on-air size: payload plus PHY/MAC overhead.
    pub fn air_bytes(&self) -> usize {
        // 802.11p MAC header + LLC + FCS ≈ 36 bytes; comparable for others.
        self.payload.len() + 36
    }

    /// Transmission duration at `bitrate` bits/s.
    pub fn airtime(&self, bitrate: f64) -> f64 {
        assert!(bitrate > 0.0, "bitrate must be positive");
        (self.air_bytes() * 8) as f64 / bitrate
    }
}

/// A successfully received frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Transmitting node.
    pub sender: NodeId,
    /// Receiving node.
    pub receiver: NodeId,
    /// Channel the frame arrived on.
    pub channel: ChannelKind,
    /// End-to-end latency in seconds (MAC access + airtime).
    pub latency: f64,
    /// Received signal strength in dBm (what key-agreement probing reads).
    pub rssi_dbm: f64,
    /// The payload bytes (shared with the originating [`Frame`]).
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basic() {
        assert_eq!(distance((0.0, 0.0), (3.0, 4.0)), 5.0);
        assert_eq!(distance((1.0, 1.0), (1.0, 1.0)), 0.0);
    }

    #[test]
    fn airtime_scales_with_size() {
        let small = Frame {
            sender: NodeId(1),
            origin: (0.0, 0.0),
            power_dbm: 20.0,
            channel: ChannelKind::Dsrc,
            payload: vec![0u8; 100].into(),
        };
        let large = Frame {
            payload: vec![0u8; 1000].into(),
            ..small.clone()
        };
        let rate = 6e6;
        assert!(large.airtime(rate) > small.airtime(rate));
        // 136 bytes at 6 Mb/s ≈ 181 µs.
        assert!((small.airtime(rate) - 136.0 * 8.0 / 6e6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bitrate")]
    fn zero_bitrate_panics() {
        let f = Frame {
            sender: NodeId(1),
            origin: (0.0, 0.0),
            power_dbm: 20.0,
            channel: ChannelKind::Dsrc,
            payload: Vec::<u8>::new().into(),
        };
        f.airtime(0.0);
    }

    #[test]
    fn channel_kind_display() {
        assert_eq!(ChannelKind::Dsrc.to_string(), "802.11p");
        assert_eq!(ChannelKind::Vlc.to_string(), "VLC");
        assert_eq!(ChannelKind::CV2x.to_string(), "C-V2X");
    }
}
