//! The shared broadcast medium: takes all frames offered in a communication
//! step and decides, per receiver, which are successfully decoded.
//!
//! The model is a CSMA/CA-flavoured abstraction of the 802.11p MAC on top of
//! the SINR channel of [`crate::channel`]:
//!
//! 1. Each frame draws a random contention offset within the step.
//! 2. Senders that can carrier-sense an earlier, in-progress transmission
//!    defer until it ends (CSMA serialisation).
//! 3. For every (frame, receiver) pair, the received power is sampled from
//!    the fading channel; the interference budget sums all *temporally
//!    overlapping* frames (hidden terminals that escaped carrier sensing)
//!    and all active jammers; the frame decodes iff SINR clears the PHY
//!    threshold.
//!
//! VLC frames bypass all of this and use the geometric optical link; C-V2X
//! frames use deterministic semi-persistent slots (no contention) but share
//! the fading channel and can be jammed by a C-V2X-targeting jammer.

use crate::channel::{dbm_to_mw, DsrcPhy};
use crate::jamming::Jammer;
use crate::message::{distance, ChannelKind, Delivery, Frame, NodeId, Position};
use crate::spatial::SpatialGrid;
use crate::vlc::VlcPhy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A node able to receive frames this step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Receiver {
    /// Node identifier.
    pub id: NodeId,
    /// Node position.
    pub position: Position,
}

/// Carrier-sense threshold in dBm: a sender defers to transmissions it can
/// hear at or above this power.
const CARRIER_SENSE_DBM: f64 = -85.0;

/// Aggregate statistics for one medium step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Frames offered to the medium.
    pub offered: usize,
    /// (frame, receiver) pairs that decoded successfully.
    pub delivered: usize,
    /// (frame, receiver) pairs lost to SINR failure (fading, jamming or
    /// collision).
    pub lost: usize,
    /// RF (frame, receiver) pairs whose received power was sampled. Under a
    /// finite [`RadioMedium::radio_horizon_m`] this is the spatial index's
    /// candidate count; under the default infinite horizon it is the full
    /// all-pairs count — the ratio is the index's deterministic work saving.
    pub pairs_considered: usize,
}

/// The broadcast medium configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadioMedium {
    /// DSRC PHY parameters.
    pub dsrc: DsrcPhy,
    /// VLC PHY parameters.
    pub vlc: VlcPhy,
    /// Communication step length in seconds (beacon interval granularity).
    pub step_len: f64,
    /// C-V2X semi-persistent-schedule slot count per step.
    pub cv2x_slots: usize,
    /// RF reception horizon in metres. `f64::INFINITY` (the default)
    /// reproduces the seed semantics exactly: every (frame, receiver) pair
    /// is evaluated by an all-pairs scan. A finite horizon enables the
    /// [`SpatialGrid`] fast path: receivers beyond the horizon never hear a
    /// frame and interferers beyond the horizon of a receiver contribute
    /// nothing. When the horizon covers the whole world the indexed path
    /// enumerates exactly the scan's pairs in the scan's order, so results
    /// (including the rng stream) are byte-identical.
    pub radio_horizon_m: f64,
}

impl Default for RadioMedium {
    fn default() -> Self {
        RadioMedium {
            dsrc: DsrcPhy::default(),
            vlc: VlcPhy::default(),
            step_len: 0.1,
            cv2x_slots: 100,
            radio_horizon_m: f64::INFINITY,
        }
    }
}

#[derive(Clone, Debug)]
struct ScheduledFrame {
    frame: Frame,
    start: f64,
    end: f64,
}

impl RadioMedium {
    /// Runs one communication step: schedules `frames`, applies the channel
    /// and jammers, and returns all successful deliveries (a node never
    /// receives its own frame).
    pub fn step<R: Rng + ?Sized>(
        &self,
        now: f64,
        frames: &[Frame],
        receivers: &[Receiver],
        jammers: &[Jammer],
        rng: &mut R,
    ) -> (Vec<Delivery>, StepStats) {
        let mut deliveries = Vec::new();
        let mut stats = StepStats {
            offered: frames.len(),
            ..Default::default()
        };
        let traffic_on_air = !frames.is_empty();

        // Partition by channel.
        let dsrc_frames: Vec<&Frame> = frames
            .iter()
            .filter(|f| f.channel == ChannelKind::Dsrc)
            .collect();
        let vlc_frames: Vec<&Frame> = frames
            .iter()
            .filter(|f| f.channel == ChannelKind::Vlc)
            .collect();
        let cv2x_frames: Vec<&Frame> = frames
            .iter()
            .filter(|f| f.channel == ChannelKind::CV2x)
            .collect();

        // With a finite radio horizon, index receiver positions once and
        // frame origins per channel so delivery becomes range queries.
        let rx_grid = self.radio_horizon_m.is_finite().then(|| {
            let positions: Vec<Position> = receivers.iter().map(|r| r.position).collect();
            SpatialGrid::build(self.grid_cell(), &positions)
        });

        let scheduled = self.schedule_csma(&dsrc_frames, rng);
        let frame_grid = rx_grid.as_ref().map(|_| self.frame_grid(&scheduled));
        self.deliver_rf(
            now,
            ChannelKind::Dsrc,
            &scheduled,
            receivers,
            jammers,
            traffic_on_air,
            rx_grid.as_ref().zip(frame_grid.as_ref()),
            &mut deliveries,
            &mut stats,
            rng,
        );

        let cv2x_scheduled = self.schedule_sps(&cv2x_frames);
        let cv2x_frame_grid = rx_grid.as_ref().map(|_| self.frame_grid(&cv2x_scheduled));
        self.deliver_rf(
            now,
            ChannelKind::CV2x,
            &cv2x_scheduled,
            receivers,
            jammers,
            traffic_on_air,
            rx_grid.as_ref().zip(cv2x_frame_grid.as_ref()),
            &mut deliveries,
            &mut stats,
            rng,
        );

        for frame in vlc_frames {
            for rx in receivers {
                if rx.id == frame.sender {
                    continue;
                }
                if self.vlc.receives(frame.origin, rx.position, rng) {
                    deliveries.push(Delivery {
                        sender: frame.sender,
                        receiver: rx.id,
                        channel: ChannelKind::Vlc,
                        latency: frame.airtime(self.vlc.bitrate),
                        rssi_dbm: 0.0,
                        payload: frame.payload.clone(),
                    });
                    stats.delivered += 1;
                } else if self.vlc.in_beam(frame.origin, rx.position) {
                    stats.lost += 1;
                }
            }
        }

        (deliveries, stats)
    }

    /// Cell size for spatial grids under a finite horizon: one horizon per
    /// cell, so a radius-`horizon` query touches at most a 3×3 block.
    fn grid_cell(&self) -> f64 {
        self.radio_horizon_m.max(1.0)
    }

    /// Grid over scheduled frame origins (for interference range queries).
    fn frame_grid(&self, scheduled: &[ScheduledFrame]) -> SpatialGrid {
        let origins: Vec<Position> = scheduled.iter().map(|s| s.frame.origin).collect();
        SpatialGrid::build(self.grid_cell(), &origins)
    }

    /// CSMA/CA-lite: random contention offsets, then defer to any earlier
    /// overlapping transmission the sender can hear.
    fn schedule_csma<R: Rng + ?Sized>(
        &self,
        frames: &[&Frame],
        rng: &mut R,
    ) -> Vec<ScheduledFrame> {
        let mut sched: Vec<ScheduledFrame> = frames
            .iter()
            .map(|f| {
                let airtime = f.airtime(self.dsrc.bitrate);
                let start = rng.gen_range(0.0..(self.step_len - airtime).max(1e-6));
                ScheduledFrame {
                    frame: (*f).clone(),
                    start,
                    end: start + airtime,
                }
            })
            .collect();
        sched.sort_by(|a, b| a.start.total_cmp(&b.start));

        // Defer pass: each sender listens before transmitting. The pass is
        // order-independent in j: `deferred_start` is the max of qualifying
        // ends, and a skipped j can only be one whose `heard` test would
        // have failed — so pruning by a carrier-sense range is exact.
        //
        // Under a finite horizon, prune candidate earlier senders to those
        // within the carrier-sense range of the *loudest* frame: beyond
        // that distance even the loudest frame's median power is below
        // CARRIER_SENSE_DBM, so `heard` is false for every frame.
        let cs_index = (self.radio_horizon_m.is_finite() && sched.len() > 1).then(|| {
            let origins: Vec<Position> = sched.iter().map(|s| s.frame.origin).collect();
            let loudest = sched
                .iter()
                .map(|s| s.frame.power_dbm)
                .fold(f64::NEG_INFINITY, f64::max);
            let cs_range = self
                .dsrc
                .range_for_median_power_m(loudest, CARRIER_SENSE_DBM);
            (SpatialGrid::build(cs_range.max(1.0), &origins), cs_range)
        });
        let mut in_range: Vec<u32> = Vec::new();
        for i in 1..sched.len() {
            let mut deferred_start = sched[i].start;
            let candidates: &[u32] = match &cs_index {
                Some((grid, cs_range)) => {
                    grid.query_within(sched[i].frame.origin, *cs_range, &mut in_range);
                    &in_range
                }
                None => {
                    in_range.clear();
                    in_range.extend(0..i as u32);
                    &in_range
                }
            };
            for &j in candidates {
                let j = j as usize;
                if j >= i {
                    continue;
                }
                if sched[j].end > deferred_start {
                    // Can sender i hear sender j?
                    let d = distance(sched[i].frame.origin, sched[j].frame.origin);
                    let heard = self.dsrc.median_rx_power_dbm(sched[j].frame.power_dbm, d)
                        >= CARRIER_SENSE_DBM;
                    if heard {
                        deferred_start = deferred_start.max(sched[j].end);
                    }
                }
            }
            let airtime = sched[i].end - sched[i].start;
            sched[i].start = deferred_start;
            sched[i].end = deferred_start + airtime;
        }
        sched
    }

    /// C-V2X semi-persistent scheduling: deterministic slot from the sender
    /// id, no listen-before-talk. Two senders share a slot only on a hash
    /// collision.
    fn schedule_sps(&self, frames: &[&Frame]) -> Vec<ScheduledFrame> {
        let slot_len = self.step_len / self.cv2x_slots.max(1) as f64;
        frames
            .iter()
            .map(|f| {
                let slot = (f.sender.0 as usize) % self.cv2x_slots.max(1);
                let start = slot as f64 * slot_len;
                ScheduledFrame {
                    frame: (*f).clone(),
                    start,
                    end: start + f.airtime(self.dsrc.bitrate).min(slot_len),
                }
            })
            .collect()
    }

    /// Samples reception for every (frame, receiver) pair.
    ///
    /// `index` (receiver grid + frame-origin grid) is `Some` iff the radio
    /// horizon is finite. The indexed path visits, in ascending index order,
    /// exactly the receivers within one horizon of the frame origin and the
    /// interferer frames within two horizons (by the triangle inequality a
    /// superset of "within one horizon of any candidate receiver"), then
    /// applies the exact per-pair predicates. Because candidate order is
    /// ascending — never bucket order — the rng draw sequence and the
    /// floating-point interference sums match the all-pairs scan whenever
    /// the horizon covers the geometry.
    #[allow(clippy::too_many_arguments)]
    fn deliver_rf<R: Rng + ?Sized>(
        &self,
        now: f64,
        channel: ChannelKind,
        scheduled: &[ScheduledFrame],
        receivers: &[Receiver],
        jammers: &[Jammer],
        traffic_on_air: bool,
        index: Option<(&SpatialGrid, &SpatialGrid)>,
        deliveries: &mut Vec<Delivery>,
        stats: &mut StepStats,
        rng: &mut R,
    ) {
        let horizon = self.radio_horizon_m;
        // Scan mode: fixed full candidate lists, identical to iterating the
        // receiver and frame slices directly.
        let (all_rx, all_frames): (Vec<u32>, Vec<u32>) = if index.is_none() {
            (
                (0..receivers.len() as u32).collect(),
                (0..scheduled.len() as u32).collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let mut rx_cand: Vec<u32> = Vec::new();
        let mut near_frames: Vec<u32> = Vec::new();
        for (i, sf) in scheduled.iter().enumerate() {
            let (rx_list, frame_list): (&[u32], &[u32]) = match index {
                Some((rx_grid, frame_grid)) => {
                    rx_grid.query_within(sf.frame.origin, horizon, &mut rx_cand);
                    frame_grid.query_within(sf.frame.origin, 2.0 * horizon, &mut near_frames);
                    (&rx_cand, &near_frames)
                }
                None => (&all_rx, &all_frames),
            };
            for &r in rx_list {
                let rx = &receivers[r as usize];
                if rx.id == sf.frame.sender {
                    continue;
                }
                stats.pairs_considered += 1;
                let d = distance(sf.frame.origin, rx.position);
                let signal_dbm = self.dsrc.sample_rx_power_dbm(sf.frame.power_dbm, d, rng);

                // Interference: temporally overlapping frames on the same
                // channel (hidden terminals) plus jammers targeting it.
                let mut interference_mw = 0.0;
                for &j in frame_list {
                    let j = j as usize;
                    if i == j {
                        continue;
                    }
                    let other = &scheduled[j];
                    let overlap = sf.start < other.end && other.start < sf.end;
                    if overlap {
                        let dj = distance(other.frame.origin, rx.position);
                        // NaN distances count as out of range, like `deliver`.
                        let in_horizon = dj <= horizon;
                        if index.is_some() && !in_horizon {
                            // Beyond the horizon this interferer is out of
                            // range of the receiver by model definition.
                            continue;
                        }
                        interference_mw +=
                            dbm_to_mw(self.dsrc.median_rx_power_dbm(other.frame.power_dbm, dj));
                    }
                }
                for jam in jammers {
                    if jam.target == channel && jam.is_active(now, traffic_on_air) {
                        interference_mw += jam.interference_mw(&self.dsrc, rx.position);
                    }
                }

                if self.dsrc.decodes(signal_dbm, interference_mw) {
                    deliveries.push(Delivery {
                        sender: sf.frame.sender,
                        receiver: rx.id,
                        channel,
                        latency: sf.end,
                        rssi_dbm: signal_dbm,
                        payload: sf.frame.payload.clone(),
                    });
                    stats.delivered += 1;
                } else {
                    stats.lost += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn frame(sender: u64, x: f64, channel: ChannelKind) -> Frame {
        Frame {
            sender: NodeId(sender),
            origin: (x, 0.0),
            power_dbm: 20.0,
            channel,
            payload: vec![sender as u8; 60].into(),
        }
    }

    fn platoon_receivers(n: usize, spacing: f64) -> Vec<Receiver> {
        (0..n)
            .map(|i| Receiver {
                id: NodeId(i as u64),
                position: (i as f64 * spacing, 0.0),
            })
            .collect()
    }

    #[test]
    fn close_broadcast_reaches_everyone() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(5, 20.0);
        let mut rng = rng();
        let mut total = 0;
        for _ in 0..50 {
            let (deliveries, _) = medium.step(
                0.0,
                &[frame(0, 0.0, ChannelKind::Dsrc)],
                &receivers,
                &[],
                &mut rng,
            );
            total += deliveries.len();
        }
        // 4 receivers × 50 rounds; expect near-perfect delivery.
        assert!(total > 190, "delivered {total}/200");
    }

    #[test]
    fn sender_never_receives_own_frame() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(3, 20.0);
        let mut rng = rng();
        let (deliveries, _) = medium.step(
            0.0,
            &[frame(1, 20.0, ChannelKind::Dsrc)],
            &receivers,
            &[],
            &mut rng,
        );
        assert!(deliveries.iter().all(|d| d.receiver != NodeId(1)));
    }

    #[test]
    fn strong_jammer_kills_dsrc() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(4, 20.0);
        let jammer = Jammer::continuous((30.0, 5.0), 40.0);
        let mut rng = rng();
        let mut delivered = 0;
        for _ in 0..50 {
            let (d, _) = medium.step(
                0.0,
                &[frame(0, 0.0, ChannelKind::Dsrc)],
                &receivers,
                &[jammer],
                &mut rng,
            );
            delivered += d.len();
        }
        assert!(
            delivered < 10,
            "jammer should kill DSRC, delivered {delivered}"
        );
    }

    #[test]
    fn vlc_immune_to_rf_jamming() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(2, 15.0);
        let jammer = Jammer::continuous((10.0, 2.0), 60.0);
        let mut rng = rng();
        let mut delivered = 0;
        for _ in 0..100 {
            // Node 1 (front, x = 15) transmits backward to node 0 (x = 0).
            let (d, _) = medium.step(
                0.0,
                &[frame(1, 15.0, ChannelKind::Vlc)],
                &receivers,
                &[jammer],
                &mut rng,
            );
            delivered += d.len();
        }
        assert!(
            delivered > 90,
            "VLC must survive RF jamming: {delivered}/100"
        );
    }

    #[test]
    fn vlc_limited_to_adjacent_range() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(4, 50.0); // 50 m spacing > VLC range
        let mut rng = rng();
        let (d, _) = medium.step(
            0.0,
            &[frame(3, 150.0, ChannelKind::Vlc)],
            &receivers,
            &[],
            &mut rng,
        );
        assert!(d.is_empty(), "VLC should not reach 50 m");
    }

    #[test]
    fn csma_serialises_in_range_senders() {
        let medium = RadioMedium::default();
        // Two senders 10 m apart can hear each other: their frames must not
        // overlap after the defer pass.
        let frames = [
            frame(0, 0.0, ChannelKind::Dsrc),
            frame(1, 10.0, ChannelKind::Dsrc),
        ];
        let refs: Vec<&Frame> = frames.iter().collect();
        let mut rng = rng();
        for _ in 0..50 {
            let sched = medium.schedule_csma(&refs, &mut rng);
            assert!(
                sched[0].end <= sched[1].start + 1e-12,
                "frames overlap: [{}, {}] vs [{}, {}]",
                sched[0].start,
                sched[0].end,
                sched[1].start,
                sched[1].end
            );
        }
    }

    #[test]
    fn many_contending_senders_lose_some_frames() {
        // Saturate the channel: 60 senders in range beaconing simultaneously.
        let medium = RadioMedium {
            step_len: 0.01, // 10 ms step to force congestion
            ..Default::default()
        };
        let receivers = platoon_receivers(60, 10.0);
        let frames: Vec<Frame> = (0..60)
            .map(|i| frame(i, i as f64 * 10.0, ChannelKind::Dsrc))
            .collect();
        let mut rng = rng();
        let (_, stats) = medium.step(0.0, &frames, &receivers, &[], &mut rng);
        assert!(stats.lost > 0, "saturated channel must drop something");
    }

    #[test]
    fn cv2x_slots_avoid_contention() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(8, 15.0);
        let frames: Vec<Frame> = (0..8)
            .map(|i| frame(i, i as f64 * 15.0, ChannelKind::CV2x))
            .collect();
        let mut rng = rng();
        let (d, _) = medium.step(0.0, &frames, &receivers, &[], &mut rng);
        // 8 senders × 7 receivers = 56 pairs; SPS slots mean essentially all
        // decode (senders have distinct slots).
        assert!(d.len() > 50, "C-V2X delivered only {}", d.len());
    }

    #[test]
    fn dsrc_jammer_does_not_affect_cv2x() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(3, 15.0);
        let jammer = Jammer::continuous((15.0, 2.0), 60.0); // targets DSRC
        let mut rng = rng();
        let (d, _) = medium.step(
            0.0,
            &[frame(0, 0.0, ChannelKind::CV2x)],
            &receivers,
            &[jammer],
            &mut rng,
        );
        assert_eq!(d.len(), 2, "C-V2X should survive a DSRC-band jammer");
    }

    #[test]
    fn covering_horizon_is_byte_identical_to_scan() {
        // A finite horizon that covers the whole geometry must reproduce the
        // all-pairs scan exactly: same deliveries, same stats, and the same
        // number of rng draws (the streams stay in lockstep).
        let scan_medium = RadioMedium::default();
        let indexed_medium = RadioMedium {
            radio_horizon_m: 1.0e5,
            ..RadioMedium::default()
        };
        let receivers = platoon_receivers(12, 35.0);
        let frames: Vec<Frame> = (0..12)
            .flat_map(|i| {
                [
                    frame(i, i as f64 * 35.0, ChannelKind::Dsrc),
                    frame(i, i as f64 * 35.0, ChannelKind::CV2x),
                ]
            })
            .collect();
        let jammers = [Jammer::continuous((150.0, 5.0), 25.0)];
        for seed in 0..20 {
            let mut rng_scan = StdRng::seed_from_u64(seed);
            let mut rng_idx = StdRng::seed_from_u64(seed);
            let (d_scan, s_scan) =
                scan_medium.step(0.0, &frames, &receivers, &jammers, &mut rng_scan);
            let (d_idx, s_idx) =
                indexed_medium.step(0.0, &frames, &receivers, &jammers, &mut rng_idx);
            assert_eq!(d_scan, d_idx, "seed {seed}");
            assert_eq!(s_scan, s_idx, "seed {seed}");
            assert_eq!(
                rand::RngCore::next_u64(&mut rng_scan),
                rand::RngCore::next_u64(&mut rng_idx),
                "rng streams diverged at seed {seed}"
            );
        }
    }

    #[test]
    fn finite_horizon_prunes_far_pairs() {
        // Two clusters far apart: a finite horizon between the intra- and
        // inter-cluster distances must sample far fewer pairs than the scan
        // and never deliver across clusters.
        let medium = RadioMedium {
            radio_horizon_m: 500.0,
            ..RadioMedium::default()
        };
        let scan = RadioMedium::default();
        let mut receivers = platoon_receivers(6, 25.0);
        receivers.extend((0..6).map(|i| Receiver {
            id: NodeId(100 + i as u64),
            position: (50_000.0 + i as f64 * 25.0, 0.0),
        }));
        let frames: Vec<Frame> = (0..6)
            .map(|i| frame(i, i as f64 * 25.0, ChannelKind::Dsrc))
            .collect();
        let (d_idx, s_idx) = medium.step(0.0, &frames, &receivers, &[], &mut rng());
        let (_, s_scan) = scan.step(0.0, &frames, &receivers, &[], &mut rng());
        assert!(d_idx.iter().all(|d| d.receiver.0 < 100));
        assert!(
            s_idx.pairs_considered < s_scan.pairs_considered,
            "indexed {} vs scan {}",
            s_idx.pairs_considered,
            s_scan.pairs_considered
        );
        // The near cluster is fully inside the horizon: 6 frames × 5 peers.
        assert_eq!(s_idx.pairs_considered, 30);
        assert_eq!(s_scan.pairs_considered, 6 * 11);
    }

    #[test]
    fn deliveries_carry_rssi() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(2, 10.0);
        let mut rng = rng();
        let (d, _) = medium.step(
            0.0,
            &[frame(0, 0.0, ChannelKind::Dsrc)],
            &receivers,
            &[],
            &mut rng,
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].rssi_dbm < 20.0 && d[0].rssi_dbm > -90.0);
        assert!(d[0].latency > 0.0);
    }
}
