//! The shared broadcast medium: takes all frames offered in a communication
//! step and decides, per receiver, which are successfully decoded.
//!
//! The model is a CSMA/CA-flavoured abstraction of the 802.11p MAC on top of
//! the SINR channel of [`crate::channel`]:
//!
//! 1. Each frame draws a random contention offset within the step.
//! 2. Senders that can carrier-sense an earlier, in-progress transmission
//!    defer until it ends (CSMA serialisation).
//! 3. For every (frame, receiver) pair, the received power is sampled from
//!    the fading channel; the interference budget sums all *temporally
//!    overlapping* frames (hidden terminals that escaped carrier sensing)
//!    and all active jammers; the frame decodes iff SINR clears the PHY
//!    threshold.
//!
//! VLC frames bypass all of this and use the geometric optical link; C-V2X
//! frames use deterministic semi-persistent slots (no contention) but share
//! the fading channel and can be jammed by a C-V2X-targeting jammer.

use crate::channel::{dbm_to_mw, DsrcPhy};
use crate::jamming::Jammer;
use crate::message::{distance, ChannelKind, Delivery, Frame, NodeId, Position};
use crate::vlc::VlcPhy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A node able to receive frames this step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Receiver {
    /// Node identifier.
    pub id: NodeId,
    /// Node position.
    pub position: Position,
}

/// Carrier-sense threshold in dBm: a sender defers to transmissions it can
/// hear at or above this power.
const CARRIER_SENSE_DBM: f64 = -85.0;

/// Aggregate statistics for one medium step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Frames offered to the medium.
    pub offered: usize,
    /// (frame, receiver) pairs that decoded successfully.
    pub delivered: usize,
    /// (frame, receiver) pairs lost to SINR failure (fading, jamming or
    /// collision).
    pub lost: usize,
}

/// The broadcast medium configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadioMedium {
    /// DSRC PHY parameters.
    pub dsrc: DsrcPhy,
    /// VLC PHY parameters.
    pub vlc: VlcPhy,
    /// Communication step length in seconds (beacon interval granularity).
    pub step_len: f64,
    /// C-V2X semi-persistent-schedule slot count per step.
    pub cv2x_slots: usize,
}

impl Default for RadioMedium {
    fn default() -> Self {
        RadioMedium {
            dsrc: DsrcPhy::default(),
            vlc: VlcPhy::default(),
            step_len: 0.1,
            cv2x_slots: 100,
        }
    }
}

#[derive(Clone, Debug)]
struct ScheduledFrame {
    frame: Frame,
    start: f64,
    end: f64,
}

impl RadioMedium {
    /// Runs one communication step: schedules `frames`, applies the channel
    /// and jammers, and returns all successful deliveries (a node never
    /// receives its own frame).
    pub fn step<R: Rng + ?Sized>(
        &self,
        now: f64,
        frames: &[Frame],
        receivers: &[Receiver],
        jammers: &[Jammer],
        rng: &mut R,
    ) -> (Vec<Delivery>, StepStats) {
        let mut deliveries = Vec::new();
        let mut stats = StepStats {
            offered: frames.len(),
            ..Default::default()
        };
        let traffic_on_air = !frames.is_empty();

        // Partition by channel.
        let dsrc_frames: Vec<&Frame> = frames
            .iter()
            .filter(|f| f.channel == ChannelKind::Dsrc)
            .collect();
        let vlc_frames: Vec<&Frame> = frames
            .iter()
            .filter(|f| f.channel == ChannelKind::Vlc)
            .collect();
        let cv2x_frames: Vec<&Frame> = frames
            .iter()
            .filter(|f| f.channel == ChannelKind::CV2x)
            .collect();

        let scheduled = self.schedule_csma(&dsrc_frames, rng);
        self.deliver_rf(
            now,
            ChannelKind::Dsrc,
            &scheduled,
            receivers,
            jammers,
            traffic_on_air,
            &mut deliveries,
            &mut stats,
            rng,
        );

        let cv2x_scheduled = self.schedule_sps(&cv2x_frames);
        self.deliver_rf(
            now,
            ChannelKind::CV2x,
            &cv2x_scheduled,
            receivers,
            jammers,
            traffic_on_air,
            &mut deliveries,
            &mut stats,
            rng,
        );

        for frame in vlc_frames {
            for rx in receivers {
                if rx.id == frame.sender {
                    continue;
                }
                if self.vlc.receives(frame.origin, rx.position, rng) {
                    deliveries.push(Delivery {
                        sender: frame.sender,
                        receiver: rx.id,
                        channel: ChannelKind::Vlc,
                        latency: frame.airtime(self.vlc.bitrate),
                        rssi_dbm: 0.0,
                        payload: frame.payload.clone(),
                    });
                    stats.delivered += 1;
                } else if self.vlc.in_beam(frame.origin, rx.position) {
                    stats.lost += 1;
                }
            }
        }

        (deliveries, stats)
    }

    /// CSMA/CA-lite: random contention offsets, then defer to any earlier
    /// overlapping transmission the sender can hear.
    fn schedule_csma<R: Rng + ?Sized>(
        &self,
        frames: &[&Frame],
        rng: &mut R,
    ) -> Vec<ScheduledFrame> {
        let mut sched: Vec<ScheduledFrame> = frames
            .iter()
            .map(|f| {
                let airtime = f.airtime(self.dsrc.bitrate);
                let start = rng.gen_range(0.0..(self.step_len - airtime).max(1e-6));
                ScheduledFrame {
                    frame: (*f).clone(),
                    start,
                    end: start + airtime,
                }
            })
            .collect();
        sched.sort_by(|a, b| a.start.total_cmp(&b.start));

        // Defer pass: each sender listens before transmitting.
        for i in 1..sched.len() {
            let mut deferred_start = sched[i].start;
            for j in 0..i {
                if sched[j].end > deferred_start {
                    // Can sender i hear sender j?
                    let d = distance(sched[i].frame.origin, sched[j].frame.origin);
                    let heard = self.dsrc.median_rx_power_dbm(sched[j].frame.power_dbm, d)
                        >= CARRIER_SENSE_DBM;
                    if heard {
                        deferred_start = deferred_start.max(sched[j].end);
                    }
                }
            }
            let airtime = sched[i].end - sched[i].start;
            sched[i].start = deferred_start;
            sched[i].end = deferred_start + airtime;
        }
        sched
    }

    /// C-V2X semi-persistent scheduling: deterministic slot from the sender
    /// id, no listen-before-talk. Two senders share a slot only on a hash
    /// collision.
    fn schedule_sps(&self, frames: &[&Frame]) -> Vec<ScheduledFrame> {
        let slot_len = self.step_len / self.cv2x_slots.max(1) as f64;
        frames
            .iter()
            .map(|f| {
                let slot = (f.sender.0 as usize) % self.cv2x_slots.max(1);
                let start = slot as f64 * slot_len;
                ScheduledFrame {
                    frame: (*f).clone(),
                    start,
                    end: start + f.airtime(self.dsrc.bitrate).min(slot_len),
                }
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_rf<R: Rng + ?Sized>(
        &self,
        now: f64,
        channel: ChannelKind,
        scheduled: &[ScheduledFrame],
        receivers: &[Receiver],
        jammers: &[Jammer],
        traffic_on_air: bool,
        deliveries: &mut Vec<Delivery>,
        stats: &mut StepStats,
        rng: &mut R,
    ) {
        for (i, sf) in scheduled.iter().enumerate() {
            for rx in receivers {
                if rx.id == sf.frame.sender {
                    continue;
                }
                let d = distance(sf.frame.origin, rx.position);
                let signal_dbm = self.dsrc.sample_rx_power_dbm(sf.frame.power_dbm, d, rng);

                // Interference: temporally overlapping frames on the same
                // channel (hidden terminals) plus jammers targeting it.
                let mut interference_mw = 0.0;
                for (j, other) in scheduled.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let overlap = sf.start < other.end && other.start < sf.end;
                    if overlap {
                        let dj = distance(other.frame.origin, rx.position);
                        interference_mw +=
                            dbm_to_mw(self.dsrc.median_rx_power_dbm(other.frame.power_dbm, dj));
                    }
                }
                for jam in jammers {
                    if jam.target == channel && jam.is_active(now, traffic_on_air) {
                        interference_mw += jam.interference_mw(&self.dsrc, rx.position);
                    }
                }

                if self.dsrc.decodes(signal_dbm, interference_mw) {
                    deliveries.push(Delivery {
                        sender: sf.frame.sender,
                        receiver: rx.id,
                        channel,
                        latency: sf.end,
                        rssi_dbm: signal_dbm,
                        payload: sf.frame.payload.clone(),
                    });
                    stats.delivered += 1;
                } else {
                    stats.lost += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn frame(sender: u64, x: f64, channel: ChannelKind) -> Frame {
        Frame {
            sender: NodeId(sender),
            origin: (x, 0.0),
            power_dbm: 20.0,
            channel,
            payload: vec![sender as u8; 60].into(),
        }
    }

    fn platoon_receivers(n: usize, spacing: f64) -> Vec<Receiver> {
        (0..n)
            .map(|i| Receiver {
                id: NodeId(i as u64),
                position: (i as f64 * spacing, 0.0),
            })
            .collect()
    }

    #[test]
    fn close_broadcast_reaches_everyone() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(5, 20.0);
        let mut rng = rng();
        let mut total = 0;
        for _ in 0..50 {
            let (deliveries, _) = medium.step(
                0.0,
                &[frame(0, 0.0, ChannelKind::Dsrc)],
                &receivers,
                &[],
                &mut rng,
            );
            total += deliveries.len();
        }
        // 4 receivers × 50 rounds; expect near-perfect delivery.
        assert!(total > 190, "delivered {total}/200");
    }

    #[test]
    fn sender_never_receives_own_frame() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(3, 20.0);
        let mut rng = rng();
        let (deliveries, _) = medium.step(
            0.0,
            &[frame(1, 20.0, ChannelKind::Dsrc)],
            &receivers,
            &[],
            &mut rng,
        );
        assert!(deliveries.iter().all(|d| d.receiver != NodeId(1)));
    }

    #[test]
    fn strong_jammer_kills_dsrc() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(4, 20.0);
        let jammer = Jammer::continuous((30.0, 5.0), 40.0);
        let mut rng = rng();
        let mut delivered = 0;
        for _ in 0..50 {
            let (d, _) = medium.step(
                0.0,
                &[frame(0, 0.0, ChannelKind::Dsrc)],
                &receivers,
                &[jammer],
                &mut rng,
            );
            delivered += d.len();
        }
        assert!(
            delivered < 10,
            "jammer should kill DSRC, delivered {delivered}"
        );
    }

    #[test]
    fn vlc_immune_to_rf_jamming() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(2, 15.0);
        let jammer = Jammer::continuous((10.0, 2.0), 60.0);
        let mut rng = rng();
        let mut delivered = 0;
        for _ in 0..100 {
            // Node 1 (front, x = 15) transmits backward to node 0 (x = 0).
            let (d, _) = medium.step(
                0.0,
                &[frame(1, 15.0, ChannelKind::Vlc)],
                &receivers,
                &[jammer],
                &mut rng,
            );
            delivered += d.len();
        }
        assert!(
            delivered > 90,
            "VLC must survive RF jamming: {delivered}/100"
        );
    }

    #[test]
    fn vlc_limited_to_adjacent_range() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(4, 50.0); // 50 m spacing > VLC range
        let mut rng = rng();
        let (d, _) = medium.step(
            0.0,
            &[frame(3, 150.0, ChannelKind::Vlc)],
            &receivers,
            &[],
            &mut rng,
        );
        assert!(d.is_empty(), "VLC should not reach 50 m");
    }

    #[test]
    fn csma_serialises_in_range_senders() {
        let medium = RadioMedium::default();
        // Two senders 10 m apart can hear each other: their frames must not
        // overlap after the defer pass.
        let frames = [
            frame(0, 0.0, ChannelKind::Dsrc),
            frame(1, 10.0, ChannelKind::Dsrc),
        ];
        let refs: Vec<&Frame> = frames.iter().collect();
        let mut rng = rng();
        for _ in 0..50 {
            let sched = medium.schedule_csma(&refs, &mut rng);
            assert!(
                sched[0].end <= sched[1].start + 1e-12,
                "frames overlap: [{}, {}] vs [{}, {}]",
                sched[0].start,
                sched[0].end,
                sched[1].start,
                sched[1].end
            );
        }
    }

    #[test]
    fn many_contending_senders_lose_some_frames() {
        // Saturate the channel: 60 senders in range beaconing simultaneously.
        let medium = RadioMedium {
            step_len: 0.01, // 10 ms step to force congestion
            ..Default::default()
        };
        let receivers = platoon_receivers(60, 10.0);
        let frames: Vec<Frame> = (0..60)
            .map(|i| frame(i, i as f64 * 10.0, ChannelKind::Dsrc))
            .collect();
        let mut rng = rng();
        let (_, stats) = medium.step(0.0, &frames, &receivers, &[], &mut rng);
        assert!(stats.lost > 0, "saturated channel must drop something");
    }

    #[test]
    fn cv2x_slots_avoid_contention() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(8, 15.0);
        let frames: Vec<Frame> = (0..8)
            .map(|i| frame(i, i as f64 * 15.0, ChannelKind::CV2x))
            .collect();
        let mut rng = rng();
        let (d, _) = medium.step(0.0, &frames, &receivers, &[], &mut rng);
        // 8 senders × 7 receivers = 56 pairs; SPS slots mean essentially all
        // decode (senders have distinct slots).
        assert!(d.len() > 50, "C-V2X delivered only {}", d.len());
    }

    #[test]
    fn dsrc_jammer_does_not_affect_cv2x() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(3, 15.0);
        let jammer = Jammer::continuous((15.0, 2.0), 60.0); // targets DSRC
        let mut rng = rng();
        let (d, _) = medium.step(
            0.0,
            &[frame(0, 0.0, ChannelKind::CV2x)],
            &receivers,
            &[jammer],
            &mut rng,
        );
        assert_eq!(d.len(), 2, "C-V2X should survive a DSRC-band jammer");
    }

    #[test]
    fn deliveries_carry_rssi() {
        let medium = RadioMedium::default();
        let receivers = platoon_receivers(2, 10.0);
        let mut rng = rng();
        let (d, _) = medium.step(
            0.0,
            &[frame(0, 0.0, ChannelKind::Dsrc)],
            &receivers,
            &[],
            &mut rng,
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].rssi_dbm < 20.0 && d[0].rssi_dbm > -90.0);
        assert!(d[0].latency > 0.0);
    }
}
