//! RF jamming sources.
//!
//! §V-B of the paper: "to jam communications, the attacker only has to know
//! the frequency that the platoon uses ... by flooding the communication
//! frequencies with random noise and junk, it becomes impossible for the
//! platoon to maintain its communications". The jammer here is a co-channel
//! noise source whose power enters every receiver's interference budget in
//! the [`crate::medium::RadioMedium`]; strategies model the three jammer
//! classes of the VANET jamming literature.

use crate::channel::{dbm_to_mw, DsrcPhy};
use crate::message::{distance, Position};
use serde::{Deserialize, Serialize};

/// Temporal strategy of a jammer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum JammingStrategy {
    /// Always on.
    Continuous,
    /// On for `on` seconds, off for `off` seconds, repeating.
    Periodic {
        /// On-phase duration in seconds.
        on: f64,
        /// Off-phase duration in seconds.
        off: f64,
    },
    /// Transmits only while legitimate traffic is on the air (energy-
    /// efficient, harder to localise). Modelled as active whenever at least
    /// one frame is being transmitted in the step.
    Reactive,
}

/// An RF jammer device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Jammer {
    /// Jammer position.
    pub position: Position,
    /// Transmit power in dBm.
    pub power_dbm: f64,
    /// Temporal strategy.
    pub strategy: JammingStrategy,
    /// The radio channel the jammer floods. Optical links cannot be
    /// RF-jammed; a `Vlc` target is accepted but has no effect, which the
    /// hybrid-communication defense (SP-VLC) relies on.
    pub target: crate::message::ChannelKind,
}

impl Jammer {
    /// A continuous 802.11p jammer at a position with the given power.
    pub fn continuous(position: Position, power_dbm: f64) -> Self {
        Jammer {
            position,
            power_dbm,
            strategy: JammingStrategy::Continuous,
            target: crate::message::ChannelKind::Dsrc,
        }
    }

    /// Whether the jammer is radiating at time `now`, given whether any
    /// legitimate frame is concurrently on the air.
    pub fn is_active(&self, now: f64, traffic_on_air: bool) -> bool {
        match self.strategy {
            JammingStrategy::Continuous => true,
            JammingStrategy::Periodic { on, off } => {
                let cycle = on + off;
                if cycle <= 0.0 {
                    return true;
                }
                now.rem_euclid(cycle) < on
            }
            JammingStrategy::Reactive => traffic_on_air,
        }
    }

    /// Interference contribution in milliwatts at a receiver position.
    pub fn interference_mw(&self, phy: &DsrcPhy, at: Position) -> f64 {
        let d = distance(self.position, at);
        dbm_to_mw(phy.median_rx_power_dbm(self.power_dbm, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_always_active() {
        let j = Jammer::continuous((0.0, 0.0), 30.0);
        assert!(j.is_active(0.0, false));
        assert!(j.is_active(123.4, true));
    }

    #[test]
    fn periodic_duty_cycle() {
        let j = Jammer {
            strategy: JammingStrategy::Periodic { on: 1.0, off: 1.0 },
            ..Jammer::continuous((0.0, 0.0), 30.0)
        };
        assert!(j.is_active(0.5, false));
        assert!(!j.is_active(1.5, false));
        assert!(j.is_active(2.5, false));
    }

    #[test]
    fn reactive_follows_traffic() {
        let j = Jammer {
            strategy: JammingStrategy::Reactive,
            ..Jammer::continuous((0.0, 0.0), 30.0)
        };
        assert!(!j.is_active(1.0, false));
        assert!(j.is_active(1.0, true));
    }

    #[test]
    fn interference_decays_with_distance() {
        let phy = DsrcPhy::default();
        let j = Jammer::continuous((0.0, 0.0), 30.0);
        let near = j.interference_mw(&phy, (10.0, 0.0));
        let far = j.interference_mw(&phy, (1000.0, 0.0));
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn stronger_jammer_more_interference() {
        let phy = DsrcPhy::default();
        let weak = Jammer::continuous((0.0, 0.0), 10.0);
        let strong = Jammer::continuous((0.0, 0.0), 40.0);
        let at = (50.0, 0.0);
        assert!(strong.interference_mw(&phy, at) > weak.interference_mw(&phy, at));
    }

    #[test]
    fn degenerate_periodic_cycle_is_always_on() {
        let j = Jammer {
            strategy: JammingStrategy::Periodic { on: 0.0, off: 0.0 },
            ..Jammer::continuous((0.0, 0.0), 30.0)
        };
        assert!(j.is_active(5.0, false));
    }
}
