//! Visible light communication (VLC) link model.
//!
//! §VI-A.4 of the paper describes SP-VLC (Ucar et al. \[2\]): platoon members
//! pair each 802.11p message with a visible-light transmission between
//! adjacent vehicles; RF jamming cannot touch the optical channel, and an
//! attacker off the road cannot inject into a line-of-sight light beam. The
//! model captures the properties that argument relies on:
//!
//! * short range (headlight → taillight, tens of metres),
//! * strict line-of-sight along the string (only the adjacent vehicle),
//! * immunity to RF interference and jamming,
//! * occasional outage from ambient light (the "interference from external
//!   light" caveat in §VI-A.4).

use crate::message::{distance, Position};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ambient-outage probability the optical link gains per decibel of
/// environmental noise-floor degradation.
///
/// The optical channel has no RF noise floor, so tunnel/weather conditions
/// that raise `DsrcPhy::noise_floor_dbm` degrade VLC through a different
/// physical path: dust, fog, and scattered light raise the per-frame
/// ambient-outage rate instead. Environmental faults and regime phases
/// that degrade "the channel" use this shared exchange rate so hybrid
/// RF+VLC scenarios cannot silently escape degradation.
pub const VLC_OUTAGE_PER_DB: f64 = 0.02;

/// Parameters of the optical link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VlcPhy {
    /// Bit rate in bits/s.
    pub bitrate: f64,
    /// Maximum link distance in metres.
    pub max_range: f64,
    /// Maximum lateral offset in metres for the beam to connect (beam width
    /// proxy; vehicles in adjacent lanes do not receive).
    pub max_lateral_offset: f64,
    /// Probability per frame of an ambient-light outage (sunlight glare).
    pub ambient_outage_prob: f64,
}

impl Default for VlcPhy {
    fn default() -> Self {
        VlcPhy {
            bitrate: 2e6,
            max_range: 40.0,
            max_lateral_offset: 1.5,
            ambient_outage_prob: 0.01,
        }
    }
}

impl VlcPhy {
    /// Whether the geometry supports a link at all.
    ///
    /// The data channel is the **taillight** (SP-VLC disseminates platoon
    /// messages front-to-back), so the receiver must be *behind* the
    /// transmitter, within range, and laterally aligned with the beam.
    pub fn in_beam(&self, from: Position, to: Position) -> bool {
        to.0 < from.0
            && distance(from, to) <= self.max_range
            && (from.1 - to.1).abs() <= self.max_lateral_offset
    }

    /// Samples frame reception over the optical link.
    ///
    /// RF interference has no effect by construction — the jamming defense
    /// experiment (F2) leans on exactly this property.
    pub fn receives<R: Rng + ?Sized>(&self, from: Position, to: Position, rng: &mut R) -> bool {
        self.in_beam(from, to) && rng.gen_range(0.0..1.0) >= self.ambient_outage_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn trailing_vehicle_in_beam() {
        let vlc = VlcPhy::default();
        assert!(vlc.in_beam((15.0, 0.0), (0.0, 0.0)));
    }

    #[test]
    fn leading_vehicle_not_in_beam() {
        // Taillight link: information flows backward only.
        let vlc = VlcPhy::default();
        assert!(!vlc.in_beam((0.0, 0.0), (15.0, 0.0)));
    }

    #[test]
    fn far_vehicle_out_of_beam() {
        let vlc = VlcPhy::default();
        assert!(!vlc.in_beam((100.0, 0.0), (0.0, 0.0)));
    }

    #[test]
    fn lateral_offset_breaks_beam() {
        let vlc = VlcPhy::default();
        assert!(
            !vlc.in_beam((15.0, 0.0), (0.0, 3.5)),
            "adjacent lane must not receive"
        );
        assert!(vlc.in_beam((15.0, 0.0), (0.0, 1.0)));
    }

    #[test]
    fn reception_rate_matches_outage_probability() {
        let vlc = VlcPhy {
            ambient_outage_prob: 0.2,
            ..Default::default()
        };
        let mut rng = rng();
        let n = 20_000;
        let ok = (0..n)
            .filter(|_| vlc.receives((10.0, 0.0), (0.0, 0.0), &mut rng))
            .count();
        let rate = ok as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn out_of_beam_never_receives() {
        let vlc = VlcPhy::default();
        let mut rng = rng();
        for _ in 0..100 {
            assert!(!vlc.receives((200.0, 0.0), (0.0, 0.0), &mut rng));
        }
    }
}
