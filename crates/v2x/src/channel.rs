//! DSRC radio propagation: log-distance path loss with Nakagami-m fading and
//! SINR-based reception, the standard highway V2V channel model (as used in
//! Veins, the network simulator underlying Plexe \[39\]).

use crate::message::{distance, Position};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Physical-layer parameters of the 5.9 GHz DSRC channel.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DsrcPhy {
    /// Bit rate in bits/s (802.11p default data rate is 6 Mb/s).
    pub bitrate: f64,
    /// Path-loss exponent (highway LOS ≈ 2.0–2.5).
    pub path_loss_exponent: f64,
    /// Path loss at the 1 m reference distance, dB (≈ 47.86 dB at 5.9 GHz
    /// free space).
    pub reference_loss_db: f64,
    /// Nakagami fading shape parameter m (m = 3 near, m = 1 ⇒ Rayleigh far).
    pub nakagami_m: f64,
    /// Thermal noise floor in dBm for a 10 MHz channel (≈ −104 dBm + NF).
    pub noise_floor_dbm: f64,
    /// Minimum SINR in dB for successful decoding at the default rate.
    pub sinr_threshold_db: f64,
    /// Default transmit power in dBm.
    pub default_tx_power_dbm: f64,
}

impl Default for DsrcPhy {
    fn default() -> Self {
        DsrcPhy {
            bitrate: 6e6,
            path_loss_exponent: 2.2,
            reference_loss_db: 47.86,
            nakagami_m: 3.0,
            noise_floor_dbm: -99.0,
            sinr_threshold_db: 8.0,
            default_tx_power_dbm: 20.0,
        }
    }
}

impl DsrcPhy {
    /// Deterministic (median) received power at a given distance, in dBm.
    ///
    /// Distances below 1 m are clamped to the reference distance.
    pub fn median_rx_power_dbm(&self, tx_power_dbm: f64, dist_m: f64) -> f64 {
        let d = dist_m.max(1.0);
        tx_power_dbm - self.reference_loss_db - 10.0 * self.path_loss_exponent * d.log10()
    }

    /// Samples a faded received power (median power scaled by a Nakagami-m
    /// power gain with unit mean).
    pub fn sample_rx_power_dbm<R: Rng + ?Sized>(
        &self,
        tx_power_dbm: f64,
        dist_m: f64,
        rng: &mut R,
    ) -> f64 {
        let median = self.median_rx_power_dbm(tx_power_dbm, dist_m);
        let gain = nakagami_power_gain(self.nakagami_m, rng);
        median + 10.0 * gain.log10()
    }

    /// The distance at which the median received power hits the decoding
    /// threshold (SINR threshold over noise alone) — the nominal radio range.
    pub fn nominal_range_m(&self, tx_power_dbm: f64) -> f64 {
        let budget =
            tx_power_dbm - self.reference_loss_db - self.noise_floor_dbm - self.sinr_threshold_db;
        10f64.powf(budget / (10.0 * self.path_loss_exponent))
    }

    /// The distance beyond which the *median* received power falls below
    /// `floor_dbm`. Clamped to the 1 m reference distance (below which
    /// [`Self::median_rx_power_dbm`] is constant), so any position whose
    /// median power reaches the floor lies within the returned range — a
    /// safe pruning radius for carrier-sense checks.
    pub fn range_for_median_power_m(&self, tx_power_dbm: f64, floor_dbm: f64) -> f64 {
        let budget = tx_power_dbm - self.reference_loss_db - floor_dbm;
        10f64
            .powf(budget / (10.0 * self.path_loss_exponent))
            .max(1.0)
    }

    /// Whether a signal at `signal_dbm` decodes against `interference_mw`
    /// milliwatts of co-channel interference.
    pub fn decodes(&self, signal_dbm: f64, interference_mw: f64) -> bool {
        let noise_mw = dbm_to_mw(self.noise_floor_dbm);
        let sinr_db = signal_dbm - mw_to_dbm(noise_mw + interference_mw);
        sinr_db >= self.sinr_threshold_db
    }
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Samples a unit-mean Nakagami-m *power* gain (i.e. a Gamma(m, 1/m) draw).
///
/// Uses the Marsaglia–Tsang method for m ≥ 1, which covers the V2V range.
pub fn nakagami_power_gain<R: Rng + ?Sized>(m: f64, rng: &mut R) -> f64 {
    assert!(m >= 0.5, "Nakagami m must be >= 0.5");
    // Gamma(shape=m, scale=1/m) via Marsaglia-Tsang (valid for shape >= 1;
    // for 0.5 <= m < 1 use the boost trick with a uniform power).
    let shape = if m >= 1.0 { m } else { m + 1.0 };
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    let sample = loop {
        // Standard normal via Box-Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            break d * v;
        }
    };
    let sample = if m >= 1.0 {
        sample
    } else {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        sample * u.powf(1.0 / m)
    };
    sample / m // scale to unit mean
}

/// Convenience: SINR-based reception test between two positions.
pub fn link_decodes<R: Rng + ?Sized>(
    phy: &DsrcPhy,
    tx_power_dbm: f64,
    from: Position,
    to: Position,
    interference_mw: f64,
    rng: &mut R,
) -> (bool, f64) {
    let d = distance(from, to);
    let rx = phy.sample_rx_power_dbm(tx_power_dbm, d, rng);
    (phy.decodes(rx, interference_mw), rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn median_power_decreases_with_distance() {
        let phy = DsrcPhy::default();
        let p10 = phy.median_rx_power_dbm(20.0, 10.0);
        let p100 = phy.median_rx_power_dbm(20.0, 100.0);
        let p1000 = phy.median_rx_power_dbm(20.0, 1000.0);
        assert!(p10 > p100 && p100 > p1000);
        // Per decade: 10·n dB.
        assert!((p10 - p100 - 22.0).abs() < 1e-9);
    }

    #[test]
    fn nominal_range_is_plausible_for_dsrc() {
        let phy = DsrcPhy::default();
        let range = phy.nominal_range_m(phy.default_tx_power_dbm);
        // 802.11p at 20 dBm typically reaches several hundred metres.
        assert!(
            (200.0..2000.0).contains(&range),
            "implausible nominal range {range} m"
        );
    }

    #[test]
    fn median_power_range_is_a_safe_pruning_radius() {
        let phy = DsrcPhy::default();
        for floor in [-85.0, -70.0, -99.0] {
            let r = phy.range_for_median_power_m(20.0, floor);
            // Just inside: median power at or above the floor.
            assert!(phy.median_rx_power_dbm(20.0, r * 0.999) >= floor);
            // Just outside: below the floor.
            assert!(phy.median_rx_power_dbm(20.0, r * 1.001) < floor);
        }
        // A hopeless budget still returns the 1 m clamp, never less.
        assert_eq!(phy.range_for_median_power_m(-200.0, -85.0), 1.0);
    }

    #[test]
    fn dbm_mw_roundtrip() {
        for dbm in [-100.0, -50.0, 0.0, 20.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn nakagami_gain_has_unit_mean() {
        let mut rng = rng();
        for m in [1.0, 3.0] {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| nakagami_power_gain(m, &mut rng))
                .sum::<f64>()
                / n as f64;
            assert!((mean - 1.0).abs() < 0.05, "m={m} mean={mean}");
        }
    }

    #[test]
    fn higher_m_means_less_variance() {
        let mut rng = rng();
        let var = |m: f64, rng: &mut StdRng| {
            let n = 20_000;
            let xs: Vec<f64> = (0..n).map(|_| nakagami_power_gain(m, rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64
        };
        assert!(var(5.0, &mut rng) < var(1.0, &mut rng));
    }

    #[test]
    fn close_link_decodes_far_link_does_not() {
        let phy = DsrcPhy::default();
        let mut rng = rng();
        let mut close_ok = 0;
        let mut far_ok = 0;
        for _ in 0..200 {
            if link_decodes(&phy, 20.0, (0.0, 0.0), (20.0, 0.0), 0.0, &mut rng).0 {
                close_ok += 1;
            }
            if link_decodes(&phy, 20.0, (0.0, 0.0), (5000.0, 0.0), 0.0, &mut rng).0 {
                far_ok += 1;
            }
        }
        assert!(close_ok > 195, "close link PDR too low: {close_ok}/200");
        assert!(far_ok < 5, "5 km link should not decode: {far_ok}/200");
    }

    #[test]
    fn interference_breaks_decoding() {
        let phy = DsrcPhy::default();
        let signal = phy.median_rx_power_dbm(20.0, 50.0);
        assert!(phy.decodes(signal, 0.0));
        // Interference 30 dB above the noise floor.
        let strong_interference = dbm_to_mw(phy.noise_floor_dbm + 40.0);
        assert!(!phy.decodes(signal, strong_interference));
    }

    #[test]
    #[should_panic(expected = "Nakagami")]
    fn tiny_m_panics() {
        nakagami_power_gain(0.1, &mut rng());
    }
}
