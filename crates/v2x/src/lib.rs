//! # platoon-v2x
//!
//! Simulated V2X wireless substrate for the platoon security suite
//! (reproduction of Taylor et al., DSN-W 2021). Replaces the real IEEE
//! 802.11p / C-V2X / VLC hardware the paper's attack surface lives on:
//!
//! * [`message`] — frames, node ids, channels, deliveries.
//! * [`channel`] — log-distance + Nakagami-m DSRC propagation with SINR
//!   reception.
//! * [`medium`] — the shared broadcast medium with a CSMA/CA-flavoured MAC,
//!   C-V2X semi-persistent slots and VLC optical links.
//! * [`vlc`] — the line-of-sight visible-light channel used by the SP-VLC
//!   hybrid defense.
//! * [`spatial`] — uniform-grid index turning all-pairs reception scans into
//!   range queries for highway-scale (multi-platoon) worlds.
//! * [`jamming`] — continuous / periodic / reactive RF jammers.
//! * [`stats`] — PDR, latency and beacon-age accounting.
//!
//! The substrate is *open by construction*: any node can transmit any bytes
//! on any channel, and any node within radio range receives — this mirrors
//! the paper's core observation (§I) that 802.11p's open broadcast medium is
//! what makes platoons attackable, and it is what the attack crate exploits.
//!
//! # Examples
//!
//! ```
//! use platoon_v2x::prelude::*;
//! use rand::SeedableRng;
//!
//! let medium = RadioMedium::default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let frame = Frame {
//!     sender: NodeId(0),
//!     origin: (0.0, 0.0),
//!     power_dbm: 20.0,
//!     channel: ChannelKind::Dsrc,
//!     payload: b"beacon".to_vec().into(),
//! };
//! let receivers = vec![Receiver { id: NodeId(1), position: (15.0, 0.0) }];
//! let (deliveries, stats) = medium.step(0.0, &[frame], &receivers, &[], &mut rng);
//! assert_eq!(deliveries.len(), 1);
//! assert_eq!(stats.delivered, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod jamming;
pub mod medium;
pub mod message;
pub mod spatial;
pub mod stats;
pub mod vlc;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::channel::{dbm_to_mw, mw_to_dbm, DsrcPhy};
    pub use crate::jamming::{Jammer, JammingStrategy};
    pub use crate::medium::{RadioMedium, Receiver, StepStats};
    pub use crate::message::{distance, ChannelKind, Delivery, Frame, NodeId, Payload, Position};
    pub use crate::spatial::SpatialGrid;
    pub use crate::stats::{BeaconAgeTracker, LinkStats};
    pub use crate::vlc::VlcPhy;
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Delivered + lost never exceeds offered × receivers, and a sender
        /// never hears itself.
        #[test]
        fn medium_accounting_consistent(n_frames in 1usize..6, n_rx in 1usize..6, seed in 0u64..500) {
            let medium = RadioMedium::default();
            let mut rng = StdRng::seed_from_u64(seed);
            let frames: Vec<Frame> = (0..n_frames).map(|i| Frame {
                sender: NodeId(i as u64),
                origin: (i as f64 * 20.0, 0.0),
                power_dbm: 20.0,
                channel: ChannelKind::Dsrc,
                payload: vec![0u8; 50].into(),
            }).collect();
            let receivers: Vec<Receiver> = (0..n_rx).map(|i| Receiver {
                id: NodeId(i as u64),
                position: (i as f64 * 20.0, 0.0),
            }).collect();
            let (deliveries, stats) = medium.step(0.0, &frames, &receivers, &[], &mut rng);
            prop_assert_eq!(stats.offered, n_frames);
            prop_assert!(deliveries.iter().all(|d| d.sender != d.receiver));
            prop_assert_eq!(deliveries.len(), stats.delivered);
            prop_assert!(stats.delivered + stats.lost <= n_frames * n_rx);
        }

        /// Path loss is monotone in distance.
        #[test]
        fn path_loss_monotone(d1 in 1.0f64..5000.0, d2 in 1.0f64..5000.0) {
            let phy = DsrcPhy::default();
            let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(phy.median_rx_power_dbm(20.0, near) >= phy.median_rx_power_dbm(20.0, far));
        }

        /// A covering radio horizon reproduces the all-pairs scan exactly on
        /// arbitrary geometry: identical deliveries, stats and rng stream.
        #[test]
        fn covering_horizon_step_equals_scan(
            xs in proptest::collection::vec((-3000.0f64..3000.0, -30.0f64..30.0), 1..10),
            n_rx in 1usize..8,
            seed in 0u64..200,
        ) {
            let scan = RadioMedium::default();
            let indexed = RadioMedium { radio_horizon_m: 50_000.0, ..RadioMedium::default() };
            let frames: Vec<Frame> = xs.iter().enumerate().map(|(i, &origin)| Frame {
                sender: NodeId(i as u64),
                origin,
                power_dbm: 20.0,
                channel: if i % 3 == 0 { ChannelKind::CV2x } else { ChannelKind::Dsrc },
                payload: vec![i as u8; 50].into(),
            }).collect();
            let receivers: Vec<Receiver> = (0..n_rx).map(|i| Receiver {
                id: NodeId(i as u64),
                position: (i as f64 * 40.0 - 500.0, (i % 3) as f64 * 3.5),
            }).collect();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let (da, sa) = scan.step(0.0, &frames, &receivers, &[], &mut rng_a);
            let (db, sb) = indexed.step(0.0, &frames, &receivers, &[], &mut rng_b);
            prop_assert_eq!(da, db);
            prop_assert_eq!(sa, sb);
            prop_assert_eq!(rand::RngCore::next_u64(&mut rng_a), rand::RngCore::next_u64(&mut rng_b));
        }

        /// PDR is always within [0, 1].
        #[test]
        fn pdr_bounded(offers in 1u64..50, hits in 0u64..50) {
            let mut s = LinkStats::new();
            for _ in 0..offers { s.record_offer(NodeId(1)); }
            for _ in 0..hits.min(offers) { s.record_delivery(NodeId(1), NodeId(2), 0.001); }
            let pdr = s.pdr(NodeId(1), NodeId(2)).unwrap();
            prop_assert!((0.0..=1.0).contains(&pdr));
        }
    }
}
