//! Cumulative link statistics: packet delivery ratio, latency and beacon age
//! tracking — the availability metrics of the jamming and DoS experiments.

use crate::message::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cumulative per-link and aggregate delivery statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Frames offered per sender.
    offered: HashMap<NodeId, u64>,
    /// (sender → receiver) successful deliveries.
    delivered: HashMap<(NodeId, NodeId), u64>,
    /// Sum and count of delivery latencies.
    latency_sum: f64,
    latency_count: u64,
    /// Maximum observed latency.
    latency_max: f64,
}

impl LinkStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frame offered by `sender` to the medium.
    pub fn record_offer(&mut self, sender: NodeId) {
        *self.offered.entry(sender).or_insert(0) += 1;
    }

    /// Records a successful delivery with its latency.
    pub fn record_delivery(&mut self, sender: NodeId, receiver: NodeId, latency: f64) {
        *self.delivered.entry((sender, receiver)).or_insert(0) += 1;
        self.latency_sum += latency;
        self.latency_count += 1;
        self.latency_max = self.latency_max.max(latency);
    }

    /// Packet delivery ratio for a directed link, or `None` if the sender
    /// never transmitted.
    pub fn pdr(&self, sender: NodeId, receiver: NodeId) -> Option<f64> {
        let offered = *self.offered.get(&sender)?;
        if offered == 0 {
            return None;
        }
        let delivered = self
            .delivered
            .get(&(sender, receiver))
            .copied()
            .unwrap_or(0);
        Some(delivered as f64 / offered as f64)
    }

    /// Aggregate PDR over all links from `sender` to the given receivers.
    pub fn broadcast_pdr(&self, sender: NodeId, receivers: &[NodeId]) -> Option<f64> {
        let offered = *self.offered.get(&sender)? as f64;
        if offered == 0.0 || receivers.is_empty() {
            return None;
        }
        let delivered: u64 = receivers
            .iter()
            .map(|r| self.delivered.get(&(sender, *r)).copied().unwrap_or(0))
            .sum();
        Some(delivered as f64 / (offered * receivers.len() as f64))
    }

    /// Mean delivery latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.latency_count == 0 {
            return 0.0;
        }
        self.latency_sum / self.latency_count as f64
    }

    /// Maximum observed latency in seconds, or the canonical positive
    /// quiet NaN when nothing has been delivered.
    ///
    /// The field defaults to `0.0`, so returning it raw used to make a
    /// zero-delivery run (total jamming, a blackout window covering the
    /// whole run) report a *perfect* max latency of 0.0 — indistinguishable
    /// from instant delivery. NaN is the convention the rest of the
    /// workspace uses for "nothing to measure" (cf. `per_frame_ratio` in
    /// `platoon-sim`), and the canonical JSON writer encodes it as the
    /// `"nan"` string.
    pub fn max_latency(&self) -> f64 {
        if self.latency_count == 0 {
            return f64::NAN;
        }
        self.latency_max
    }

    /// Total frames offered by all senders.
    pub fn total_offered(&self) -> u64 {
        self.offered.values().sum()
    }

    /// Total successful deliveries.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }
}

/// Tracks the age of the freshest information received from each peer — the
/// beacon-age metric used to detect communication loss.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BeaconAgeTracker {
    last_heard: HashMap<NodeId, f64>,
}

impl BeaconAgeTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records hearing from `peer` at time `now`.
    pub fn heard(&mut self, peer: NodeId, now: f64) {
        let entry = self.last_heard.entry(peer).or_insert(now);
        *entry = entry.max(now);
    }

    /// Age of the last beacon from `peer`, or `None` if never heard.
    pub fn age(&self, peer: NodeId, now: f64) -> Option<f64> {
        self.last_heard.get(&peer).map(|t| (now - t).max(0.0))
    }

    /// Peers whose beacons are older than `timeout` (or never heard among
    /// `expected`).
    pub fn silent_peers(&self, expected: &[NodeId], now: f64, timeout: f64) -> Vec<NodeId> {
        expected
            .iter()
            .copied()
            .filter(|p| self.age(*p, now).is_none_or(|a| a > timeout))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdr_counts_correctly() {
        let mut s = LinkStats::new();
        for _ in 0..10 {
            s.record_offer(NodeId(1));
        }
        for _ in 0..7 {
            s.record_delivery(NodeId(1), NodeId(2), 0.001);
        }
        assert_eq!(s.pdr(NodeId(1), NodeId(2)), Some(0.7));
        assert_eq!(s.pdr(NodeId(1), NodeId(3)), Some(0.0));
        assert_eq!(s.pdr(NodeId(9), NodeId(2)), None);
    }

    #[test]
    fn broadcast_pdr_averages_over_receivers() {
        let mut s = LinkStats::new();
        for _ in 0..10 {
            s.record_offer(NodeId(1));
        }
        for _ in 0..10 {
            s.record_delivery(NodeId(1), NodeId(2), 0.001);
        }
        for _ in 0..5 {
            s.record_delivery(NodeId(1), NodeId(3), 0.001);
        }
        let pdr = s.broadcast_pdr(NodeId(1), &[NodeId(2), NodeId(3)]).unwrap();
        assert!((pdr - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_stats() {
        let mut s = LinkStats::new();
        s.record_offer(NodeId(1));
        s.record_delivery(NodeId(1), NodeId(2), 0.002);
        s.record_delivery(NodeId(1), NodeId(3), 0.004);
        assert!((s.mean_latency() - 0.003).abs() < 1e-12);
        assert_eq!(s.max_latency(), 0.004);
    }

    #[test]
    fn totals() {
        let mut s = LinkStats::new();
        s.record_offer(NodeId(1));
        s.record_offer(NodeId(2));
        s.record_delivery(NodeId(1), NodeId(2), 0.001);
        assert_eq!(s.total_offered(), 2);
        assert_eq!(s.total_delivered(), 1);
    }

    #[test]
    fn beacon_age_tracks_freshest() {
        let mut t = BeaconAgeTracker::new();
        t.heard(NodeId(1), 1.0);
        t.heard(NodeId(1), 3.0);
        t.heard(NodeId(1), 2.0); // out of order: keeps the max
        assert_eq!(t.age(NodeId(1), 4.0), Some(1.0));
        assert_eq!(t.age(NodeId(2), 4.0), None);
    }

    #[test]
    fn silent_peers_detected() {
        let mut t = BeaconAgeTracker::new();
        t.heard(NodeId(1), 10.0);
        t.heard(NodeId(2), 1.0);
        let silent = t.silent_peers(&[NodeId(1), NodeId(2), NodeId(3)], 10.5, 1.0);
        assert_eq!(silent, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn empty_stats_safe_defaults() {
        let s = LinkStats::new();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.total_offered(), 0);
    }

    #[test]
    fn zero_delivery_max_latency_is_canonical_nan() {
        // Regression: `max_latency` used to return the 0.0 default when
        // nothing was delivered, reporting a *perfect* maximum for a run
        // whose channel was completely dead.
        let empty = LinkStats::new();
        assert!(empty.max_latency().is_nan());
        assert!(
            empty.max_latency().is_sign_positive(),
            "canonical positive quiet NaN, not -NaN"
        );

        // Offers alone measure nothing either — only deliveries do.
        let mut offered_only = LinkStats::new();
        offered_only.record_offer(NodeId(1));
        assert!(offered_only.max_latency().is_nan());

        // One delivery flips it to a real measurement (even a 0.0 one).
        let mut s = LinkStats::new();
        s.record_delivery(NodeId(1), NodeId(2), 0.0);
        assert_eq!(s.max_latency(), 0.0);
        s.record_delivery(NodeId(1), NodeId(3), 0.004);
        assert_eq!(s.max_latency(), 0.004);
    }
}
