//! Uniform-grid spatial index over node positions.
//!
//! Highway-scale worlds (ROADMAP item 1: multi-platoon corridors with
//! thousands of vehicles) make the medium's all-pairs (frame, receiver) and
//! (frame, frame) loops the dominant cost. This module buckets positions into
//! square cells of a caller-chosen size so "everything within `r` metres of
//! here" becomes a lookup over a handful of cells instead of a scan.
//!
//! Two properties matter for the engine's byte-for-byte determinism and are
//! part of this type's contract (and pinned by the property tests below):
//!
//! 1. **Exactness** — [`SpatialGrid::query_within`] returns *exactly* the
//!    indices whose Euclidean distance to the centre is `<= radius`
//!    (inclusive), identical to a reference all-pairs scan. The grid only
//!    prunes; the final predicate is the same `distance(a, b) <= radius`
//!    float comparison a scan would make, so positions exactly on a cell
//!    boundary or exactly at `radius` behave identically in both.
//! 2. **Order** — results are in ascending index order. Callers fold over
//!    candidates (interference sums, rng draws per candidate), so iteration
//!    order must match the scan order of the seed implementation, never
//!    bucket or completion order.

use crate::message::{distance, Position};
use std::collections::HashMap;

/// A uniform grid over 2-D positions supporting exact radius queries.
///
/// Build once per medium step (positions are a snapshot; the grid does not
/// track movement — rebuild after positions change).
#[derive(Clone, Debug, Default)]
pub struct SpatialGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
    positions: Vec<Position>,
}

impl SpatialGrid {
    /// Buckets `positions` into square cells of side `cell_m` metres.
    ///
    /// Panics if `cell_m` is not finite and positive. Non-finite positions
    /// are tolerated: they saturate to edge cells and are still subject to
    /// the exact distance predicate on query (a NaN coordinate can never
    /// satisfy `d <= radius`, matching the all-pairs scan).
    pub fn build(cell_m: f64, positions: &[Position]) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "grid cell size must be finite and positive, got {cell_m}"
        );
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, &p) in positions.iter().enumerate() {
            // Indices are pushed in ascending order, so each bucket is sorted.
            cells
                .entry(Self::key(cell_m, p))
                .or_default()
                .push(i as u32);
        }
        SpatialGrid {
            cell: cell_m,
            cells,
            positions: positions.to_vec(),
        }
    }

    /// Cell coordinate of a position. `as i64` saturates on overflow /
    /// non-finite values, which is fine: saturated cells still hold their
    /// indices and the exact predicate filters on query.
    fn key(cell: f64, p: Position) -> (i64, i64) {
        ((p.0 / cell).floor() as i64, (p.1 / cell).floor() as i64)
    }

    /// Number of indexed positions.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Collects into `out` every index whose position lies within `radius`
    /// metres (inclusive) of `center`, in ascending index order. `out` is
    /// cleared first; the exact same `Vec` can be reused across queries to
    /// avoid per-query allocation.
    pub fn query_within(&self, center: Position, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        self.candidates(center, radius, |i| {
            if distance(self.positions[i as usize], center) <= radius {
                out.push(i);
            }
        });
        out.sort_unstable();
    }

    /// Whether any index within `radius` metres (inclusive) of `center`
    /// satisfies `pred`. Allocation-free; visit order is unspecified (use
    /// only for order-independent predicates).
    pub fn any_within<F: FnMut(usize) -> bool>(
        &self,
        center: Position,
        radius: f64,
        mut pred: F,
    ) -> bool {
        let mut hit = false;
        self.candidates(center, radius, |i| {
            if !hit && distance(self.positions[i as usize], center) <= radius && pred(i as usize) {
                hit = true;
            }
        });
        hit
    }

    /// Visits every index in cells that could intersect the query disc.
    /// Callers apply the exact distance predicate.
    fn candidates<F: FnMut(u32)>(&self, center: Position, radius: f64, mut visit: F) {
        if !(center.0.is_finite() && center.1.is_finite() && radius.is_finite() && radius >= 0.0) {
            // Degenerate query (NaN/±inf centre or radius): fall back to
            // visiting everything; the exact predicate decides, exactly as
            // an all-pairs scan would.
            for i in 0..self.positions.len() as u32 {
                visit(i);
            }
            return;
        }
        let lo = Self::key(self.cell, (center.0 - radius, center.1 - radius));
        let hi = Self::key(self.cell, (center.0 + radius, center.1 + radius));
        let span_x = (hi.0 - lo.0 + 1).max(0) as u128;
        let span_y = (hi.1 - lo.1 + 1).max(0) as u128;
        if span_x.saturating_mul(span_y) > self.cells.len() as u128 {
            // The disc covers more candidate cells than exist: walking the
            // occupied cells is cheaper and visits the same indices.
            for (key, bucket) in &self.cells {
                if (lo.0..=hi.0).contains(&key.0) && (lo.1..=hi.1).contains(&key.1) {
                    for &i in bucket {
                        visit(i);
                    }
                }
            }
            return;
        }
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for &i in bucket {
                        visit(i);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference all-pairs scan the grid must reproduce exactly.
    fn scan(positions: &[Position], center: Position, radius: f64) -> Vec<u32> {
        positions
            .iter()
            .enumerate()
            .filter(|(_, &p)| distance(p, center) <= radius)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn query(grid: &SpatialGrid, center: Position, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        grid.query_within(center, radius, &mut out);
        out
    }

    #[test]
    fn empty_grid_returns_nothing() {
        let grid = SpatialGrid::build(10.0, &[]);
        assert!(query(&grid, (0.0, 0.0), 100.0).is_empty());
        assert_eq!(grid.len(), 0);
    }

    #[test]
    fn radius_is_inclusive() {
        let pts = [(0.0, 0.0), (10.0, 0.0), (10.0 + 1e-9, 0.0)];
        let grid = SpatialGrid::build(4.0, &pts);
        assert_eq!(query(&grid, (0.0, 0.0), 10.0), vec![0, 1]);
    }

    #[test]
    fn point_exactly_on_cell_boundary_is_found() {
        // x = 20.0 sits exactly on the boundary between cells 1 and 2 at
        // cell size 10; it must appear exactly once.
        let pts = [(20.0, 0.0), (-10.0, 0.0), (0.0, 10.0)];
        let grid = SpatialGrid::build(10.0, &pts);
        assert_eq!(query(&grid, (20.0, 0.0), 0.0), vec![0]);
        assert_eq!(query(&grid, (15.0, 0.0), 5.0), vec![0]);
        assert_eq!(query(&grid, (0.0, 0.0), 30.0), scan(&pts, (0.0, 0.0), 30.0));
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let pts = [(-0.5, -0.5), (0.5, 0.5), (-10.0, -10.0)];
        let grid = SpatialGrid::build(1.0, &pts);
        assert_eq!(query(&grid, (0.0, 0.0), 1.0), vec![0, 1]);
    }

    #[test]
    fn nan_position_never_matches() {
        let pts = [(f64::NAN, 0.0), (5.0, 0.0)];
        let grid = SpatialGrid::build(10.0, &pts);
        assert_eq!(query(&grid, (0.0, 0.0), 100.0), vec![1]);
    }

    #[test]
    fn degenerate_query_matches_scan() {
        let pts = [(0.0, 0.0), (5.0, 5.0)];
        let grid = SpatialGrid::build(10.0, &pts);
        assert_eq!(query(&grid, (f64::NAN, 0.0), 10.0), Vec::<u32>::new());
        assert_eq!(query(&grid, (0.0, 0.0), f64::NAN), Vec::<u32>::new());
    }

    #[test]
    fn any_within_respects_radius_and_predicate() {
        let pts = [(0.0, 0.0), (50.0, 0.0), (100.0, 0.0)];
        let grid = SpatialGrid::build(25.0, &pts);
        assert!(grid.any_within((45.0, 0.0), 10.0, |_| true));
        assert!(!grid.any_within((45.0, 0.0), 4.9, |_| true));
        assert!(!grid.any_within((45.0, 0.0), 10.0, |i| i != 1));
        assert!(grid.any_within((75.0, 0.0), 30.0, |i| i == 2));
    }

    #[test]
    fn huge_radius_walks_occupied_cells() {
        // Radius/cell ratio large enough to trigger the occupied-cell walk.
        let pts: Vec<Position> = (0..40).map(|i| (i as f64 * 3.0, 0.0)).collect();
        let grid = SpatialGrid::build(0.5, &pts);
        assert_eq!(
            query(&grid, (60.0, 0.0), 1.0e6),
            scan(&pts, (60.0, 0.0), 1.0e6)
        );
    }

    #[test]
    fn vehicle_crossing_cell_boundary_never_dropped_or_duplicated() {
        // A vehicle advancing a fraction of a cell per tick crosses many
        // boundaries; at every tick the rebuilt grid must report it exactly
        // once whenever it is in range, and its candidate set must equal the
        // scan (satellite: boundary-crossing regression).
        let cell = 50.0;
        let observer = (500.0, 0.0);
        let statics: Vec<Position> = (0..20).map(|i| (i as f64 * 47.0, 1.5)).collect();
        let mut x = 340.0;
        for _ in 0..200 {
            let mut pts = statics.clone();
            pts.push((x, -1.5)); // index 20: the mover
            let grid = SpatialGrid::build(cell, &pts);
            let got = query(&grid, observer, 120.0);
            assert_eq!(got, scan(&pts, observer, 120.0), "x = {x}");
            let mover_hits = got.iter().filter(|&&i| i == 20).count();
            let in_range = distance((x, -1.5), observer) <= 120.0;
            assert_eq!(mover_hits, usize::from(in_range), "x = {x}");
            x += 3.7; // deliberately not a divisor of the cell size
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn scan(positions: &[Position], center: Position, radius: f64) -> Vec<u32> {
        positions
            .iter()
            .enumerate()
            .filter(|(_, &p)| distance(p, center) <= radius)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn query(grid: &SpatialGrid, center: Position, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        grid.query_within(center, radius, &mut out);
        out
    }

    proptest! {
        /// Core equivalence: for arbitrary positions (x along the road, y a
        /// lane offset), arbitrary radii and cell sizes, the grid query is
        /// the all-pairs scan — same members, same ascending order.
        #[test]
        fn grid_query_equals_all_pairs_scan(
            cell in 0.5f64..400.0,
            radius in 0.0f64..1500.0,
            pts in vec((-5000.0f64..5000.0, -60.0f64..60.0), 0..80),
            center in (-5000.0f64..5000.0, -60.0f64..60.0),
        ) {
            let grid = SpatialGrid::build(cell, &pts);
            prop_assert_eq!(query(&grid, center, radius), scan(&pts, center, radius));
        }

        /// Querying from an indexed position always finds that position
        /// (distance 0 <= any radius), and results never contain duplicates.
        #[test]
        fn self_is_always_a_candidate(
            cell in 0.5f64..200.0,
            radius in 0.0f64..500.0,
            pts in vec((-2000.0f64..2000.0, -20.0f64..20.0), 1..40),
            pick in 0usize..40,
        ) {
            let center = pts[pick % pts.len()];
            let grid = SpatialGrid::build(cell, &pts);
            let got = query(&grid, center, radius);
            prop_assert!(got.contains(&((pick % pts.len()) as u32)));
            let mut dedup = got.clone();
            dedup.dedup();
            prop_assert_eq!(&dedup, &got, "duplicates in candidate set");
        }

        /// Positions exactly on cell boundaries (integer multiples of the
        /// cell size) and radii exactly at point distances: the grid must
        /// agree with the scan bit-for-bit on these edge cases.
        #[test]
        fn boundary_aligned_positions_match_scan(
            cell in 0.5f64..50.0,
            ks in vec((-20i64..21, -4i64..5), 1..30),
            ck in (-20i64..21, -4i64..5),
            steps in 0u32..40,
        ) {
            let pts: Vec<Position> = ks
                .iter()
                .map(|&(kx, ky)| (kx as f64 * cell, ky as f64 * cell))
                .collect();
            let center = (ck.0 as f64 * cell, ck.1 as f64 * cell);
            // A radius that is an exact multiple of the cell size lands
            // query edges exactly on cell boundaries and on axis-aligned
            // points' distances.
            let radius = steps as f64 * cell;
            let grid = SpatialGrid::build(cell, &pts);
            prop_assert_eq!(query(&grid, center, radius), scan(&pts, center, radius));
        }

        /// any_within agrees with "the exact candidate set is non-empty
        /// after filtering".
        #[test]
        fn any_within_equals_filtered_scan(
            cell in 0.5f64..200.0,
            radius in 0.0f64..800.0,
            pts in vec((-2000.0f64..2000.0, -20.0f64..20.0), 0..40),
            center in (-2000.0f64..2000.0, -20.0f64..20.0),
            parity in 0usize..2,
        ) {
            let grid = SpatialGrid::build(cell, &pts);
            let got = grid.any_within(center, radius, |i| i % 2 == parity);
            let want = scan(&pts, center, radius).iter().any(|&i| i as usize % 2 == parity);
            prop_assert_eq!(got, want);
        }
    }
}
