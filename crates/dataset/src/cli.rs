//! The `dataset` subcommand: runs the factory, writes the train/test
//! shards plus the canonical `DATASET_<label>.json` summary, and gates the
//! summary against a golden snapshot on request.

use crate::columnar::Shard;
use crate::factory::{run_with, scoring_seeds, seeds_per_cell, DatasetReport};
use platoon_core::experiments::common::EXPERIMENT_BASE_SEED;
use platoon_core::tables::{num, TextTable};
use platoon_detect::features::FEATURE_NAMES;
use platoon_sim::harness::{golden, json};
use std::path::{Path, PathBuf};

/// Canonical JSON rendering of a dataset run — the golden-snapshot
/// document. Shard content is pinned indirectly through the row counts,
/// positive counts and FNV-1a digests; the model, its row-level test
/// metrics and the Table IV-style comparison rows are pinned in full.
pub fn to_canonical_json(report: &DatasetReport, quick: bool) -> String {
    let mut w = json::Writer::new();
    w.obj(|w| {
        w.field_u64("base_seed", EXPERIMENT_BASE_SEED);
        w.field_u64("seeds_per_cell", seeds_per_cell(quick));
        w.field_u64("scoring_seeds", scoring_seeds(quick));
        w.field_str("split", "even seed offsets train, odd test (whole cells)");
        w.field_arr("features", |w| {
            for name in FEATURE_NAMES {
                w.elem(|w| w.push_str(name));
            }
        });
        let shard_summary = |w: &mut json::Writer, shard: &Shard| {
            w.field_u64("cells", shard.cells.len() as u64);
            w.field_u64("rows", shard.rows() as u64);
            w.field_u64("positives", shard.positives());
            w.field_str("digest", &format!("{:016x}", shard.digest()));
            w.field_u64("bytes", shard.encode().len() as u64);
        };
        w.field_obj("train", |w| shard_summary(w, &report.train));
        w.field_obj("test", |w| shard_summary(w, &report.test));
        w.field_obj("model", |w| {
            w.field_f64("bias", report.model.bias);
            w.field_arr("weights", |w| {
                for &weight in &report.model.weights {
                    w.elem(|w| w.push_f64(weight));
                }
            });
        });
        w.field_obj("eval", |w| {
            w.field_u64("rows", report.eval.rows);
            w.field_u64("true_positives", report.eval.true_positives);
            w.field_u64("false_positives", report.eval.false_positives);
            w.field_u64("true_negatives", report.eval.true_negatives);
            w.field_u64("false_negatives", report.eval.false_negatives);
            w.field_f64("precision", report.eval.precision());
            w.field_f64("recall", report.eval.recall());
            w.field_f64("f1", report.eval.f1());
            w.field_f64("accuracy", report.eval.accuracy());
        });
        w.field_arr("rows", |w| {
            for r in &report.rows {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("attack", &r.attack);
                        w.field_str("config", &r.config);
                        w.field_u64("runs", r.runs);
                        w.field_f64("detection_rate", r.detection_rate);
                        w.field_f64("median_latency_s", r.median_latency_s);
                        w.field_f64("false_positives_per_run", r.false_positives_per_run);
                        w.field_f64("alerts_per_run", r.alerts_per_run);
                        w.field_f64("attribution_accuracy", r.attribution_accuracy);
                    })
                });
            }
        });
    });
    w.finish()
}

/// Renders the learned-vs-rule-based comparison table.
pub fn render(report: &DatasetReport) -> TextTable {
    let mut t = TextTable::new(
        "Dataset (measured) — learned detector vs rule-based default pipeline",
        &[
            "Attack",
            "Config",
            "Runs",
            "Detection rate",
            "Median latency (s)",
            "FP/run",
            "Alerts/run",
            "Attribution",
        ],
    );
    for r in &report.rows {
        t.row(vec![
            r.attack.clone(),
            r.config.clone(),
            r.runs.to_string(),
            num(r.detection_rate, 2),
            if r.median_latency_s.is_finite() {
                num(r.median_latency_s, 1)
            } else {
                "inf".to_string()
            },
            num(r.false_positives_per_run, 1),
            num(r.alerts_per_run, 1),
            if r.attribution_accuracy.is_nan() {
                "-".to_string()
            } else {
                num(r.attribution_accuracy, 2)
            },
        ]);
    }
    t
}

/// Writes the summary JSON plus both shards into `out_dir`; returns the
/// summary path.
fn write_report_files(
    report: &DatasetReport,
    quick: bool,
    label: &str,
    out_dir: &Path,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("DATASET_{label}.json"));
    std::fs::write(&path, to_canonical_json(report, quick))?;
    std::fs::write(
        out_dir.join(format!("dataset_train_{label}.bin")),
        report.train.encode(),
    )?;
    std::fs::write(
        out_dir.join(format!("dataset_test_{label}.bin")),
        report.test.encode(),
    )?;
    Ok(path)
}

/// Entry point for the `dataset` subcommand (root binary and the bench
/// report binary). Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut quick = false;
    let mut workers = platoon_sim::harness::default_workers();
    let mut out_dir = PathBuf::from(".");
    let mut check_golden: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--quick" => quick = true,
                "--workers" => {
                    workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--out" => out_dir = PathBuf::from(value("--out")?),
                "--check-golden" => check_golden = Some(PathBuf::from(value("--check-golden")?)),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: dataset [--quick] [--workers N] [--out DIR]\n\
                         \x20              [--check-golden PATH]\n\
                         \x20 --quick          short runs (the CI smoke grid)\n\
                         \x20 --workers N      worker threads (default: available parallelism)\n\
                         \x20 --out DIR        where DATASET_<label>.json and the\n\
                         \x20                  dataset_{{train,test}}_<label>.bin shards are\n\
                         \x20                  written (default: .)\n\
                         \x20 --check-golden P snapshot-match the summary against P"
                    );
                    return Err(String::new()); // handled: exit 0 below
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            Err(msg) if msg.is_empty() => return 0,
            Err(msg) => {
                eprintln!("error: {msg}");
                return 2;
            }
        }
    }

    let label = if quick { "quick" } else { "full" };
    eprintln!("running dataset factory ({label} effort, {workers} workers)...");
    let report = run_with(quick, workers);
    println!("{}", render(&report).render());
    eprintln!(
        "train: {} rows ({} positive), test: {} rows ({} positive)",
        report.train.rows(),
        report.train.positives(),
        report.test.rows(),
        report.test.positives()
    );
    match write_report_files(&report, quick, label, &out_dir) {
        Ok(path) => eprintln!(
            "wrote {} plus train/test shards ({} comparison rows)",
            path.display(),
            report.rows.len()
        ),
        Err(e) => {
            eprintln!("error: writing report: {e}");
            return 1;
        }
    }

    if let Some(path) = check_golden {
        match golden::check(
            &path,
            &to_canonical_json(&report, quick),
            golden::Tolerance::snapshot(),
        ) {
            Ok(golden::Outcome::Match) => eprintln!("document matches {}", path.display()),
            Ok(golden::Outcome::Updated) => eprintln!("golden written: {}", path.display()),
            Err(diff) => {
                eprintln!("dataset drift:\n{diff}");
                return 1;
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::COMPARED_CONFIGS;
    use platoon_core::experiments::table4;
    use platoon_sim::harness::default_workers;
    use platoon_sim::harness::golden::Tolerance;

    fn golden_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/dataset_quick.json")
    }

    #[test]
    fn quick_run_trains_a_useful_model_and_matches_golden() {
        let report = run_with(true, default_workers());
        let arms = table4::arm_names();
        assert_eq!(report.rows.len(), arms.len() * COMPARED_CONFIGS.len());

        // The split holds whole cells and never the same cell twice.
        let train_labels: Vec<&str> = report
            .train
            .cells
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        for cell in &report.test.cells {
            assert!(
                !train_labels.contains(&cell.label.as_str()),
                "cell {} leaked across the split",
                cell.label
            );
        }
        assert!(report.train.rows() > 0 && report.test.rows() > 0);
        assert!(
            report.train.positives() > 0,
            "attack arms must contribute malicious training rows"
        );

        // The learned baseline must beat the always-benign majority-class
        // baseline and must never convict the benign arm.
        let majority = (report.eval.true_negatives + report.eval.false_positives) as f64
            / report.eval.rows as f64;
        assert!(
            report.eval.accuracy() > majority.max(0.8),
            "row accuracy collapsed: {:?}",
            report.eval
        );
        assert!(
            report.eval.precision() > 0.5,
            "the model flags mostly-benign rows: {:?}",
            report.eval
        );
        for r in &report.rows {
            if r.attack == "benign" {
                assert_eq!(
                    r.detection_rate, 0.0,
                    "a benign run can never be 'detected' ({})",
                    r.config
                );
            }
        }
        let learned_detecting = report
            .rows
            .iter()
            .filter(|r| r.config == "learned" && r.attack != "benign")
            .filter(|r| r.detection_rate > 0.0)
            .count();
        assert!(
            learned_detecting >= 3,
            "the learned detector should catch at least a few attack arms, got {learned_detecting}"
        );

        golden::assert_matches(
            &golden_path(),
            &to_canonical_json(&report, true),
            Tolerance::snapshot(),
        );
    }
}
