//! # platoon-dataset
//!
//! The ML dataset factory (ROADMAP item 4): turns deterministic simulation
//! runs into the labeled per-beacon dataset that Iqbal et al. argue the
//! VANET-security field lacks, and closes the loop with an honest
//! learned-vs-engineered detector comparison.
//!
//! * [`columnar`] — the compact columnar binary shard format: canonical
//!   JSON header, column-major `f32` feature columns, `u32` cell and `u8`
//!   label columns, trailing FNV-1a digest. Built to sustain
//!   corridor-scale worlds — no per-row JSON anywhere.
//! * [`factory`] — the export grid: one cell per (attack arm × seed), run
//!   on the deterministic [`Batch`](platoon_sim::harness::Batch) harness
//!   (byte-identical shards at any worker count), rows labeled from
//!   [`TruthLabels`](platoon_sim::metrics::TruthLabels), deterministic
//!   seed-split train/test shards, logistic-regression training on the
//!   train split, and Table IV-style scoring of the learned detector
//!   head-to-head with the rule-based pipeline.
//! * [`cli`] — the `dataset` subcommand: writes the shards plus the
//!   canonical `DATASET_<label>.json` summary, with a `--check-golden`
//!   gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod columnar;
pub mod factory;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::columnar::{CellBlock, Shard};
    pub use crate::factory::{evaluate, run_with, DatasetReport, EvalMetrics};
}
